//! Trace tooling: write a generated trace to the on-disk binary format,
//! stream it back, and report Figure 2-style bias statistics.
//!
//! This is the harness you would use to run the predictors on your own
//! recorded traces: produce `BranchRecord`s, write them with
//! `TraceWriter`, and feed them back through `simulate_stream`.
//!
//! ```sh
//! cargo run --release --example trace_tools
//! ```

use std::error::Error;
use std::fs::File;
use std::io::{BufReader, BufWriter};

use bfbp::core::bf_tage::bf_isl_tage;
use bfbp::sim::simulate::simulate_stream;
use bfbp::trace::format::{TraceReader, TraceWriter};
use bfbp::trace::stats::{BiasProfile, TraceMix};
use bfbp::trace::synth::suite;
use bfbp::trace::BranchKind;

fn main() -> Result<(), Box<dyn Error>> {
    let spec = suite::find("SERV3").expect("SERV3 is part of the suite");
    let trace = spec.generate_len(50_000);

    // 1. Write the trace to disk in the BFBT binary format.
    let path = std::env::temp_dir().join("serv3.bfbt");
    let file = File::create(&path)?;
    let mut writer = TraceWriter::new(BufWriter::new(file), trace.name())?;
    for record in &trace {
        writer.write(record)?;
    }
    writer.finish()?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "wrote {} records to {} ({} bytes, {:.2} bytes/record)",
        trace.len(),
        path.display(),
        bytes,
        bytes as f64 / trace.len() as f64
    );

    // 2. Stream it back, collecting statistics along the way.
    let reader = TraceReader::new(BufReader::new(File::open(&path)?))?;
    println!("trace name from header: {}", reader.name());
    let mut profile = BiasProfile::default();
    let records: Vec<_> = reader.collect::<Result<_, _>>()?;
    for r in &records {
        profile.observe(r);
    }
    println!(
        "bias profile: {:.1}% of static branches completely biased \
         ({:.1}% of dynamic executions)",
        profile.static_biased_percent(),
        profile.dynamic_biased_percent()
    );
    let mix = TraceMix::measure(&bfbp::trace::Trace::new("t", records.clone()));
    println!(
        "mix: {} conditionals, {} calls, {} returns, {} instructions",
        mix.count(BranchKind::CondDirect),
        mix.count(BranchKind::Call),
        mix.count(BranchKind::Return),
        mix.instructions()
    );

    // 3. Simulate straight from the record stream.
    let mut predictor = bf_isl_tage(10);
    let result = simulate_stream(&mut predictor, "SERV3", records);
    println!("{result}");

    std::fs::remove_file(&path)?;
    Ok(())
}
