//! Quickstart: generate a benchmark trace, run the Bias-Free Neural
//! predictor and a TAGE baseline on it, and print MPKI.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bfbp::core::bf_neural::BfNeural;
use bfbp::sim::predictor::ConditionalPredictor;
use bfbp::sim::simulate::simulate;
use bfbp::tage::isl::isl_tage;
use bfbp::trace::synth::suite;

fn main() {
    // Pick a long-history-sensitive trace from the suite (a synthetic
    // stand-in for the CBP-4 SPEC2006 traces; see DESIGN.md).
    let spec = suite::find("SPEC03").expect("SPEC03 is part of the 40-trace suite");
    let trace = spec.generate_len(100_000);
    println!(
        "trace {}: {} branch records, {} conditional",
        trace.name(),
        trace.len(),
        trace.conditional_count()
    );

    // The paper's 64 KB BF-Neural configuration: BST + bias-free
    // recency-stack history + loop predictor.
    let mut bf_neural = BfNeural::budget_64kb();
    let bf_result = simulate(&mut bf_neural, &trace);
    println!("{bf_result}");

    // The strongest baseline: ISL-TAGE with 15 tagged tables.
    let mut tage = isl_tage(15);
    let tage_result = simulate(&mut tage, &trace);
    println!("{tage_result}");

    // And how much hardware each needs:
    println!(
        "\nBF-Neural storage: {:.1} KiB   ISL-TAGE-15 storage: {:.1} KiB",
        bf_neural.storage().total_kib(),
        tage.storage().total_kib()
    );
}
