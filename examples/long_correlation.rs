//! The paper's motivating scenario, built by hand: a branch whose only
//! predictor of its direction executed ~600 branches earlier, with
//! nothing but completely biased branches in between (Figure 1's control
//! flow, stretched).
//!
//! A conventional perceptron with a 72-deep unfiltered history cannot
//! see the correlated branch; the Bias-Free predictor filters the biased
//! filler out of its history, so the source lands within a 48-entry
//! recency stack.
//!
//! ```sh
//! cargo run --release --example long_correlation
//! ```

use bfbp::core::bf_neural::BfNeural;
use bfbp::predictors::piecewise::PiecewiseLinear;
use bfbp::sim::simulate::simulate;
use bfbp::trace::synth::builder::{Filler, ProgramBuilder};

fn main() {
    // One deep-correlation block: a slowly-varying source branch, 600
    // dynamic branches of completely biased filler, then 6 consumer
    // branches whose outcomes equal the source's.
    let mut builder = ProgramBuilder::new(2014);
    builder.add_deep_block(
        600,
        Filler::DistinctBiased,
        6,    // consumers
        0.01, // noise
        650,  // deterministic warm-up
        210,  // gap between consumers
        1,
    );
    let program = builder.build();
    let trace = program.emit("long-correlation", 200_000, 7);

    println!("workload: source branch, 600 biased branches, then correlated consumers\n");

    let mut conventional = PiecewiseLinear::conventional_64kb();
    let conv = simulate(&mut conventional, &trace);
    println!("conventional perceptron (72-deep unfiltered history):\n  {conv}");

    let mut bias_free = BfNeural::budget_64kb();
    let bf = simulate(&mut bias_free, &trace);
    println!("bias-free neural (48-entry recency stack):\n  {bf}");

    let gain = 100.0 * (conv.mpki() - bf.mpki()) / conv.mpki().max(1e-9);
    println!("\nBF-Neural reduces MPKI by {gain:.1}% on this workload.");
    println!(
        "The filtered history reaches the source at recency-stack depth ~2;\n\
         unfiltered history would need ~600 bits to reach it."
    );
}
