//! Shoot-out: every predictor in the library on a sample of suite
//! traces, with per-predictor storage budgets — a fast way to see the
//! whole landscape the paper's Figure 8 summarizes.
//!
//! ```sh
//! cargo run --release --example predictor_shootout
//! ```

use bfbp::core::bf_neural::BfNeural;
use bfbp::core::bf_tage::bf_isl_tage;
use bfbp::predictors::bimodal::Bimodal;
use bfbp::predictors::gshare::Gshare;
use bfbp::predictors::perceptron::Perceptron;
use bfbp::predictors::piecewise::PiecewiseLinear;
use bfbp::predictors::snap::ScaledNeural;
use bfbp::sim::predictor::ConditionalPredictor;
use bfbp::sim::simulate::simulate;
use bfbp::tage::isl::isl_tage;
use bfbp::trace::synth::suite;

fn main() {
    let trace_names = ["SPEC03", "SPEC07", "INT2", "MM1", "SERV3"];
    let traces: Vec<_> = trace_names
        .iter()
        .map(|n| suite::find(n).expect("trace in suite").generate_len(60_000))
        .collect();

    type Factory = fn() -> Box<dyn ConditionalPredictor>;
    let factories: Vec<(&str, Factory)> = vec![
        ("bimodal", || Box::new(Bimodal::default_64kb_base())),
        ("gshare", || Box::new(Gshare::budget_64kb())),
        ("perceptron", || Box::new(Perceptron::budget_64kb())),
        ("piecewise", || {
            Box::new(PiecewiseLinear::conventional_64kb())
        }),
        ("oh-snap", || Box::new(ScaledNeural::budget_64kb())),
        ("isl-tage-15", || Box::new(isl_tage(15))),
        ("bf-neural", || Box::new(BfNeural::budget_64kb())),
        ("bf-isl-tage-10", || Box::new(bf_isl_tage(10))),
    ];

    print!("{:<16}{:>10}", "predictor", "KiB");
    for name in trace_names {
        print!("{name:>10}");
    }
    println!("{:>10}", "mean");

    for (name, make) in factories {
        let kib = make().storage().total_kib();
        print!("{name:<16}{kib:>10.1}");
        let mut sum = 0.0;
        for trace in &traces {
            let mut p = make();
            let r = simulate(p.as_mut(), trace);
            print!("{:>10.3}", r.mpki());
            sum += r.mpki();
        }
        println!("{:>10.3}", sum / traces.len() as f64);
    }
    println!("\n(MPKI per trace; lower is better. Traces are 60k-branch scaled versions.)");
}
