//! Storage-accounting invariants for every registry predictor: budgets
//! are nonzero unless the predictor is static, survive a checkpoint
//! save/load round-trip unchanged, and always equal the sum of the
//! per-component breakdown — plus the registry's typed unknown-param
//! error, which must name both the offending key and every key the
//! predictor actually accepts.

use bfbp::sim::ckpt::{StateReader, StateWriter};
use bfbp::sim::registry::{BuildError, Params};
use bfbp::sim::simulate::Simulation;
use bfbp::sim::storage::StorageBreakdown;
use bfbp::trace::record::Trace;
use bfbp::trace::synth::suite;

fn mm1(n_records: usize) -> Trace {
    suite::find("MM1")
        .expect("MM1 in suite")
        .generate_len(n_records)
}

/// Per-item `(label, bits)` pairs, for exact breakdown comparison.
fn items(s: &StorageBreakdown) -> Vec<(String, u64)> {
    s.items()
        .iter()
        .map(|i| (i.label().to_owned(), i.bits()))
        .collect()
}

/// Invariant (a): every dynamic predictor declares a nonzero storage
/// budget; only the static baselines (no mutable state at all) may
/// report zero bits.
#[test]
fn storage_is_nonzero_unless_static() {
    let registry = bfbp::default_registry();
    for name in registry.names() {
        let storage = registry.storage(name, &Params::new()).expect("build");
        if name.starts_with("static") {
            assert_eq!(
                storage.total_bits(),
                0,
                "{name}: static predictor claims {} bits",
                storage.total_bits()
            );
        } else {
            assert!(
                storage.total_bits() > 0,
                "{name}: dynamic predictor reports zero storage"
            );
        }
    }
}

/// Invariant (b): the declared storage budget is a property of the
/// *configuration*, not the runtime state — running a trace and then
/// round-tripping the predictor through checkpoint save/load must leave
/// the total and every per-component entry bit-for-bit identical.
#[test]
fn storage_survives_checkpoint_roundtrip_for_every_predictor() {
    let registry = bfbp::default_registry();
    let trace = mm1(2_000);
    for name in registry.names() {
        let mut original = registry.build(name, &Params::new()).expect("build");
        let fresh_storage = original.storage();

        Simulation::new(original.as_mut())
            .run_trace(&trace)
            .expect("warm-up run");
        let warmed_storage = original.storage();
        assert_eq!(
            items(&fresh_storage),
            items(&warmed_storage),
            "{name}: running a trace changed the storage breakdown"
        );

        let Some(restorable) = original.checkpointing() else {
            continue;
        };
        let mut w = StateWriter::new();
        restorable.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut restored = registry.build(name, &Params::new()).expect("build");
        let mut r = StateReader::new(&bytes);
        restored
            .checkpointing()
            .expect("capability is stable across instances")
            .load_state(&mut r)
            .unwrap_or_else(|e| panic!("{name}: load_state failed: {e:?}"));
        assert_eq!(
            items(&warmed_storage),
            items(&restored.storage()),
            "{name}: checkpoint round-trip changed the storage breakdown"
        );
    }
}

/// Invariant (c): the headline total is exactly the sum of the
/// per-component breakdown entries — no hidden or double-counted bits —
/// and the byte total is the bit total rounded up.
#[test]
fn storage_total_equals_component_sum_for_every_predictor() {
    let registry = bfbp::default_registry();
    for name in registry.names() {
        let storage = registry.storage(name, &Params::new()).expect("build");
        let component_sum: u64 = storage.items().iter().map(|i| i.bits()).sum();
        assert_eq!(
            storage.total_bits(),
            component_sum,
            "{name}: total_bits disagrees with its component sum"
        );
        assert_eq!(
            storage.total_bytes(),
            storage.total_bits().div_ceil(8),
            "{name}: total_bytes is not the rounded-up bit total"
        );
    }
}

/// The registry's unknown-parameter diagnostic: for EVERY registered
/// predictor, overriding a key it does not declare must fail with the
/// typed [`BuildError::UnknownParam`] naming that key and listing the
/// predictor's accepted keys — and the rendered message must carry both,
/// so a tuner user sees the fix without opening the source.
#[test]
fn unknown_param_names_key_and_accepted_keys_for_every_predictor() {
    let registry = bfbp::default_registry();
    for name in registry.names() {
        let bogus = Params::new().set("definitely-not-a-param", 1usize);
        let err = registry
            .build(name, &bogus)
            .err()
            .unwrap_or_else(|| panic!("{name}: bogus parameter was accepted"));
        let accepted = registry
            .defaults(name)
            .expect("registered predictor has defaults")
            .keys();
        match &err {
            BuildError::UnknownParam { param, known } => {
                assert_eq!(param, "definitely-not-a-param", "{name}");
                assert_eq!(known, &accepted, "{name}: accepted-key list differs");
            }
            other => panic!("{name}: expected UnknownParam, got {other:?}"),
        }
        let message = err.to_string();
        assert!(
            message.contains("definitely-not-a-param"),
            "{name}: message {message:?} does not name the bad key"
        );
        if accepted.is_empty() {
            assert!(
                message.contains("takes no parameters"),
                "{name}: message {message:?} hides that no keys exist"
            );
        } else {
            for key in &accepted {
                assert!(
                    message.contains(key.as_str()),
                    "{name}: message {message:?} omits accepted key {key:?}"
                );
            }
        }
    }
}
