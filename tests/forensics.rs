//! Integration tests for the misprediction forensics layer: provenance
//! attribution across the whole predictor registry, flight-recorder
//! transparency (recorder on vs off must not change a byte of the
//! results or metrics documents), postmortem dumps for killed jobs,
//! events-journal round-tripping, and Chrome Trace export validity.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use bfbp::sim::engine::{sweep, JobStatus, RetryPolicy, SweepOptions};
use bfbp::sim::fault::FaultPlan;
use bfbp::sim::forensics::{chrome_trace, parse_events, parse_json, read_events, JsonValue};
use bfbp::sim::registry::PredictorSpec;
use bfbp::sim::runner::SuiteRunner;
use bfbp::trace::synth::suite;

fn small_runner() -> SuiteRunner {
    let specs: Vec<_> = ["INT1", "MM2"]
        .iter()
        .map(|n| suite::find(n).expect("trace in suite"))
        .collect();
    SuiteRunner::from_specs(specs, 0.02)
}

fn small_specs() -> Vec<PredictorSpec> {
    vec![
        PredictorSpec::new("gshare").labeled("g"),
        PredictorSpec::new("bimodal").labeled("b"),
    ]
}

/// A unique scratch path under the temp dir.
fn scratch(name: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!("bfbp-forensics-tests-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(format!("{}-{name}", SEQ.fetch_add(1, Ordering::Relaxed)))
}

/// Every registered predictor must attribute every prediction: after
/// `predict`, `last_provenance()` must be `Some` and its `prediction`
/// field must equal the direction the predictor just returned — the
/// recorder stores whatever the hook says, so a predictor that lies
/// here poisons every postmortem it appears in.
#[test]
fn registry_wide_provenance_matches_reported_prediction() {
    let registry = bfbp::default_registry();
    let trace = suite::find("INT2")
        .expect("INT2 in suite")
        .generate_len(4_000);

    for name in registry.names() {
        let mut p = registry
            .build_spec(&PredictorSpec::new(name))
            .expect("registered spec builds");
        let mut attributed = 0u64;
        for record in trace.records() {
            if record.kind.is_conditional() {
                let guess = p.predict(record.pc);
                let prov = p
                    .last_provenance()
                    .unwrap_or_else(|| panic!("{name}: no provenance after predict"));
                assert_eq!(
                    prov.prediction, guess,
                    "{name}: provenance direction disagrees with the returned prediction \
                     (component {:?})",
                    prov.component
                );
                assert!(
                    !prov.component.is_empty(),
                    "{name}: empty provenance component"
                );
                p.update(record.pc, record.taken, record.target);
                attributed += 1;
            } else {
                p.track_other(record);
            }
        }
        assert!(attributed > 0, "{name}: trace had no conditionals");
    }
}

/// Turning the flight recorder on must not change a byte of either the
/// `bfbp-sweep/2` results document or the `bfbp-metrics/1` document,
/// at any thread count: the ring samples strictly between predict and
/// update and never feeds back into the simulation.
#[test]
fn flight_recorder_never_perturbs_results() {
    let registry = bfbp::default_registry();
    let runner = small_runner();
    let specs = small_specs();

    let plain = sweep(
        &registry,
        &specs,
        &runner,
        &SweepOptions::serial().with_metrics(),
    )
    .expect("plain sweep");

    for threads in [1usize, 4] {
        let dir = scratch(&format!("ring-{threads}"));
        let recorded = sweep(
            &registry,
            &specs,
            &runner,
            &SweepOptions::default()
                .with_threads(threads)
                .with_metrics()
                .with_flight_recorder(128, &dir),
        )
        .expect("recorded sweep");
        assert_eq!(
            plain.results_json(),
            recorded.results_json(),
            "flight recorder changed the results document at {threads} threads"
        );
        assert_eq!(
            plain.metrics_json(),
            recorded.metrics_json(),
            "flight recorder changed the metrics document at {threads} threads"
        );
        // All jobs healthy: the ring must leave no dumps behind.
        let dumps = fs::read_dir(&dir).map(|it| it.count()).unwrap_or(0);
        assert_eq!(dumps, 0, "healthy sweep must not write postmortems");
    }
}

/// The acceptance scenario: a fault-plan kill must leave a valid
/// `bfbp-postmortem/1` dump whose final ring entry is the last decision
/// made before the kill, and the events journal must reference the dump
/// through a `postmortem` event.
#[test]
fn killed_job_leaves_valid_postmortem_dump() {
    let registry = bfbp::default_registry();
    let runner = small_runner();
    let specs = small_specs();
    let dir = scratch("killed-pm");
    let events = scratch("killed.events.jsonl");

    let report = sweep(
        &registry,
        &specs,
        &runner,
        &SweepOptions::default()
            .with_fault_plan(FaultPlan::new().kill_at(1, 500))
            .with_flight_recorder(64, &dir)
            .with_events(&events),
    )
    .expect("sweep");
    assert_eq!(report.jobs()[1].status, JobStatus::Killed);
    assert_eq!(report.summary().killed, 1);

    let dump_path = dir.join("job-1.postmortem.json");
    let text = fs::read_to_string(&dump_path).expect("postmortem written");
    let doc = parse_json(&text).expect("postmortem is valid JSON");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("bfbp-postmortem/1")
    );
    assert_eq!(doc.get("job").and_then(JsonValue::as_u64), Some(1));
    assert_eq!(
        doc.get("status").and_then(JsonValue::as_str),
        Some("killed")
    );
    let detail = doc
        .get("detail")
        .and_then(JsonValue::as_str)
        .expect("detail string");
    assert!(detail.contains("killed after"), "{detail}");

    // The ring saw every record up to the kill: its last entry must be
    // the decision immediately before death.
    let recorded = doc
        .get("recorded")
        .and_then(JsonValue::as_u64)
        .expect("recorded count");
    assert!(recorded >= 500, "kill fired before its record: {recorded}");
    let entries = doc
        .get("entries")
        .and_then(JsonValue::as_arr)
        .expect("entries array");
    assert_eq!(entries.len(), 64, "ring must be full at the kill point");
    let last = entries.last().expect("non-empty ring");
    assert_eq!(
        last.get("i").and_then(JsonValue::as_u64),
        Some(recorded - 1),
        "last ring entry must be the final pre-kill decision"
    );
    // Entry indices are consecutive — the ring holds the *last* 64.
    let first = entries.first().expect("non-empty ring");
    assert_eq!(
        first.get("i").and_then(JsonValue::as_u64),
        Some(recorded - 64)
    );
    for entry in entries {
        let pc = entry.get("pc").and_then(JsonValue::as_str).expect("pc");
        assert!(pc.starts_with("0x"), "pc rendered as hex string: {pc}");
    }

    // The journal must point at the dump.
    let parsed = read_events(&events).expect("journal parses");
    let pm = parsed
        .iter()
        .find(|e| e.ev == "postmortem")
        .expect("postmortem event journaled");
    assert_eq!(pm.job(), Some(1));
    assert_eq!(
        pm.get("file").and_then(JsonValue::as_str),
        dump_path.to_str(),
        "postmortem event must carry the dump path"
    );
    assert_eq!(pm.get("entries").and_then(JsonValue::as_u64), Some(64));
}

/// Round-trip every event type a faulty sweep produces through the
/// shared parser: timestamps must be monotonic, the expected vocabulary
/// must be present, and a torn final line must be tolerated while a
/// torn *earlier* line must be a hard error.
#[test]
fn events_journal_round_trips_through_shared_parser() {
    let registry = bfbp::default_registry();
    let runner = small_runner();
    let specs = small_specs();
    let events = scratch("roundtrip.events.jsonl");
    let dir = scratch("roundtrip-pm");

    let report = sweep(
        &registry,
        &specs,
        &runner,
        &SweepOptions::default()
            .with_retry(RetryPolicy::retries(1, std::time::Duration::from_millis(1)))
            .with_fault_plan(FaultPlan::new().flaky_panic_at(0, 1).kill_at(1, 500))
            .with_flight_recorder(32, &dir)
            .with_events(&events),
    )
    .expect("sweep");
    assert!(report.jobs()[0].is_ok(), "flaky job recovers on retry");
    assert_eq!(report.jobs()[1].status, JobStatus::Killed);

    let text = fs::read_to_string(&events).expect("journal written");
    let parsed = parse_events(&text).expect("journal parses");
    assert_eq!(
        parsed.len(),
        text.lines().count(),
        "every journal line parses"
    );

    let mut last_t = 0u64;
    for event in &parsed {
        assert!(event.t_us >= last_t, "t_us regressed at {:?}", event.ev);
        last_t = event.t_us;
    }
    for expected in [
        "journal_open",
        "sweep_open",
        "job_open",
        "retry",
        "killed",
        "postmortem",
        "job_close",
        "sweep_close",
    ] {
        assert!(
            parsed.iter().any(|e| e.ev == expected),
            "missing event type {expected:?}"
        );
    }

    // Torn tail (a crash mid-write) is dropped silently...
    let torn = format!("{text}{{\"ev\": \"job_open\", \"t_us\": 1");
    let tolerated = parse_events(&torn).expect("torn tail tolerated");
    assert_eq!(tolerated.len(), parsed.len());
    // ...but a torn line in the *middle* is corruption, not a crash.
    let lines: Vec<&str> = text.lines().collect();
    let corrupted = format!("{}\n{{\"ev\": \"bro\n{}\n", lines[0], lines[1..].join("\n"));
    assert!(parse_events(&corrupted).is_err(), "mid-file tear must fail");
}

/// `chrome_trace` over a real faulty sweep journal must emit valid
/// Chrome Trace JSON: a `traceEvents` array of complete (`ph: "X"`)
/// spans and instants (`ph: "i"`), one job span per job on its own
/// thread row, and the fault instants present.
#[test]
fn chrome_trace_export_is_valid_and_complete() {
    let registry = bfbp::default_registry();
    let runner = small_runner();
    let specs = small_specs();
    let events = scratch("chrome.events.jsonl");
    let dir = scratch("chrome-pm");

    let report = sweep(
        &registry,
        &specs,
        &runner,
        &SweepOptions::default()
            .with_fault_plan(FaultPlan::new().kill_at(2, 500))
            .with_flight_recorder(32, &dir)
            .with_events(&events),
    )
    .expect("sweep");
    let n_jobs = report.jobs().len();

    let parsed = read_events(&events).expect("journal parses");
    let trace_json = chrome_trace(&parsed);
    let doc = parse_json(&trace_json).expect("chrome trace is valid JSON");
    let trace_events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .expect("traceEvents array");
    assert!(!trace_events.is_empty());

    let mut job_spans = 0usize;
    let mut saw_sweep_span = false;
    let mut saw_kill_instant = false;
    for event in trace_events {
        let ph = event.get("ph").and_then(JsonValue::as_str).expect("ph");
        let name = event.get("name").and_then(JsonValue::as_str).expect("name");
        assert!(event.get("ts").and_then(JsonValue::as_f64).is_some());
        assert!(event.get("pid").and_then(JsonValue::as_u64).is_some());
        match ph {
            "X" => {
                let dur = event.get("dur").and_then(JsonValue::as_f64).expect("dur");
                assert!(dur >= 0.0, "negative span duration: {name}");
                let tid = event.get("tid").and_then(JsonValue::as_u64).expect("tid");
                if tid == 0 {
                    saw_sweep_span = true;
                } else if name.contains('/') && !name.contains("interval") {
                    job_spans += 1;
                }
            }
            "i" => {
                assert_eq!(
                    event.get("s").and_then(JsonValue::as_str),
                    Some("t"),
                    "instants must be thread-scoped"
                );
                if name == "killed" {
                    saw_kill_instant = true;
                }
            }
            other => panic!("unexpected phase {other:?} for {name}"),
        }
    }
    assert!(saw_sweep_span, "sweep span missing");
    assert_eq!(job_spans, n_jobs, "one span per job");
    assert!(saw_kill_instant, "kill instant missing");
}
