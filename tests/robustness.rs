//! Robustness fuzzing: every public predictor must behave sanely —
//! no panics, bounded state — on arbitrary branch streams, including
//! degenerate PCs (0, u64::MAX, unaligned) and hostile interleavings.

use proptest::prelude::*;

use bfbp::core::bf_neural::BfNeural;
use bfbp::core::bf_tage::bf_isl_tage;
use bfbp::predictors::piecewise::PiecewiseLinear;
use bfbp::predictors::snap::ScaledNeural;
use bfbp::sim::predictor::ConditionalPredictor;
use bfbp::sim::simulate::simulate;
use bfbp::tage::isl::isl_tage;
use bfbp::trace::record::{BranchKind, BranchRecord, Trace};

fn arb_stream() -> impl Strategy<Value = Vec<BranchRecord>> {
    prop::collection::vec(
        (
            prop_oneof![
                Just(0u64),
                Just(u64::MAX),
                Just(1u64),
                any::<u64>(),
                0u64..64, // heavy aliasing
            ],
            any::<u64>(),
            0u8..6,
            any::<bool>(),
            0u32..64,
        )
            .prop_map(|(pc, target, kind, taken, insts)| {
                let kind = BranchKind::from_u8(kind).expect("valid kind");
                BranchRecord {
                    pc,
                    target,
                    kind,
                    taken: if kind.is_conditional() { taken } else { true },
                    non_branch_insts: insts,
                }
            }),
        0..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn no_predictor_panics_on_arbitrary_streams(records in arb_stream()) {
        let trace = Trace::new("fuzz", records);
        let predictors: Vec<Box<dyn ConditionalPredictor>> = vec![
            Box::new(BfNeural::budget_64kb()),
            Box::new(bf_isl_tage(4)),
            Box::new(isl_tage(15)),
            Box::new(ScaledNeural::budget_64kb()),
            Box::new(PiecewiseLinear::conventional_64kb()),
        ];
        for mut p in predictors {
            let r = simulate(p.as_mut(), &trace);
            prop_assert!(r.mispredictions() <= r.conditional_branches());
            prop_assert!(r.accuracy() >= 0.0 && r.accuracy() <= 1.0);
        }
    }

    #[test]
    fn predictors_are_replay_deterministic(records in arb_stream()) {
        let trace = Trace::new("fuzz", records);
        let mut a = bf_isl_tage(7);
        let mut b = bf_isl_tage(7);
        let ra = simulate(&mut a, &trace);
        let rb = simulate(&mut b, &trace);
        prop_assert_eq!(ra.mispredictions(), rb.mispredictions());
    }

    #[test]
    fn single_branch_always_taken_is_learned_by_everyone(
        pc in any::<u64>(),
        len in 50usize..200,
    ) {
        let records = vec![BranchRecord::cond(pc, pc ^ 0x40, true, 1); len];
        let trace = Trace::new("mono", records);
        let predictors: Vec<Box<dyn ConditionalPredictor>> = vec![
            Box::new(BfNeural::budget_64kb()),
            Box::new(bf_isl_tage(4)),
            Box::new(isl_tage(4)),
        ];
        for mut p in predictors {
            let name = p.name();
            let r = simulate(p.as_mut(), &trace);
            prop_assert!(
                r.mispredictions() <= 4,
                "{} missed {} of {} on an always-taken branch",
                name, r.mispredictions(), len
            );
        }
    }
}
