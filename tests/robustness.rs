//! Robustness fuzzing: every public predictor must behave sanely —
//! no panics, bounded state — on arbitrary branch streams, including
//! degenerate PCs (0, u64::MAX, unaligned) and hostile interleavings.
//!
//! Streams come from the workspace's own deterministic [`Xoshiro256`]
//! generator, so every failing case is reproducible from its seed.

use bfbp::core::bf_neural::BfNeural;
use bfbp::core::bf_tage::bf_isl_tage;
use bfbp::predictors::piecewise::PiecewiseLinear;
use bfbp::predictors::snap::ScaledNeural;
use bfbp::sim::predictor::ConditionalPredictor;
use bfbp::sim::simulate::simulate;
use bfbp::tage::isl::isl_tage;
use bfbp::trace::record::{BranchKind, BranchRecord, Trace};
use bfbp::trace::rng::Xoshiro256;

fn rand_stream(rng: &mut Xoshiro256) -> Vec<BranchRecord> {
    let n = rng.below(400) as usize;
    (0..n)
        .map(|_| {
            let pc = match rng.below(5) {
                0 => 0u64,
                1 => u64::MAX,
                2 => 1u64,
                3 => rng.next_u64(),
                _ => rng.below(64), // heavy aliasing
            };
            let kind = BranchKind::from_u8(rng.below(6) as u8).expect("valid kind");
            BranchRecord {
                pc,
                target: rng.next_u64(),
                kind,
                taken: !kind.is_conditional() || rng.chance(0.5),
                non_branch_insts: rng.below(64) as u32,
            }
        })
        .collect()
}

#[test]
fn no_predictor_panics_on_arbitrary_streams() {
    for seed in 0..24u64 {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let trace = Trace::new("fuzz", rand_stream(&mut rng));
        let predictors: Vec<Box<dyn ConditionalPredictor>> = vec![
            Box::new(BfNeural::budget_64kb()),
            Box::new(bf_isl_tage(4)),
            Box::new(isl_tage(15)),
            Box::new(ScaledNeural::budget_64kb()),
            Box::new(PiecewiseLinear::conventional_64kb()),
        ];
        for mut p in predictors {
            let r = simulate(p.as_mut(), &trace);
            assert!(
                r.mispredictions() <= r.conditional_branches(),
                "seed {seed}"
            );
            assert!((0.0..=1.0).contains(&r.accuracy()), "seed {seed}");
        }
    }
}

#[test]
fn predictors_are_replay_deterministic() {
    for seed in 0..24u64 {
        let mut rng = Xoshiro256::seed_from_u64(100 + seed);
        let trace = Trace::new("fuzz", rand_stream(&mut rng));
        let mut a = bf_isl_tage(7);
        let mut b = bf_isl_tage(7);
        let ra = simulate(&mut a, &trace);
        let rb = simulate(&mut b, &trace);
        assert_eq!(ra.mispredictions(), rb.mispredictions(), "seed {seed}");
    }
}

#[test]
fn single_branch_always_taken_is_learned_by_everyone() {
    for seed in 0..8u64 {
        let mut rng = Xoshiro256::seed_from_u64(200 + seed);
        let pc = rng.next_u64();
        let len = rng.range_inclusive(50, 200) as usize;
        let records = vec![BranchRecord::cond(pc, pc ^ 0x40, true, 1); len];
        let trace = Trace::new("mono", records);
        let predictors: Vec<Box<dyn ConditionalPredictor>> = vec![
            Box::new(BfNeural::budget_64kb()),
            Box::new(bf_isl_tage(4)),
            Box::new(isl_tage(4)),
        ];
        for mut p in predictors {
            let name = p.name().into_owned();
            let r = simulate(p.as_mut(), &trace);
            assert!(
                r.mispredictions() <= 4,
                "{} missed {} of {} on an always-taken branch (seed {seed})",
                name,
                r.mispredictions(),
                len
            );
        }
    }
}
