//! Integration tests for the fault-tolerance layer: per-job isolation
//! (panic / timeout / trace corruption), the `bfbp-sweep/2` status
//! schema, checkpoint/resume through the journal, and determinism of
//! the degraded paths.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use bfbp::sim::engine::{sweep, sweep_inputs, JobStatus, SweepError, SweepOptions, TraceInput};
use bfbp::sim::fault::FaultPlan;
use bfbp::sim::journal::JournalError;
use bfbp::sim::registry::PredictorSpec;
use bfbp::sim::runner::SuiteRunner;
use bfbp::trace::format::{corrupt, write_trace};
use bfbp::trace::synth::suite;

fn small_runner() -> SuiteRunner {
    let specs: Vec<_> = ["INT1", "MM2"]
        .iter()
        .map(|n| suite::find(n).expect("trace in suite"))
        .collect();
    SuiteRunner::from_specs(specs, 0.02)
}

fn small_specs() -> Vec<PredictorSpec> {
    vec![
        PredictorSpec::new("gshare").labeled("g"),
        PredictorSpec::new("bimodal").labeled("b"),
    ]
}

/// A unique scratch path under the target temp dir.
fn scratch(name: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!("bfbp-fault-tests-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(format!("{}-{name}", SEQ.fetch_add(1, Ordering::Relaxed)))
}

/// The acceptance scenario from the fault-tolerance issue: a four-job
/// sweep where one job panics, one times out, and one hits a corrupt
/// trace. The sweep must complete the remaining job, record accurate
/// per-job statuses, and a `--resume` of the journal must re-execute
/// only the three unhealthy jobs — producing a results document
/// byte-identical to an all-healthy run.
#[test]
fn acceptance_panic_timeout_corruption_then_resume() {
    let registry = bfbp::default_registry();
    let runner = small_runner();
    let specs = small_specs();
    let journal = scratch("acceptance.journal");

    // Round 1: jobs 0 (panic), 1 (delayed into the timeout), and
    // 2 (corrupt trace load) all degrade; job 3 completes.
    let plan = FaultPlan::new()
        .panic_at(0)
        .delay_at(1, 60_000)
        .trace_error_at(2, corrupt::CorruptKind::ChecksumMismatch);
    let options = SweepOptions::default()
        .with_threads(2)
        .with_timeout(Duration::from_millis(250))
        .with_fault_plan(plan)
        .with_journal(&journal);
    let report = sweep(&registry, &specs, &runner, &options).expect("sweep starts");

    let summary = report.summary();
    assert_eq!(summary.jobs, 4);
    assert_eq!(summary.ok, 1, "the healthy job must complete");
    assert_eq!(summary.failed, 2, "panic + corrupt trace");
    assert_eq!(summary.timed_out, 1, "delayed job hits the watchdog");
    assert!(matches!(report.jobs()[0].status, JobStatus::Failed { .. }));
    assert_eq!(report.jobs()[1].status, JobStatus::TimedOut);
    assert!(matches!(report.jobs()[2].status, JobStatus::Failed { .. }));
    assert!(report.jobs()[3].is_ok());

    let json = report.results_json();
    assert!(json.contains("\"schema\": \"bfbp-sweep/2\""));
    assert!(json.contains("\"status\": \"failed\""));
    assert!(json.contains("\"status\": \"timed_out\""));
    assert!(json.contains("\"status\": \"ok\""));
    assert!(json.contains(
        "\"summary\": {\"jobs\": 4, \"ok\": 1, \"failed\": 2, \"timed_out\": 1, \"skipped\": 0, \
         \"killed\": 0}"
    ));

    // The journal holds the schema header plus one line per job.
    let round1 = fs::read_to_string(&journal).expect("journal written");
    assert_eq!(round1.lines().count(), 1 + 4, "{round1}");
    assert!(round1.starts_with("bfbp-journal/2 "), "{round1}");

    // Round 2: resume with the faults gone. Only the three unhealthy
    // jobs may re-run; the completed one is restored from the journal.
    let resumed_options = SweepOptions::default().with_threads(2).resuming(&journal);
    let resumed = sweep(&registry, &specs, &runner, &resumed_options).expect("resume");
    assert!(resumed.is_fully_ok());
    assert_eq!(
        resumed.summary().resumed,
        1,
        "one job restored, three re-run"
    );
    let round2 = fs::read_to_string(&journal).expect("journal appended");
    assert_eq!(
        round2.lines().count(),
        1 + 4 + 3,
        "resume must append exactly the three re-executed jobs:\n{round2}"
    );

    // The merged document is byte-identical to a run that never failed.
    let healthy =
        sweep(&registry, &specs, &runner, &SweepOptions::default()).expect("healthy sweep");
    assert_eq!(resumed.results_json(), healthy.results_json());
}

/// Every `TraceFormatError` variant, injected into one job, must fail
/// exactly that job and leave the rest of the matrix intact.
#[test]
fn every_trace_format_error_fails_exactly_one_job() {
    let registry = bfbp::default_registry();
    let runner = small_runner();
    let specs = vec![PredictorSpec::new("gshare").labeled("g")];
    for kind in corrupt::CorruptKind::ALL {
        let options = SweepOptions::default()
            .with_threads(1)
            .with_fault_plan(FaultPlan::new().trace_error_at(1, kind));
        let report = sweep(&registry, &specs, &runner, &options).expect("sweep starts");
        let summary = report.summary();
        assert_eq!(
            (summary.ok, summary.failed),
            (1, 1),
            "kind {} must fail job 1 only",
            kind.name()
        );
        match &report.jobs()[1].status {
            JobStatus::Failed { error } => assert!(
                error.starts_with("trace load failed: "),
                "kind {}: {error}",
                kind.name()
            ),
            other => panic!("kind {}: expected Failed, got {other:?}", kind.name()),
        }
        assert!(report.jobs()[0].is_ok(), "kind {}", kind.name());
    }
}

/// The degraded document must be as deterministic as the healthy one:
/// same faults, different thread counts, byte-identical results JSON.
#[test]
fn faulted_results_json_is_thread_count_independent() {
    let registry = bfbp::default_registry();
    let runner = small_runner();
    let specs = small_specs();
    let plan = FaultPlan::new()
        .panic_at(1)
        .skip_at(2)
        .trace_error_at(0, corrupt::CorruptKind::BadMagic);
    let serial = sweep(
        &registry,
        &specs,
        &runner,
        &SweepOptions::serial().with_fault_plan(plan.clone()),
    )
    .expect("serial");
    for threads in [2, 4] {
        let parallel = sweep(
            &registry,
            &specs,
            &runner,
            &SweepOptions::default()
                .with_threads(threads)
                .with_fault_plan(plan.clone()),
        )
        .expect("parallel");
        assert_eq!(
            serial.results_json(),
            parallel.results_json(),
            "{threads} threads"
        );
    }
}

/// On-disk traces: a corrupt file quarantines its column (with a real
/// parse error in the status) while healthy files sweep normally.
#[test]
fn corrupt_trace_file_quarantines_its_column() {
    let registry = bfbp::default_registry();
    let healthy_trace = suite::find("INT1").expect("INT1").generate_len(2_000);

    let healthy_path = scratch("healthy.bfbt");
    let mut bytes = Vec::new();
    write_trace(&mut bytes, &healthy_trace).expect("serialize");
    fs::write(&healthy_path, &bytes).expect("write healthy");

    // corrupt::corrupted needs a small trace (single-byte varint
    // offsets); corruption severity does not depend on length.
    let small_trace = suite::find("INT1").expect("INT1").generate_len(100);
    let corrupt_path = scratch("corrupt.bfbt");
    fs::write(
        &corrupt_path,
        corrupt::corrupted(&small_trace, corrupt::CorruptKind::ChecksumMismatch),
    )
    .expect("write corrupt");

    let inputs = [
        TraceInput::from_file(&healthy_path),
        TraceInput::from_file(&corrupt_path),
    ];
    assert!(matches!(inputs[0], TraceInput::Ready(_)));
    assert!(matches!(inputs[1], TraceInput::Unavailable { .. }));

    let specs = small_specs();
    let report =
        sweep_inputs(&registry, &specs, &inputs, &SweepOptions::default()).expect("sweep starts");
    let summary = report.summary();
    assert_eq!((summary.ok, summary.failed), (2, 2));
    for s in 0..2 {
        assert!(report.job(s, 0).expect("cell").is_ok());
        let broken = report.job(s, 1).expect("cell");
        assert_eq!(broken.attempts, 0, "unavailable traces are never attempted");
        match &broken.status {
            JobStatus::Failed { error } => {
                assert!(error.contains("checksum"), "{error}")
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }
}

/// A watchdog firing used to be invisible: the job's terminal status
/// said `timed_out` but nothing recorded *when* the budget ran out.
/// With an event journal attached, the timeout must appear as a
/// timestamped `timeout` event and the job's span must close with the
/// `timed_out` status.
#[test]
fn watchdog_timeout_is_visible_in_the_event_journal() {
    let registry = bfbp::default_registry();
    let runner = small_runner();
    let specs = vec![PredictorSpec::new("gshare").labeled("g")];
    let events = scratch("timeout.events.jsonl");

    let options = SweepOptions::default()
        .with_threads(1)
        .with_timeout(Duration::from_millis(100))
        .with_fault_plan(FaultPlan::new().delay_at(1, 60_000))
        .with_events(&events);
    let report = sweep(&registry, &specs, &runner, &options).expect("sweep");
    assert_eq!(report.jobs()[1].status, JobStatus::TimedOut);

    let journal = fs::read_to_string(&events).expect("event journal written");
    let timeout_line = journal
        .lines()
        .find(|l| l.contains("\"ev\": \"timeout\""))
        .unwrap_or_else(|| panic!("no timeout event in journal:\n{journal}"));
    assert!(timeout_line.contains("\"t_us\": "), "{timeout_line}");
    assert!(timeout_line.contains("\"job\": 1"), "{timeout_line}");
    assert!(timeout_line.contains("\"wall_ms\": "), "{timeout_line}");
    assert!(
        journal.lines().any(|l| {
            l.contains("\"ev\": \"job_close\"")
                && l.contains("\"job\": 1")
                && l.contains("\"status\": \"timed_out\"")
        }),
        "job 1's span must close with the timed_out status:\n{journal}"
    );
}

/// A journal recorded for one matrix must refuse to resume another.
#[test]
fn resume_rejects_a_journal_from_a_different_matrix() {
    let registry = bfbp::default_registry();
    let runner = small_runner();
    let journal = scratch("mismatch.journal");

    let specs_a = small_specs();
    sweep(
        &registry,
        &specs_a,
        &runner,
        &SweepOptions::default().with_journal(&journal),
    )
    .expect("first sweep");

    let specs_b = vec![PredictorSpec::new("gshare").labeled("other-label")];
    let err = sweep(
        &registry,
        &specs_b,
        &runner,
        &SweepOptions::default().resuming(&journal),
    )
    .expect_err("mismatched matrix must be rejected");
    assert!(
        matches!(
            err,
            SweepError::Journal(JournalError::MatrixMismatch { .. })
        ),
        "{err}"
    );
}

/// A transient fault plus a retry budget must converge to a fully-ok
/// run, with the extra attempts visible in the per-job accounting.
#[test]
fn transient_faults_recover_within_the_retry_budget() {
    let registry = bfbp::default_registry();
    let runner = small_runner();
    let specs = small_specs();
    let options = SweepOptions::default()
        .with_threads(2)
        .with_retry(bfbp::sim::RetryPolicy::retries(2, Duration::from_millis(1)))
        .with_fault_plan(FaultPlan::new().flaky_panic_at(0, 2).flaky_panic_at(3, 1));
    let report = sweep(&registry, &specs, &runner, &options).expect("sweep");
    assert!(report.is_fully_ok());
    assert_eq!(report.jobs()[0].attempts, 3);
    assert_eq!(report.jobs()[1].attempts, 1);
    assert_eq!(report.jobs()[3].attempts, 2);
    // Attempt counts are timing metadata, not results: the document is
    // still byte-identical to a first-try-clean run.
    let clean = sweep(&registry, &specs, &runner, &SweepOptions::default()).expect("clean sweep");
    assert_eq!(report.results_json(), clean.results_json());
}
