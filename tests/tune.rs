//! Integration tests for the budget-constrained autotuner: frontier
//! determinism across thread counts, kill-at-rung-boundary `--resume`
//! equivalence against an uninterrupted run, budget compliance of every
//! frontier point, and the `bfbp-tune/1` state fingerprint guard.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use bfbp::sim::ckpt::{fnv1a, write_atomic, StateReader, StateWriter};
use bfbp::sim::tune::{tune, SearchSpace, TuneError, TuneOptions, TUNE_MAGIC};
use bfbp::trace::synth::suite::{self, TraceSpec};

/// The committed tiny search space the acceptance criteria run on:
/// 8 BF-ISL-TAGE configurations (4 table counts x SC on/off).
const TINY_SPACE: &str = "bf-isl-tage:tables=4..7,sc=true|false";

/// Generous budget admitting every configuration in [`TINY_SPACE`].
const OPEN_BUDGET_BITS: u64 = 1024 * 1024 * 8;

fn scratch(name: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!("bfbp-tune-tests-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(format!("{}-{name}", SEQ.fetch_add(1, Ordering::Relaxed)))
}

fn tiny_traces() -> Vec<TraceSpec> {
    ["SPEC03", "MM1"]
        .iter()
        .map(|n| suite::find(n).expect("suite trace"))
        .collect()
}

fn tiny_options() -> TuneOptions {
    TuneOptions {
        eta: 2,
        rungs: 2,
        scale: 0.02,
        ..TuneOptions::default()
    }
}

#[test]
fn frontier_is_byte_identical_across_thread_counts() {
    let registry = bfbp::default_registry();
    let space = SearchSpace::parse(TINY_SPACE).expect("tiny space parses");
    let traces = tiny_traces();

    let mut single = tiny_options();
    single.sweep.threads = 1;
    let one = tune(&registry, &space, OPEN_BUDGET_BITS, &traces, &single).expect("1-thread tune");

    let mut quad = tiny_options();
    quad.sweep.threads = 4;
    let four = tune(&registry, &space, OPEN_BUDGET_BITS, &traces, &quad).expect("4-thread tune");

    assert!(!one.frontier().is_empty(), "tiny space yields a frontier");
    assert_eq!(
        one.frontier_json(),
        four.frontier_json(),
        "frontier depends on thread count"
    );

    // And the files the CLI would write are byte-identical too.
    let p1 = scratch("frontier-1t.json");
    let p4 = scratch("frontier-4t.json");
    one.write_frontier(&p1).expect("write 1-thread frontier");
    four.write_frontier(&p4).expect("write 4-thread frontier");
    assert_eq!(
        fs::read(&p1).expect("read"),
        fs::read(&p4).expect("read"),
        "written frontier files differ"
    );
}

/// Rewrites a complete `bfbp-tune/1` state file keeping only its first
/// `keep` rungs — byte-exactly what a process killed at that rung
/// boundary leaves behind (the state is rewritten atomically after
/// every rung).
fn truncate_state_to(path: &PathBuf, keep: usize) {
    let bytes = fs::read(path).expect("read state");
    assert!(bytes.starts_with(TUNE_MAGIC), "state magic");
    let payload = &bytes[TUNE_MAGIC.len()..bytes.len() - 16];
    let mut r = StateReader::new(payload);
    let tune_id = r.u64().expect("tune id");
    let n_rungs = r.usize().expect("rung count");
    assert!(keep <= n_rungs, "cannot keep {keep} of {n_rungs} rungs");

    let mut w = StateWriter::new();
    w.u64(tune_id);
    w.usize(keep);
    for _ in 0..keep {
        let rung = r.usize().expect("rung");
        let divisor = r.u64().expect("divisor");
        let n_scores = r.usize().expect("score count");
        w.usize(rung);
        w.u64(divisor);
        w.usize(n_scores);
        for _ in 0..n_scores {
            w.usize(r.usize().expect("index"));
            w.u64(r.u64().expect("mpki bits"));
        }
    }
    let payload = w.into_bytes();
    let mut out = Vec::with_capacity(TUNE_MAGIC.len() + payload.len() + 16);
    out.extend_from_slice(TUNE_MAGIC);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    write_atomic(path, &out).expect("rewrite truncated state");
}

#[test]
fn resume_at_rung_boundary_reproduces_uninterrupted_frontier() {
    let registry = bfbp::default_registry();
    let space = SearchSpace::parse(TINY_SPACE).expect("tiny space parses");
    let traces = tiny_traces();

    // Reference: uninterrupted, no state journaling at all.
    let reference = tune(
        &registry,
        &space,
        OPEN_BUDGET_BITS,
        &traces,
        &tiny_options(),
    )
    .expect("reference tune");

    // Journaled run: state must not perturb the search.
    let state = scratch("tune.state");
    let mut journaled = tiny_options();
    journaled.state = Some(state.clone());
    let full =
        tune(&registry, &space, OPEN_BUDGET_BITS, &traces, &journaled).expect("journaled tune");
    assert_eq!(
        reference.frontier_json(),
        full.frontier_json(),
        "state journaling perturbed the frontier"
    );

    // Kill at the rung-0/rung-1 boundary: the state file then carries
    // exactly one completed rung. Resume must restore rung 0 without
    // re-simulating it, re-run rung 1, and land on the same bytes.
    truncate_state_to(&state, 1);
    let mut resumed_options = journaled.clone();
    resumed_options.resume = true;
    let resumed = tune(
        &registry,
        &space,
        OPEN_BUDGET_BITS,
        &traces,
        &resumed_options,
    )
    .expect("resumed tune");
    assert!(resumed.outcomes()[0].restored, "rung 0 not restored");
    assert!(!resumed.outcomes()[1].restored, "rung 1 must re-run");
    assert_eq!(
        reference.frontier_json(),
        resumed.frontier_json(),
        "resumed frontier differs from uninterrupted run"
    );
}

#[test]
fn every_frontier_point_fits_the_budget() {
    let registry = bfbp::default_registry();
    let space = SearchSpace::parse(TINY_SPACE).expect("tiny space parses");
    let traces = tiny_traces();
    // Tight enough that part of the space is infeasible (the probed
    // space spans roughly 456..560 kbits).
    let budget_bits = 480 * 1024;

    let report =
        tune(&registry, &space, budget_bits, &traces, &tiny_options()).expect("tight-budget tune");
    assert!(report.over_budget() > 0, "budget did not bite");
    for candidate in report.candidates() {
        assert!(
            candidate.total_bits() <= budget_bits,
            "candidate c{} admitted at {} bits over budget {budget_bits}",
            candidate.index,
            candidate.total_bits()
        );
    }
    assert!(!report.frontier().is_empty(), "no frontier under budget");
    for point in report.frontier() {
        assert!(
            point.total_bits <= budget_bits,
            "frontier point c{} at {} bits exceeds budget {budget_bits}",
            point.candidate,
            point.total_bits
        );
        assert!(point.mean_mpki.is_finite() && point.mean_mpki >= 0.0);
    }
}

#[test]
fn state_from_a_different_run_is_rejected_on_resume() {
    let registry = bfbp::default_registry();
    let space = SearchSpace::parse(TINY_SPACE).expect("tiny space parses");
    let traces = tiny_traces();

    let state = scratch("mismatch.state");
    let mut writer = tiny_options();
    writer.state = Some(state.clone());
    tune(&registry, &space, OPEN_BUDGET_BITS, &traces, &writer).expect("seeding tune");

    // Same state file, different search seed: the fingerprint no longer
    // matches, so resuming must fail loudly instead of silently mixing
    // two runs' scores.
    let mut other = writer.clone();
    other.resume = true;
    other.seed ^= 0xDEAD_BEEF;
    match tune(&registry, &space, OPEN_BUDGET_BITS, &traces, &other) {
        Err(TuneError::State { .. }) => {}
        Ok(_) => panic!("mismatched state accepted"),
        Err(e) => panic!("expected a state error, got {e}"),
    }
}
