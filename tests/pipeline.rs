//! Cross-crate integration tests: the full pipeline from workload
//! synthesis through the on-disk format to simulation, exercising every
//! crate boundary the way a downstream user would.

use std::io::Cursor;

use bfbp::core::bf_neural::BfNeural;
use bfbp::core::bf_tage::bf_isl_tage;
use bfbp::predictors::piecewise::PiecewiseLinear;
use bfbp::sim::predictor::ConditionalPredictor;
use bfbp::sim::registry::PredictorSpec;
use bfbp::sim::runner::SuiteRunner;
use bfbp::sim::simulate::{simulate, simulate_stream};
use bfbp::tage::isl::isl_tage;
use bfbp::trace::format::{read_trace, write_trace};
use bfbp::trace::synth::suite;

#[test]
fn generate_write_read_simulate_roundtrip() {
    let spec = suite::find("INT1").expect("INT1 in suite");
    let trace = spec.generate_len(8_000);

    // Through the binary format.
    let mut buf = Vec::new();
    write_trace(&mut buf, &trace).expect("write");
    let back = read_trace(Cursor::new(&buf)).expect("read");
    assert_eq!(back, trace);

    // Simulating the in-memory trace and the decoded stream must give
    // identical results.
    let mut p1 = BfNeural::budget_64kb();
    let mut p2 = BfNeural::budget_64kb();
    let r1 = simulate(&mut p1, &trace);
    let r2 = simulate_stream(&mut p2, trace.name(), back.into_records());
    assert_eq!(r1.mispredictions(), r2.mispredictions());
    assert_eq!(r1.conditional_branches(), r2.conditional_branches());
    assert_eq!(r1.instructions(), r2.instructions());
}

#[test]
fn simulation_is_deterministic_across_runs() {
    let spec = suite::find("MM2").expect("MM2 in suite");
    let trace = spec.generate_len(10_000);
    let runs: Vec<u64> = (0..3)
        .map(|_| {
            let mut p = bf_isl_tage(7);
            simulate(&mut p, &trace).mispredictions()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}

#[test]
fn every_suite_trace_runs_through_every_headline_predictor() {
    let registry = bfbp::default_registry();
    let runner = SuiteRunner::generate(0.01);
    let specs = [
        PredictorSpec::new("piecewise"),
        PredictorSpec::new("bf-neural"),
        PredictorSpec::new("isl-tage")
            .with("tables", 10usize)
            .labeled("isl-tage-10"),
        PredictorSpec::new("bf-isl-tage").labeled("bf-isl-tage-10"),
    ];
    for spec in specs {
        let name = spec.label();
        let results = runner.run_spec(&registry, &spec).expect("spec builds");
        assert_eq!(results.len(), 40, "{name} must cover the whole suite");
        for r in &results {
            assert!(
                r.accuracy() > 0.5,
                "{name} on {} below coin-flip: {}",
                r.trace_name(),
                r.accuracy()
            );
            assert!(r.conditional_branches() > 0);
        }
    }
}

#[test]
fn all_64kb_predictors_fit_a_comparable_budget() {
    let predictors: Vec<Box<dyn ConditionalPredictor>> = vec![
        Box::new(PiecewiseLinear::conventional_64kb()),
        Box::new(BfNeural::budget_64kb()),
        Box::new(isl_tage(15)),
        Box::new(bf_isl_tage(10)),
    ];
    for p in predictors {
        let kib = p.storage().total_kib();
        assert!(
            (40.0..72.0).contains(&kib),
            "{} claims {kib:.1} KiB",
            p.name()
        );
    }
}

#[test]
fn suite_traces_are_stable_across_generations() {
    // The experiment harness relies on bit-identical regeneration.
    let a = suite::find("SERV1").unwrap().generate_len(5_000);
    let b = suite::find("SERV1").unwrap().generate_len(5_000);
    assert_eq!(a, b);
    // And a longer generation shares its prefix with a shorter one.
    let long = suite::find("SERV1").unwrap().generate_len(6_000);
    assert_eq!(&long.records()[..5_000], a.records());
}
