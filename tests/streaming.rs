//! Integration tests for the streaming trace pipeline: the chunked
//! [`Simulation`] hot loop must be byte-equivalent to the materialized
//! path for every registered predictor, `TraceInput::Streamed` sweeps
//! must produce byte-identical `bfbp-sweep/2` and `bfbp-metrics/1`
//! documents across thread counts, and the content-addressed trace
//! cache must be invisible to results while eliminating all synthetic
//! generation on a warm run (asserted via the events journal).

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use bfbp::sim::engine::{sweep_inputs, StreamedTrace, SweepOptions, TraceInput};
use bfbp::sim::obs::EventJournal;
use bfbp::sim::registry::PredictorSpec;
use bfbp::sim::runner::{scaled_len, SuiteRunner};
use bfbp::sim::simulate::Simulation;
use bfbp::trace::cache::TraceCache;
use bfbp::trace::synth::suite;
use bfbp::trace::synth::suite::TraceSpec;

/// The suite traces the equivalence battery runs on: one from each of
/// three workload families, kept short enough that every registered
/// predictor finishes the full cross-product quickly.
const EQUIV_TRACES: [&str; 3] = ["SPEC03", "MM2", "SERV1"];
const EQUIV_RECORDS: usize = 2000;

fn equiv_specs() -> Vec<TraceSpec> {
    EQUIV_TRACES
        .iter()
        .map(|n| suite::find(n).expect("trace in suite"))
        .collect()
}

/// A unique scratch path under the temp dir.
fn scratch(name: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!("bfbp-streaming-tests-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(format!("{}-{name}", SEQ.fetch_add(1, Ordering::Relaxed)))
}

/// Every registered predictor, on every equivalence trace, must produce
/// the same `SimResult` and the same interval series whether the trace
/// is materialized up front or synthesized chunk-by-chunk.
#[test]
fn streamed_and_materialized_paths_agree_for_every_predictor() {
    let registry = bfbp::default_registry();
    for trace_spec in equiv_specs() {
        let trace = trace_spec.generate_len(EQUIV_RECORDS);
        for name in registry.names() {
            let spec = PredictorSpec::new(name);
            let mut materialized = registry.build_spec(&spec).expect("builds from defaults");
            let reference = Simulation::new(materialized.as_mut())
                .intervals(2500)
                .run_trace(&trace)
                .expect("never cancelled");

            let mut streamed = registry.build_spec(&spec).expect("builds from defaults");
            let mut source = trace_spec.stream_len(EQUIV_RECORDS);
            let got = Simulation::new(streamed.as_mut())
                .intervals(2500)
                .run(&mut source)
                .expect("never cancelled");

            assert_eq!(
                reference,
                got,
                "{name} on {} diverges between materialized and streamed input",
                trace.name()
            );
        }
    }
}

/// `TraceInput::Streamed` must be indistinguishable from
/// `TraceInput::Ready` in the sweep documents — `bfbp-sweep/2` and
/// `bfbp-metrics/1` alike — at every thread count.
#[test]
fn streamed_sweeps_are_byte_identical_across_input_kind_and_threads() {
    let registry = bfbp::default_registry();
    let specs = vec![
        PredictorSpec::new("gshare").labeled("g"),
        PredictorSpec::new("bf-tage").labeled("bf"),
    ];
    let trace_specs = equiv_specs();

    let ready: Vec<TraceInput> = trace_specs
        .iter()
        .map(|s| TraceInput::ready(s.generate_len(EQUIV_RECORDS)))
        .collect();
    let streamed: Vec<TraceInput> = trace_specs
        .iter()
        .map(|s| TraceInput::streamed(s.clone(), EQUIV_RECORDS))
        .collect();

    let mut docs = Vec::new();
    for inputs in [&ready, &streamed] {
        for threads in [1, 2] {
            let report = sweep_inputs(
                &registry,
                &specs,
                inputs,
                &SweepOptions::default().with_threads(threads).with_metrics(),
            )
            .expect("sweep");
            assert!(report.is_fully_ok());
            docs.push((
                report.results_json(),
                report.metrics_json().expect("metrics collected"),
            ));
        }
    }
    for (results, metrics) in &docs[1..] {
        assert_eq!(
            results, &docs[0].0,
            "bfbp-sweep/2 document depends on input kind or thread count"
        );
        assert_eq!(
            metrics, &docs[0].1,
            "bfbp-metrics/1 document depends on input kind or thread count"
        );
    }
}

/// Cold-then-warm cache rounds must hand the sweep identical traces
/// (hence byte-identical documents), and a corrupted entry must be
/// silently regenerated rather than served.
#[test]
fn cache_round_trip_is_invisible_to_sweep_documents() {
    let registry = bfbp::default_registry();
    let specs = vec![PredictorSpec::new("bimodal").labeled("b")];
    let trace_specs = equiv_specs();
    let scale = 0.02;
    let cache_dir = scratch("roundtrip-cache");
    let cache = TraceCache::at(&cache_dir);

    let reference = {
        let runner = SuiteRunner::from_specs(trace_specs.clone(), scale);
        sweep_inputs(
            &registry,
            &specs,
            &ready_inputs(&runner),
            &SweepOptions::default().with_metrics(),
        )
        .expect("uncached sweep")
    };

    for round in ["cold", "warm"] {
        let runner = SuiteRunner::from_specs_cached(trace_specs.clone(), scale, &cache, None);
        let report = sweep_inputs(
            &registry,
            &specs,
            &ready_inputs(&runner),
            &SweepOptions::default().with_metrics(),
        )
        .expect("cached sweep");
        assert_eq!(
            report.results_json(),
            reference.results_json(),
            "{round} cache round changed the results document"
        );
        assert_eq!(
            report.metrics_json(),
            reference.metrics_json(),
            "{round} cache round changed the metrics document"
        );
    }

    // Corrupt one entry in place: the next cached run must regenerate it
    // and still match the reference byte for byte.
    let victim = &trace_specs[0];
    let entry = cache
        .entry_path(victim, scaled_len(victim, scale))
        .expect("cache enabled");
    let bytes = fs::read(&entry).expect("entry exists after the cold round");
    fs::write(&entry, &bytes[..bytes.len() / 2]).expect("truncate entry");
    let runner = SuiteRunner::from_specs_cached(trace_specs.clone(), scale, &cache, None);
    let report = sweep_inputs(
        &registry,
        &specs,
        &ready_inputs(&runner),
        &SweepOptions::default().with_metrics(),
    )
    .expect("sweep after corruption");
    assert_eq!(report.results_json(), reference.results_json());

    let _ = fs::remove_dir_all(&cache_dir);
}

/// A warm cache performs *zero* synthetic generation: every fetch in the
/// second round journals as a `hit`, none as `generated`.
#[test]
fn warm_cache_does_zero_generation_per_events_journal() {
    let trace_specs = equiv_specs();
    let scale = 0.02;
    let cache_dir = scratch("warm-cache");
    let cache = TraceCache::at(&cache_dir);

    let journal_for = |tag: &str| {
        let path = scratch(&format!("{tag}.events.jsonl"));
        (EventJournal::create(&path).expect("create journal"), path)
    };

    let (cold_journal, cold_path) = journal_for("cold");
    SuiteRunner::from_specs_cached(trace_specs.clone(), scale, &cache, Some(&cold_journal));
    drop(cold_journal);
    let cold = fs::read_to_string(&cold_path).expect("cold journal");
    assert_eq!(
        count_status(&cold, "generated"),
        trace_specs.len(),
        "cold round must generate every trace: {cold}"
    );

    let (warm_journal, warm_path) = journal_for("warm");
    SuiteRunner::from_specs_cached(trace_specs.clone(), scale, &cache, Some(&warm_journal));
    drop(warm_journal);
    let warm = fs::read_to_string(&warm_path).expect("warm journal");
    assert_eq!(
        count_status(&warm, "hit"),
        trace_specs.len(),
        "warm round must hit on every trace: {warm}"
    );
    assert_eq!(
        count_status(&warm, "generated"),
        0,
        "warm round must perform zero synthetic generation: {warm}"
    );

    let _ = fs::remove_dir_all(&cache_dir);
}

/// File-backed streamed inputs route through the same `trace_cache`
/// accounting as the materializing cache path: a healthy BFBT entry
/// journals its per-job open as a `hit`, a torn entry quarantines into
/// a `regenerated` (entry existed but failed validation) open — and
/// the sweep documents are byte-identical to pure synthesis either way.
#[test]
fn file_backed_streamed_inputs_journal_cache_status() {
    let registry = bfbp::default_registry();
    let specs = vec![PredictorSpec::new("bimodal").labeled("b")];
    let trace_spec = equiv_specs().remove(0);
    let cache_dir = scratch("streamed-file-cache");
    let cache = TraceCache::at(&cache_dir);
    cache.fetch(&trace_spec, EQUIV_RECORDS);
    let entry = cache
        .entry_path(&trace_spec, EQUIV_RECORDS)
        .expect("cache enabled");

    let reference = sweep_inputs(
        &registry,
        &specs,
        &[TraceInput::streamed(trace_spec.clone(), EQUIV_RECORDS)],
        &SweepOptions::serial(),
    )
    .expect("synthesis-only sweep");

    let file_backed = || {
        TraceInput::Streamed(Box::new(
            StreamedTrace::new(trace_spec.clone(), EQUIV_RECORDS).with_file(&entry),
        ))
    };

    let hit_path = scratch("hit.events.jsonl");
    let report = sweep_inputs(
        &registry,
        &specs,
        &[file_backed()],
        &SweepOptions::serial().with_events(&hit_path),
    )
    .expect("file-backed sweep");
    assert_eq!(
        report.results_json(),
        reference.results_json(),
        "healthy cache entry changed the results document"
    );
    let journal = fs::read_to_string(&hit_path).expect("hit journal");
    assert_eq!(count_status(&journal, "hit"), 1, "{journal}");
    assert_eq!(count_status(&journal, "generated"), 0, "{journal}");

    // Corrupt the entry in place: the per-job open must fall back to
    // synthesis, account for it as `regenerated` (the entry was there
    // but torn — not a cold `generated` miss), and still match.
    let bytes = fs::read(&entry).expect("entry exists");
    fs::write(&entry, &bytes[..bytes.len() / 2]).expect("truncate entry");
    let gen_path = scratch("regenerated.events.jsonl");
    let report = sweep_inputs(
        &registry,
        &specs,
        &[file_backed()],
        &SweepOptions::serial().with_events(&gen_path),
    )
    .expect("sweep after corruption");
    assert_eq!(
        report.results_json(),
        reference.results_json(),
        "corrupt cache entry changed the results document"
    );
    let journal = fs::read_to_string(&gen_path).expect("regenerated journal");
    assert_eq!(count_status(&journal, "regenerated"), 1, "{journal}");
    assert_eq!(count_status(&journal, "generated"), 0, "{journal}");
    assert_eq!(count_status(&journal, "hit"), 0, "{journal}");

    let _ = fs::remove_dir_all(&cache_dir);
}

fn ready_inputs(runner: &SuiteRunner) -> Vec<TraceInput> {
    runner
        .traces()
        .iter()
        .map(|t| TraceInput::Ready(t.clone()))
        .collect()
}

/// Counts `trace_cache` events carrying the given status keyword.
fn count_status(journal: &str, status: &str) -> usize {
    journal
        .lines()
        .filter(|l| {
            l.contains("\"ev\": \"trace_cache\"")
                && l.contains(&format!("\"status\": \"{status}\""))
        })
        .count()
}
