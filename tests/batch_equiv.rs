//! Batched ≡ per-record equivalence: the chunked [`Simulation`] hot
//! loop — including every hand-written `predict_batch`/`update_batch`
//! kernel — must reproduce the record-at-a-time `predict`/`update`
//! contract exactly, for every registered predictor, on every trace,
//! at any chunk size.
//!
//! The reference below is a deliberately naive per-record loop over the
//! materialized trace, with interval windows closed on exact record
//! boundaries; the batched path must match its misprediction counts,
//! instruction totals, and full interval series (hence every windowed
//! MPKI) bit for bit.

use bfbp::sim::predictor::ConditionalPredictor;
use bfbp::sim::simulate::{IntervalPoint, Simulation};
use bfbp::trace::record::Trace;
use bfbp::trace::synth::suite;

const INTERVAL_INSTS: u64 = 2_500;
const TRACES: [&str; 3] = ["SPEC03", "MM2", "SERV1"];
const CHUNK_SIZES: [usize; 3] = [1, 7, 4096];
const RECORDS: usize = 6_000;

struct Reference {
    conditional_branches: u64,
    mispredictions: u64,
    instructions: u64,
    intervals: Vec<IntervalPoint>,
}

/// The per-record contract, spelled out: predict then update each
/// conditional in commit order, `track_other` for the rest, close an
/// interval window on the first record boundary at or past
/// `INTERVAL_INSTS`, and flush the final partial window.
fn reference_run(predictor: &mut dyn ConditionalPredictor, trace: &Trace) -> Reference {
    let mut reference = Reference {
        conditional_branches: 0,
        mispredictions: 0,
        instructions: 0,
        intervals: Vec::new(),
    };
    let mut window = IntervalPoint {
        instructions: 0,
        conditional_branches: 0,
        mispredictions: 0,
    };
    for record in trace.records() {
        let insts = record.instructions();
        reference.instructions += insts;
        window.instructions += insts;
        if record.kind.is_conditional() {
            reference.conditional_branches += 1;
            window.conditional_branches += 1;
            let guess = predictor.predict(record.pc);
            if guess != record.taken {
                reference.mispredictions += 1;
                window.mispredictions += 1;
            }
            predictor.update(record.pc, record.taken, record.target);
        } else {
            predictor.track_other(record);
        }
        if window.instructions >= INTERVAL_INSTS {
            reference.intervals.push(window);
            window = IntervalPoint {
                instructions: 0,
                conditional_branches: 0,
                mispredictions: 0,
            };
        }
    }
    if window.instructions > 0 {
        reference.intervals.push(window);
    }
    reference
}

#[test]
fn every_registry_predictor_batches_identically() {
    let registry = bfbp::default_registry();
    let names = registry.names();
    assert!(names.len() >= 8, "registry unexpectedly small: {names:?}");
    for trace_name in TRACES {
        let trace = suite::find(trace_name)
            .unwrap_or_else(|| panic!("{trace_name} in suite"))
            .generate_len(RECORDS);
        for name in &names {
            let mut reference_predictor = registry
                .build(name, &Default::default())
                .unwrap_or_else(|e| panic!("build {name}: {e}"));
            let reference = reference_run(reference_predictor.as_mut(), &trace);
            for chunk in CHUNK_SIZES {
                let mut predictor = registry
                    .build(name, &Default::default())
                    .unwrap_or_else(|e| panic!("build {name}: {e}"));
                let (result, intervals) = Simulation::new(predictor.as_mut())
                    .intervals(INTERVAL_INSTS)
                    .chunk_records(chunk)
                    .run_trace(&trace)
                    .expect("replay cannot abort");
                let ctx = format!("{name} on {trace_name}, chunk={chunk}");
                assert_eq!(
                    result.mispredictions(),
                    reference.mispredictions,
                    "misprediction count diverged: {ctx}"
                );
                assert_eq!(
                    result.conditional_branches(),
                    reference.conditional_branches,
                    "conditional count diverged: {ctx}"
                );
                assert_eq!(
                    result.instructions(),
                    reference.instructions,
                    "instruction count diverged: {ctx}"
                );
                assert_eq!(
                    intervals, reference.intervals,
                    "interval series (windowed MPKI) diverged: {ctx}"
                );
                let interval_miss: u64 = intervals.iter().map(|w| w.mispredictions).sum();
                assert_eq!(
                    interval_miss,
                    result.mispredictions(),
                    "interval windows must sum to the total: {ctx}"
                );
            }
        }
    }
}
