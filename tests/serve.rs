//! End-to-end tests for the online prediction service: an in-process
//! `Server` driven by `ServeClient` over real loopback TCP. The
//! load-bearing property throughout is that served sessions produce
//! counters *byte-identical* to an offline `Simulation::run` of the
//! same (spec, trace) pair — across every registered predictor, across
//! load shedding, and across both graceful shutdown and a
//! SIGKILL-equivalent crash followed by a restart that resumes from
//! `bfbp-ckpt/1` session checkpoints.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use bfbp::sim::service::{ServeClient, ServeError, ServeOptions, Server, ServerHandle};
use bfbp::sim::simulate::Simulation;
use bfbp::sim::wire::{ErrorCode, SessionStats};
use bfbp::trace::record::Trace;
use bfbp::trace::synth::suite;
use bfbp::trace::TraceChunk;

/// A unique scratch path under the target temp dir.
fn scratch(name: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!("bfbp-serve-tests-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(format!("{}-{name}", SEQ.fetch_add(1, Ordering::Relaxed)))
}

fn spec03(n_records: usize) -> Trace {
    suite::find("SPEC03")
        .expect("SPEC03 in suite")
        .generate_len(n_records)
}

fn chunk_of(trace: &Trace) -> TraceChunk {
    let mut chunk = TraceChunk::with_capacity(trace.len());
    for record in trace.records() {
        chunk.push(record);
    }
    chunk
}

/// Ground truth: the offline simulation's counters for (spec, trace).
fn offline(spec: &str, trace: &Trace) -> SessionStats {
    let registry = bfbp::default_registry();
    let parsed = bfbp::sim::registry::PredictorSpec::parse(spec).expect("valid spec");
    let mut predictor = registry.build_spec(&parsed).expect("buildable spec");
    let (result, _) = Simulation::new(predictor.as_mut())
        .run_trace(trace)
        .expect("never cancelled");
    SessionStats {
        records: trace.len() as u64,
        instructions: result.instructions(),
        conditional_branches: result.conditional_branches(),
        mispredictions: result.mispredictions(),
    }
}

/// Stops the server when dropped — crucially, *during unwind too*: a
/// failing assertion inside a `thread::scope` would otherwise leave
/// the serving thread blocked in `accept` and hang the whole test
/// binary at the scope's implicit join.
struct StopOnDrop(ServerHandle);

impl Drop for StopOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Runs `body` against a served instance, then shuts the server down
/// gracefully (unless the body already stopped it) and returns the
/// body's result alongside the persisted-session count.
fn with_server<T>(
    options: ServeOptions,
    body: impl FnOnce(std::net::SocketAddr, &ServerHandle) -> T,
) -> (T, u64) {
    let server = Server::bind("127.0.0.1:0", bfbp::default_registry(), options)
        .expect("bind ephemeral loopback port");
    let addr = server.local_addr();
    let handle = server.handle();
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve().expect("serve loop"));
        let stop = StopOnDrop(handle.clone());
        let result = body(addr, &handle);
        drop(stop);
        let persisted = serving.join().expect("serve thread");
        (result, persisted)
    })
}

/// Streams `chunk[cursor..]` through the session as maximal same-kind
/// runs capped at `batch`, mirroring the simulation's segmentation,
/// then closes the session and returns its final counters.
fn drive(
    client: &mut ServeClient,
    session: u64,
    chunk: &TraceChunk,
    mut cursor: usize,
    batch: usize,
) -> Result<SessionStats, ServeError> {
    stream(client, session, chunk, &mut cursor, chunk.len(), batch)?;
    client.close_session(session)
}

/// Streams `chunk[*cursor..until]` without closing the session.
fn stream(
    client: &mut ServeClient,
    session: u64,
    chunk: &TraceChunk,
    cursor: &mut usize,
    until: usize,
    batch: usize,
) -> Result<(), ServeError> {
    let kinds = chunk.kinds();
    while *cursor < until {
        let conditional = kinds[*cursor].is_conditional();
        let mut j = *cursor + 1;
        while j < until && j - *cursor < batch && kinds[j].is_conditional() == conditional {
            j += 1;
        }
        if conditional {
            client.predict_batch(
                session,
                &chunk.pcs()[*cursor..j],
                &chunk.targets()[*cursor..j],
                &chunk.inst_gaps()[*cursor..j],
                &chunk.takens()[*cursor..j],
            )?;
        } else {
            client.outcome_batch(session, chunk, *cursor, j)?;
        }
        *cursor = j;
    }
    Ok(())
}

#[test]
fn served_counts_match_offline_for_every_predictor() {
    let trace = spec03(2_000);
    let chunk = chunk_of(&trace);
    let registry = bfbp::default_registry();
    let names: Vec<String> = registry.names().iter().map(|n| (*n).to_owned()).collect();
    let ((), _) = with_server(ServeOptions::default(), |addr, _| {
        let mut client = ServeClient::connect(addr).expect("connect");
        let catalogue = client.hello("serve-tests").expect("hello");
        assert_eq!(catalogue.len(), names.len(), "catalogue lists the registry");
        for (i, name) in names.iter().enumerate() {
            let session = (i + 1) as u64;
            let opened = client.open(session, name).expect("open");
            assert!(!opened.resumed, "{name}: fresh session");
            assert_eq!(opened.stats, SessionStats::default());
            let served = drive(&mut client, session, &chunk, 0, 512).expect("drive");
            assert_eq!(served, offline(name, &trace), "{name}: served != offline");
        }
    });
}

#[test]
fn predictions_on_the_wire_match_the_servers_accounting() {
    // The per-record miss flags the client gets back must sum to the
    // misprediction counter the server reports — the flags are the
    // real payload, the counters just audit them.
    let trace = spec03(2_000);
    let chunk = chunk_of(&trace);
    let ((), _) = with_server(ServeOptions::default(), |addr, _| {
        let mut client = ServeClient::connect(addr).expect("connect");
        client.hello("serve-tests").expect("hello");
        client.open(7, "bf-tage").expect("open");
        let kinds = chunk.kinds();
        let mut flagged = 0u64;
        let mut cursor = 0usize;
        while cursor < chunk.len() {
            let conditional = kinds[cursor].is_conditional();
            let mut j = cursor + 1;
            while j < chunk.len() && j - cursor < 256 && kinds[j].is_conditional() == conditional {
                j += 1;
            }
            if conditional {
                let miss = client
                    .predict_batch(
                        7,
                        &chunk.pcs()[cursor..j],
                        &chunk.targets()[cursor..j],
                        &chunk.inst_gaps()[cursor..j],
                        &chunk.takens()[cursor..j],
                    )
                    .expect("predict");
                assert_eq!(miss.len(), j - cursor, "one flag per record");
                flagged += miss.iter().filter(|&&m| m).count() as u64;
            } else {
                client.outcome_batch(7, &chunk, cursor, j).expect("outcome");
            }
            cursor = j;
        }
        let stats = client.close_session(7).expect("close");
        assert_eq!(stats.mispredictions, flagged);
        assert_eq!(stats, offline("bf-tage", &trace));
    });
}

#[test]
fn overload_is_shed_with_a_typed_retry_error() {
    let options = ServeOptions {
        max_connections: 1,
        ..ServeOptions::default()
    };
    let ((), _) = with_server(options, |addr, _| {
        let mut first = ServeClient::connect(addr).expect("connect first");
        first.hello("occupant").expect("hello");
        // The slot is taken: the next connection must be shed with a
        // RETRY error frame, which the client surfaces as a retryable
        // remote error rather than a mystery hangup.
        let mut second = ServeClient::connect(addr).expect("connect second");
        match second.hello("shed-me") {
            Err(
                err @ ServeError::Remote {
                    code: ErrorCode::Retry,
                    ..
                },
            ) => assert!(err.is_retryable(), "shed replies invite a retry"),
            other => panic!("expected a RETRY shed, got {other:?}"),
        }
    });
}

#[test]
fn protocol_misuse_gets_typed_errors_not_hangups() {
    let trace = spec03(200);
    let chunk = chunk_of(&trace);
    let ((), _) = with_server(ServeOptions::default(), |addr, _| {
        let mut client = ServeClient::connect(addr).expect("connect");
        client.hello("serve-tests").expect("hello");
        // Predicting on a session nobody opened.
        match stream(&mut client, 99, &chunk, &mut 0, chunk.len(), 64) {
            Err(ServeError::Remote {
                code: ErrorCode::UnknownSession,
                session: 99,
                ..
            }) => {}
            other => panic!("expected UnknownSession, got {other:?}"),
        }
        // Opening a spec the registry cannot build.
        match client.open(1, "no-such-predictor") {
            Err(ServeError::Remote {
                code: ErrorCode::BadSpec,
                ..
            }) => {}
            other => panic!("expected BadSpec, got {other:?}"),
        }
        // Re-attaching with a different spec text.
        client.open(2, "gshare").expect("open");
        match client.open(2, "bimodal") {
            Err(ServeError::Remote {
                code: ErrorCode::BadSpec,
                ..
            }) => {}
            other => panic!("expected BadSpec on spec mismatch, got {other:?}"),
        }
        // The connection survived every error above.
        client.close_session(2).expect("session 2 still live");
    });
}

#[test]
fn graceful_shutdown_persists_the_exact_offset_and_resumes() {
    let trace = spec03(2_000);
    let chunk = chunk_of(&trace);
    let dir = scratch("graceful");
    let options = ServeOptions {
        checkpoint_dir: Some(dir.clone()),
        ..ServeOptions::default()
    };
    // Phase 1: stream part of the trace, then ask the server to go
    // down gracefully — it must persist the session at its exact
    // current offset even with no checkpoint cadence configured.
    let ((cut, reported), persisted) = with_server(options.clone(), |addr, _| {
        let mut client = ServeClient::connect(addr).expect("connect");
        client.hello("phase-1").expect("hello");
        client.open(5, "bf-tage").expect("open");
        let mut cursor = 0usize;
        stream(&mut client, 5, &chunk, &mut cursor, 700, 128).expect("stream");
        let reported = client.shutdown_server().expect("graceful shutdown");
        (cursor, reported)
    });
    assert_eq!(reported, 1, "SHUTDOWN_ACK reports the persisted session");
    assert_eq!(persisted, 1, "one session persisted on the way down");

    // Phase 2: a fresh server over the same checkpoint directory
    // restores the session; the client resumes at the reported offset
    // and the final counters match an uninterrupted offline run.
    let server = Server::bind("127.0.0.1:0", bfbp::default_registry(), options)
        .expect("bind restart server");
    assert_eq!(server.restored_sessions(), 1, "session restored on boot");
    let addr = server.local_addr();
    let handle = server.handle();
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve().expect("serve loop"));
        let _stop = StopOnDrop(handle.clone());
        let mut client = ServeClient::connect(addr).expect("reconnect");
        client.hello("phase-2").expect("hello");
        let opened = client.open(5, "bf-tage").expect("re-open");
        assert!(opened.resumed, "session must resume, not restart");
        assert_eq!(
            opened.stats.records, cut as u64,
            "graceful shutdown persists the exact offset"
        );
        let served = drive(&mut client, 5, &chunk, cut, 128).expect("finish");
        assert_eq!(served, offline("bf-tage", &trace));
        let _ = serving;
    });
}

#[test]
fn kill_and_restart_resumes_from_cadence_checkpoints() {
    let trace = spec03(2_000);
    let chunk = chunk_of(&trace);
    let dir = scratch("killed");
    let options = ServeOptions {
        checkpoint_every: 256,
        checkpoint_dir: Some(dir.clone()),
        ..ServeOptions::default()
    };
    const SENT: usize = 1_500;

    // Phase 1: stream most of the trace, then kill the server — the
    // SIGKILL-equivalent path persists nothing on the way down, so
    // only the cadence checkpoints survive.
    let server = Server::bind("127.0.0.1:0", bfbp::default_registry(), options.clone())
        .expect("bind first server");
    let addr = server.local_addr();
    let handle = server.handle();
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve().expect("serve loop"));
        let _stop = StopOnDrop(handle.clone());
        let mut client = ServeClient::connect(addr).expect("connect");
        client.hello("phase-1").expect("hello");
        client.open(3, "bf-tage").expect("open");
        stream(&mut client, 3, &chunk, &mut 0, SENT, 100).expect("stream");
        handle.kill();
        let persisted = serving.join().expect("serve thread");
        assert_eq!(persisted, 0, "kill persists nothing");
    });

    // Phase 2: restart over the same directory. The session resumes
    // from its last cadence checkpoint: strictly behind what was sent
    // (the tail died with the process) but well past zero, on a
    // checkpoint-cadence boundary. Replaying from that offset must
    // converge to the uninterrupted offline counters.
    let server = Server::bind("127.0.0.1:0", bfbp::default_registry(), options)
        .expect("bind restart server");
    assert_eq!(server.restored_sessions(), 1, "session restored on boot");
    let addr = server.local_addr();
    let handle = server.handle();
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve().expect("serve loop"));
        let _stop = StopOnDrop(handle.clone());
        let mut client = ServeClient::connect(addr).expect("reconnect");
        client.hello("phase-2").expect("hello");
        let opened = client.open(3, "bf-tage").expect("re-open");
        assert!(opened.resumed, "session must resume, not restart");
        let restored = opened.stats.records;
        // Cadence persists fire at the first batch boundary past each
        // multiple of 256, so the restored offset is at least one full
        // cadence in but strictly behind what was sent.
        assert!(
            restored >= 256,
            "restored offset {restored}: at least one cadence checkpoint was written"
        );
        assert!(
            restored < SENT as u64,
            "restored offset {restored} must trail the {SENT} records sent"
        );
        let served = drive(&mut client, 3, &chunk, restored as usize, 100).expect("finish");
        assert_eq!(served, offline("bf-tage", &trace));
        let _ = serving;
    });
}

#[test]
fn closing_a_session_deletes_its_checkpoint() {
    let trace = spec03(600);
    let chunk = chunk_of(&trace);
    let dir = scratch("closed");
    let options = ServeOptions {
        checkpoint_every: 100,
        checkpoint_dir: Some(dir.clone()),
        ..ServeOptions::default()
    };
    let ((), persisted) = with_server(options, |addr, _| {
        let mut client = ServeClient::connect(addr).expect("connect");
        client.hello("serve-tests").expect("hello");
        client.open(1, "gshare").expect("open");
        let mut cursor = 0usize;
        stream(&mut client, 1, &chunk, &mut cursor, chunk.len(), 64).expect("stream");
        assert!(
            fs::read_dir(&dir).expect("ckpt dir").count() > 0,
            "cadence checkpoints exist while the session is live"
        );
        client.close_session(1).expect("close");
        assert_eq!(
            fs::read_dir(&dir).expect("ckpt dir").count(),
            0,
            "a closed session leaves no checkpoint behind"
        );
    });
    assert_eq!(persisted, 0, "nothing left to persist at shutdown");
}
