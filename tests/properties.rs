//! Property-based tests (proptest) for the core data structures and
//! invariants: trace-format roundtrips, recency-stack invariants, BST
//! FSM equivalence against a reference model, folded-history consistency,
//! history-register semantics, and BF-GHR bounds.

use std::collections::HashMap;
use std::io::Cursor;

use proptest::prelude::*;

use bfbp::core::bf_ghr::BfGhr;
use bfbp::core::bst::{BranchStatus, Bst};
use bfbp::core::recency::RecencyStack;
use bfbp::predictors::counter::{CounterTable, SatCounter};
use bfbp::predictors::history::{GlobalHistory, ManagedHistory};
use bfbp::trace::format::{read_trace, write_trace};
use bfbp::trace::record::{BranchKind, BranchRecord, Trace};

fn arb_record() -> impl Strategy<Value = BranchRecord> {
    (
        any::<u64>(),
        any::<u64>(),
        0u8..6,
        any::<bool>(),
        0u32..10_000,
    )
        .prop_map(|(pc, target, kind, taken, insts)| {
            let kind = BranchKind::from_u8(kind).expect("0..6 are valid kinds");
            BranchRecord {
                pc,
                target,
                kind,
                taken: if kind.is_conditional() { taken } else { true },
                non_branch_insts: insts,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trace_format_roundtrips_any_records(
        name in "[a-zA-Z0-9 _-]{0,40}",
        records in prop::collection::vec(arb_record(), 0..200),
    ) {
        let trace = Trace::new(name, records);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("write");
        let back = read_trace(Cursor::new(&buf)).expect("read");
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn trace_format_rejects_any_single_bitflip(
        records in prop::collection::vec(arb_record(), 1..50),
        flip_seed in any::<u64>(),
    ) {
        let trace = Trace::new("t", records);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("write");
        // Flip one bit somewhere in the body or footer (past the magic
        // and version, which have their own checks).
        let pos = 6 + (flip_seed as usize % (buf.len() - 6));
        let bit = (flip_seed >> 32) % 8;
        buf[pos] ^= 1 << bit;
        // Must fail loudly — either a parse error or a checksum/count
        // mismatch — or, if the flip landed in the name length/content,
        // produce a different name; silent identical success is a bug.
        if let Ok(back) = read_trace(Cursor::new(&buf)) {
            prop_assert_ne!(back, trace, "corruption must not go unnoticed");
        }
    }

    #[test]
    fn recency_stack_invariants_hold(
        ops in prop::collection::vec((0u64..24, any::<bool>()), 1..300),
        capacity in 1usize..16,
    ) {
        let mut rs = RecencyStack::new(capacity);
        let mut last_seen: HashMap<u64, (u64, bool)> = HashMap::new();
        for (now, (key, outcome)) in ops.into_iter().enumerate() {
            let now = now as u64;
            rs.record(key, outcome, now);
            last_seen.insert(key, (now, outcome));

            // Size bounded by capacity.
            prop_assert!(rs.len() <= capacity);
            // No duplicate keys.
            let mut keys: Vec<u64> = rs.iter().map(|e| e.key).collect();
            keys.sort_unstable();
            keys.dedup();
            prop_assert_eq!(keys.len(), rs.len());
            // Births strictly decreasing top to bottom (recency order).
            let births: Vec<u64> = rs.iter().map(|e| e.birth).collect();
            for w in births.windows(2) {
                prop_assert!(w[0] > w[1]);
            }
            // Every entry reflects the latest occurrence of its key.
            for e in rs.iter() {
                let (birth, outcome) = last_seen[&e.key];
                prop_assert_eq!(e.birth, birth);
                prop_assert_eq!(e.outcome, outcome);
            }
            // The most recent key is always on top.
            prop_assert_eq!(rs.iter().next().unwrap().key, key);
        }
    }

    #[test]
    fn bst_matches_reference_model(
        ops in prop::collection::vec((0u64..64, any::<bool>()), 1..400),
    ) {
        // Reference: per-PC "seen taken / seen not-taken" sets. The BST
        // is large enough here that no aliasing occurs (64 PCs, 2^10
        // entries, distinct low bits).
        let mut bst = Bst::new(10);
        let mut seen: HashMap<u64, (bool, bool)> = HashMap::new();
        for (pc_low, taken) in ops {
            let pc = pc_low << 2; // distinct table slots
            let e = seen.entry(pc).or_insert((false, false));
            if taken {
                e.0 = true;
            } else {
                e.1 = true;
            }
            let status = bst.commit(pc, taken);
            let expected = match *e {
                (true, true) => BranchStatus::NonBiased,
                (true, false) => BranchStatus::Taken,
                (false, true) => BranchStatus::NotTaken,
                (false, false) => unreachable!("at least one direction seen"),
            };
            prop_assert_eq!(status, expected);
            prop_assert_eq!(bst.status(pc), expected);
        }
    }

    #[test]
    fn folded_history_equals_recompute(
        bits in prop::collection::vec(any::<bool>(), 1..500),
        olen in 1usize..200,
        clen in 1usize..20,
    ) {
        let mut m = ManagedHistory::new(256, &[(olen.min(256), clen)]);
        for b in bits {
            m.push(b);
            prop_assert_eq!(m.fold(0), m.folds()[0].recompute(m.history()));
        }
    }

    #[test]
    fn global_history_matches_vec_model(
        bits in prop::collection::vec(any::<bool>(), 1..300),
        capacity in 1usize..100,
    ) {
        let mut h = GlobalHistory::new(capacity);
        let mut model: Vec<bool> = Vec::new();
        for b in bits {
            h.push(b);
            model.push(b);
            for age in 0..h.capacity() + 4 {
                let expected = if age < h.capacity() && age < model.len() {
                    model[model.len() - 1 - age]
                } else {
                    false
                };
                prop_assert_eq!(h.bit(age), expected, "age {}", age);
            }
        }
    }

    #[test]
    fn sat_counter_stays_in_range(
        bits in 1u32..8,
        ops in prop::collection::vec(any::<bool>(), 0..200),
    ) {
        let mut c = SatCounter::new(bits);
        for taken in ops {
            c.train(taken);
            prop_assert!(c.value() >= c.min());
            prop_assert!(c.value() <= c.max());
            prop_assert_eq!(c.is_taken(), c.value() >= 0);
        }
    }

    #[test]
    fn counter_table_stays_in_range(
        ops in prop::collection::vec((0usize..32, -20i32..20), 0..200),
        bits in 1u32..8,
    ) {
        let mut t = CounterTable::new(32, bits);
        let lo = -(1i32 << (bits - 1));
        let hi = (1i32 << (bits - 1)) - 1;
        for (idx, delta) in ops {
            t.add(idx, delta);
            prop_assert!((lo..=hi).contains(&t.get(idx)));
        }
    }

    #[test]
    fn bf_ghr_stays_within_compressed_capacity(
        ops in prop::collection::vec((any::<u16>(), any::<bool>(), any::<bool>()), 0..2500),
    ) {
        let mut ghr = BfGhr::new();
        let mut out = Vec::new();
        for (key, taken, non_biased) in ops {
            ghr.commit(key & 0x3FFF, taken, non_biased);
            prop_assert!(ghr.compressed_len() <= ghr.compressed_capacity());
        }
        ghr.collect(&mut out);
        prop_assert_eq!(out.len(), ghr.compressed_len());
        let mut mixed = Vec::new();
        ghr.collect_mixed(&mut mixed);
        prop_assert_eq!(mixed.len(), out.len());
    }

    #[test]
    fn biased_only_streams_never_populate_segments(
        keys in prop::collection::vec(any::<u16>(), 20..200),
    ) {
        // A stream of purely biased branches must leave every segment
        // stack empty: the BF-GHR compresses it to just the prefix.
        let mut ghr = BfGhr::new();
        for k in keys {
            ghr.commit(k & 0x3FFF, true, false);
        }
        prop_assert!(ghr.compressed_len() <= ghr.recent_len());
    }
}
