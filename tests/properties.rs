//! Randomized property tests for the core data structures and
//! invariants: trace-format roundtrips, recency-stack invariants, BST
//! FSM equivalence against a reference model, folded-history consistency,
//! history-register semantics, and BF-GHR bounds.
//!
//! Uses the workspace's own deterministic [`Xoshiro256`] generator, so
//! every case is reproducible from its printed seed.

use std::collections::HashMap;
use std::io::Cursor;

use bfbp::core::bf_ghr::BfGhr;
use bfbp::core::bst::{BranchStatus, Bst};
use bfbp::core::recency::RecencyStack;
use bfbp::predictors::counter::{CounterTable, SatCounter};
use bfbp::predictors::history::{GlobalHistory, ManagedHistory};
use bfbp::trace::format::{read_trace, write_trace};
use bfbp::trace::record::{BranchKind, BranchRecord, Trace};
use bfbp::trace::rng::Xoshiro256;

fn rand_record(rng: &mut Xoshiro256) -> BranchRecord {
    let kind = BranchKind::from_u8(rng.below(6) as u8).expect("0..6 are valid kinds");
    BranchRecord {
        pc: rng.next_u64(),
        target: rng.next_u64(),
        kind,
        taken: !kind.is_conditional() || rng.chance(0.5),
        non_branch_insts: rng.below(10_000) as u32,
    }
}

fn rand_records(rng: &mut Xoshiro256, lo: u64, hi: u64) -> Vec<BranchRecord> {
    let n = rng.range_inclusive(lo, hi) as usize;
    (0..n).map(|_| rand_record(rng)).collect()
}

#[test]
fn trace_format_roundtrips_any_records() {
    const NAME_CHARS: &[u8] = b"abcXYZ019 _-";
    for seed in 0..64u64 {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let name: String = (0..rng.below(41))
            .map(|_| *rng.pick(NAME_CHARS) as char)
            .collect();
        let trace = Trace::new(name, rand_records(&mut rng, 0, 200));
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("write");
        let back = read_trace(Cursor::new(&buf)).expect("read");
        assert_eq!(back, trace, "seed {seed}");
    }
}

#[test]
fn trace_format_rejects_any_single_bitflip() {
    for seed in 0..64u64 {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let trace = Trace::new("t", rand_records(&mut rng, 1, 50));
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("write");
        // Flip one bit somewhere in the body or footer (past the magic
        // and version, which have their own checks).
        let pos = 6 + rng.below((buf.len() - 6) as u64) as usize;
        let bit = rng.below(8);
        buf[pos] ^= 1 << bit;
        // Must fail loudly — either a parse error or a checksum/count
        // mismatch — or, if the flip landed in the name length/content,
        // produce a different name; silent identical success is a bug.
        if let Ok(back) = read_trace(Cursor::new(&buf)) {
            assert_ne!(back, trace, "seed {seed}: corruption went unnoticed");
        }
    }
}

#[test]
fn recency_stack_invariants_hold() {
    for seed in 0..64u64 {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let capacity = rng.range_inclusive(1, 15) as usize;
        let n_ops = rng.range_inclusive(1, 300) as usize;
        let mut rs = RecencyStack::new(capacity);
        let mut last_seen: HashMap<u64, (u64, bool)> = HashMap::new();
        for now in 0..n_ops as u64 {
            let key = rng.below(24);
            let outcome = rng.chance(0.5);
            rs.record(key, outcome, now);
            last_seen.insert(key, (now, outcome));

            // Size bounded by capacity.
            assert!(rs.len() <= capacity);
            // No duplicate keys.
            let mut keys: Vec<u64> = rs.iter().map(|e| e.key).collect();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(keys.len(), rs.len());
            // Births strictly decreasing top to bottom (recency order).
            let births: Vec<u64> = rs.iter().map(|e| e.birth).collect();
            for w in births.windows(2) {
                assert!(w[0] > w[1], "seed {seed}");
            }
            // Every entry reflects the latest occurrence of its key.
            for e in rs.iter() {
                let (birth, outcome) = last_seen[&e.key];
                assert_eq!(e.birth, birth);
                assert_eq!(e.outcome, outcome);
            }
            // The most recent key is always on top.
            assert_eq!(rs.iter().next().unwrap().key, key);
        }
    }
}

#[test]
fn bst_matches_reference_model() {
    for seed in 0..32u64 {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        // Reference: per-PC "seen taken / seen not-taken" sets. The BST
        // is large enough here that no aliasing occurs (64 PCs, 2^10
        // entries, distinct low bits).
        let mut bst = Bst::new(10);
        let mut seen: HashMap<u64, (bool, bool)> = HashMap::new();
        for _ in 0..rng.range_inclusive(1, 400) {
            let pc = rng.below(64) << 2; // distinct table slots
            let taken = rng.chance(0.5);
            let e = seen.entry(pc).or_insert((false, false));
            if taken {
                e.0 = true;
            } else {
                e.1 = true;
            }
            let status = bst.commit(pc, taken);
            let expected = match *e {
                (true, true) => BranchStatus::NonBiased,
                (true, false) => BranchStatus::Taken,
                (false, true) => BranchStatus::NotTaken,
                (false, false) => unreachable!("at least one direction seen"),
            };
            assert_eq!(status, expected, "seed {seed}");
            assert_eq!(bst.status(pc), expected, "seed {seed}");
        }
    }
}

#[test]
fn folded_history_equals_recompute() {
    for seed in 0..64u64 {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let olen = rng.range_inclusive(1, 199) as usize;
        let clen = rng.range_inclusive(1, 19) as usize;
        let mut m = ManagedHistory::new(256, &[(olen.min(256), clen)]);
        for _ in 0..rng.range_inclusive(1, 500) {
            m.push(rng.chance(0.5));
            assert_eq!(
                m.fold(0),
                m.folds()[0].recompute(m.history()),
                "seed {seed}"
            );
        }
    }
}

#[test]
fn global_history_matches_vec_model() {
    for seed in 0..48u64 {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let capacity = rng.range_inclusive(1, 99) as usize;
        let mut h = GlobalHistory::new(capacity);
        let mut model: Vec<bool> = Vec::new();
        for _ in 0..rng.range_inclusive(1, 300) {
            let b = rng.chance(0.5);
            h.push(b);
            model.push(b);
            for age in 0..h.capacity() + 4 {
                let expected = if age < h.capacity() && age < model.len() {
                    model[model.len() - 1 - age]
                } else {
                    false
                };
                assert_eq!(h.bit(age), expected, "seed {seed} age {age}");
            }
        }
    }
}

#[test]
fn sat_counter_stays_in_range() {
    for bits in 1u32..8 {
        let mut rng = Xoshiro256::seed_from_u64(bits as u64);
        let mut c = SatCounter::new(bits);
        for _ in 0..200 {
            c.train(rng.chance(0.5));
            assert!(c.value() >= c.min());
            assert!(c.value() <= c.max());
            assert_eq!(c.is_taken(), c.value() >= 0);
        }
    }
}

#[test]
fn counter_table_stays_in_range() {
    for bits in 1u32..8 {
        let mut rng = Xoshiro256::seed_from_u64(1000 + bits as u64);
        let mut t = CounterTable::new(32, bits);
        let lo = -(1i32 << (bits - 1));
        let hi = (1i32 << (bits - 1)) - 1;
        for _ in 0..200 {
            let idx = rng.below(32) as usize;
            let delta = rng.below(40) as i32 - 20;
            t.add(idx, delta);
            assert!((lo..=hi).contains(&t.get(idx)), "bits {bits}");
        }
    }
}

#[test]
fn bf_ghr_stays_within_compressed_capacity() {
    for seed in 0..16u64 {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut ghr = BfGhr::new();
        let mut out = Vec::new();
        for _ in 0..rng.below(2500) {
            let key = rng.below(1 << 14) as u16;
            ghr.commit(key, rng.chance(0.5), rng.chance(0.5));
            assert!(ghr.compressed_len() <= ghr.compressed_capacity());
        }
        ghr.collect(&mut out);
        assert_eq!(out.len(), ghr.compressed_len());
        let mut mixed = Vec::new();
        ghr.collect_mixed(&mut mixed);
        assert_eq!(mixed.len(), out.len());
    }
}

#[test]
fn biased_only_streams_never_populate_segments() {
    for seed in 0..16u64 {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        // A stream of purely biased branches must leave every segment
        // stack empty: the BF-GHR compresses it to just the prefix.
        let mut ghr = BfGhr::new();
        for _ in 0..rng.range_inclusive(20, 200) {
            ghr.commit(rng.below(1 << 14) as u16, true, false);
        }
        assert!(ghr.compressed_len() <= ghr.recent_len());
    }
}
