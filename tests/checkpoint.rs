//! Integration tests for crash-consistent mid-job checkpointing: the
//! snapshot/restore round-trip property for every registry predictor,
//! kill-resume byte-identity of the `bfbp-sweep/2` and `bfbp-metrics/1`
//! documents, torn/stale checkpoint quarantine, the `bfbp-journal/2`
//! checkpoint-reference interplay, and cancellation-aware retry backoff.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use bfbp::sim::ckpt::{SimCheckpoint, StateReader};
use bfbp::sim::engine::{sweep_inputs, JobStatus, SweepOptions, TraceInput};
use bfbp::sim::fault::FaultPlan;
use bfbp::sim::journal::Journal;
use bfbp::sim::registry::PredictorSpec;
use bfbp::sim::simulate::Simulation;
use bfbp::sim::RetryPolicy;
use bfbp::trace::record::Trace;
use bfbp::trace::synth::suite;

/// A unique scratch path under the target temp dir.
fn scratch(name: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!("bfbp-ckpt-tests-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(format!("{}-{name}", SEQ.fetch_add(1, Ordering::Relaxed)))
}

fn int1(n_records: usize) -> Trace {
    suite::find("INT1")
        .expect("INT1 in suite")
        .generate_len(n_records)
}

/// Deterministic pseudo-random index in `0..len`, keyed on `name` and
/// `salt` — snapshot boundaries vary per predictor without flaky tests.
fn pick(name: &str, salt: u64, len: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ salt;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // One LCG step to decorrelate FNV's low bits before reducing.
    h = h
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((h >> 33) as usize) % len
}

/// Satellite (c): for EVERY registry predictor, a snapshot taken at a
/// mid-run record boundary, restored into a freshly built predictor,
/// must finish the trace with results and intervals identical to an
/// uninterrupted reference run — and taking the snapshots must not
/// perturb the run that produced them.
#[test]
fn snapshot_restore_roundtrip_matches_uninterrupted_run_for_every_predictor() {
    let registry = bfbp::default_registry();
    let trace = int1(4_000);
    for name in registry.names() {
        let spec = PredictorSpec::new(name);

        let mut reference_predictor = registry.build_spec(&spec).expect("build");
        let reference = Simulation::new(reference_predictor.as_mut())
            .intervals(1_000)
            .chunk_records(256)
            .run_trace(&trace)
            .expect("reference run");

        let mut snaps: Vec<SimCheckpoint> = Vec::new();
        {
            let mut predictor = registry.build_spec(&spec).expect("build");
            let mut sink = |c: SimCheckpoint| snaps.push(c);
            let checkpointed = Simulation::new(predictor.as_mut())
                .intervals(1_000)
                .chunk_records(256)
                .checkpoint_every(500, &mut sink)
                .run_trace(&trace)
                .expect("checkpointed run");
            assert_eq!(
                checkpointed, reference,
                "{name}: taking checkpoints must not alter results"
            );
        }
        assert!(
            !snaps.is_empty(),
            "{name}: every registry predictor must expose the checkpointing capability"
        );

        // A handful of pseudo-randomized boundaries per predictor: the
        // earliest snapshot, the latest, and two salted picks between.
        let mut indices = vec![0, snaps.len() - 1];
        indices.push(pick(name, 1, snaps.len()));
        indices.push(pick(name, 2, snaps.len()));
        indices.sort_unstable();
        indices.dedup();
        for i in indices {
            let snap = snaps[i].clone();
            let mut fresh = registry.build_spec(&spec).expect("build");
            let restorable = fresh
                .checkpointing()
                .expect("checkpointing capability present");
            let mut r = StateReader::new(&snap.predictor);
            restorable
                .load_state(&mut r)
                .unwrap_or_else(|e| panic!("{name}: load_state: {e}"));
            r.finish()
                .unwrap_or_else(|e| panic!("{name}: trailing state bytes: {e}"));
            let resumed = Simulation::new(fresh.as_mut())
                .intervals(1_000)
                .chunk_records(256)
                .resume_from(snap)
                .run_trace(&trace)
                .expect("resumed run");
            assert_eq!(
                resumed, reference,
                "{name}: resume from the snapshot at record boundary #{i} diverged"
            );
        }
    }
}

/// The tentpole invariant: kill a sweep job mid-trace, resume from the
/// on-disk checkpoint, and both the `bfbp-sweep/2` results document and
/// the `bfbp-metrics/1` metrics document must be byte-identical to an
/// uninterrupted run — for every registry predictor.
#[test]
fn kill_and_resume_is_byte_identical_for_every_predictor() {
    let registry = bfbp::default_registry();
    let trace = int1(10_000);
    for name in registry.names() {
        let specs = vec![PredictorSpec::new(name)];
        let inputs = [TraceInput::ready(trace.clone())];
        let clean = sweep_inputs(
            &registry,
            &specs,
            &inputs,
            &SweepOptions::serial().with_metrics(),
        )
        .expect("clean sweep");
        assert!(clean.is_fully_ok(), "{name}: clean run");

        let dir = scratch(&format!("ckpt-{name}"));
        fs::create_dir_all(&dir).expect("create checkpoint dir");
        // Chunk boundaries land every 4096 records, so the kill at 9000
        // fires at 10000 (end of trace) with checkpoints already written
        // at 4096 and 8192 — a genuine mid-trace snapshot.
        let killed = sweep_inputs(
            &registry,
            &specs,
            &inputs,
            &SweepOptions::serial()
                .with_metrics()
                .with_checkpoints(4_096, &dir)
                .with_fault_plan(FaultPlan::new().kill_at(0, 9_000)),
        )
        .expect("killed sweep");
        assert_eq!(killed.jobs()[0].status, JobStatus::Killed, "{name}");
        assert_eq!(killed.summary().killed, 1, "{name}");
        assert!(
            killed.results_json().contains("\"status\": \"killed\""),
            "{name}"
        );
        let ckpt_file = dir.join("job-0.ckpt");
        assert!(
            ckpt_file.exists(),
            "{name}: the killed job must leave its checkpoint on disk"
        );

        let events = scratch(&format!("resume-{name}.events.jsonl"));
        let resumed = sweep_inputs(
            &registry,
            &specs,
            &inputs,
            &SweepOptions::serial()
                .with_metrics()
                .with_checkpoints(4_096, &dir)
                .with_events(&events),
        )
        .expect("resumed sweep");
        assert!(resumed.is_fully_ok(), "{name}: resumed run");
        assert_eq!(
            resumed.results_json(),
            clean.results_json(),
            "{name}: bfbp-sweep/2 must be byte-identical after kill-resume"
        );
        assert_eq!(
            resumed.metrics_json(),
            clean.metrics_json(),
            "{name}: bfbp-metrics/1 must be byte-identical after kill-resume"
        );
        let journal = fs::read_to_string(&events).expect("event journal written");
        assert!(
            journal.contains("\"ev\": \"ckpt_restore\""),
            "{name}: the resume must restore from the checkpoint, not rerun from zero:\n{journal}"
        );
        assert!(
            !ckpt_file.exists(),
            "{name}: a completed job must remove its checkpoint"
        );
    }
}

/// A torn or corrupted checkpoint must never poison the run: the file
/// is quarantined, the job reruns from zero, and the results are still
/// byte-identical to an uninterrupted run.
#[test]
fn corrupt_checkpoint_is_quarantined_and_the_job_reruns_from_zero() {
    let registry = bfbp::default_registry();
    let trace = int1(10_000);
    let specs = vec![PredictorSpec::new("gshare")];
    let inputs = [TraceInput::ready(trace.clone())];
    let clean =
        sweep_inputs(&registry, &specs, &inputs, &SweepOptions::serial()).expect("clean sweep");

    let dir = scratch("corrupt-ckpt");
    fs::create_dir_all(&dir).expect("create checkpoint dir");
    sweep_inputs(
        &registry,
        &specs,
        &inputs,
        &SweepOptions::serial()
            .with_checkpoints(4_096, &dir)
            .with_fault_plan(FaultPlan::new().kill_at(0, 9_000)),
    )
    .expect("killed sweep");
    let ckpt_file = dir.join("job-0.ckpt");

    // Flip one payload byte: the trailer checksum must reject the file.
    let mut bytes = fs::read(&ckpt_file).expect("read checkpoint");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    fs::write(&ckpt_file, &bytes).expect("write corrupted checkpoint");

    let events = scratch("corrupt-ckpt.events.jsonl");
    let resumed = sweep_inputs(
        &registry,
        &specs,
        &inputs,
        &SweepOptions::serial()
            .with_checkpoints(4_096, &dir)
            .with_events(&events),
    )
    .expect("resumed sweep");
    assert!(resumed.is_fully_ok());
    assert_eq!(
        resumed.results_json(),
        clean.results_json(),
        "a corrupt checkpoint must degrade to a from-zero run, never wrong results"
    );
    let journal = fs::read_to_string(&events).expect("event journal written");
    assert!(
        journal.contains("\"ev\": \"ckpt_quarantined\""),
        "{journal}"
    );
    let quarantined = fs::read_dir(&dir)
        .expect("read checkpoint dir")
        .filter_map(|e| e.ok())
        .any(|e| e.file_name().to_string_lossy().ends_with(".quarantined"));
    assert!(quarantined, "the torn file must be kept for post-mortem");
    assert!(!ckpt_file.exists(), "the torn file must not be retried");
}

/// A checkpoint recorded for one sweep matrix must never restore into
/// another: the stale file is quarantined and the job runs from zero.
#[test]
fn stale_checkpoint_from_a_different_matrix_is_quarantined() {
    let registry = bfbp::default_registry();
    let trace = int1(10_000);
    let dir = scratch("stale-ckpt");
    fs::create_dir_all(&dir).expect("create checkpoint dir");

    let gshare = vec![PredictorSpec::new("gshare")];
    let inputs = [TraceInput::ready(trace.clone())];
    sweep_inputs(
        &registry,
        &gshare,
        &inputs,
        &SweepOptions::serial()
            .with_checkpoints(4_096, &dir)
            .with_fault_plan(FaultPlan::new().kill_at(0, 9_000)),
    )
    .expect("killed sweep");
    assert!(dir.join("job-0.ckpt").exists());

    // A different matrix (bimodal, not gshare) over the same directory:
    // job 0 finds the stale file, rejects it, and runs from zero.
    let bimodal = vec![PredictorSpec::new("bimodal")];
    let clean =
        sweep_inputs(&registry, &bimodal, &inputs, &SweepOptions::serial()).expect("clean sweep");
    let crossed = sweep_inputs(
        &registry,
        &bimodal,
        &inputs,
        &SweepOptions::serial().with_checkpoints(4_096, &dir),
    )
    .expect("crossed sweep");
    assert!(crossed.is_fully_ok());
    assert_eq!(crossed.results_json(), clean.results_json());
    let quarantined = fs::read_dir(&dir)
        .expect("read checkpoint dir")
        .filter_map(|e| e.ok())
        .any(|e| e.file_name().to_string_lossy().ends_with(".quarantined"));
    assert!(
        quarantined,
        "the stale file must be quarantined, not deleted"
    );
}

/// Journal interplay: a killed job is never journaled as terminal (it
/// is still in flight, like a SIGKILLed process), its checkpoint IS
/// referenced from the `bfbp-journal/2` file, and a journal resume plus
/// checkpoint restore reproduces the uninterrupted document.
#[test]
fn killed_jobs_stay_out_of_the_journal_but_their_checkpoints_are_referenced() {
    let registry = bfbp::default_registry();
    let traces = [int1(10_000), {
        suite::find("MM2")
            .expect("MM2 in suite")
            .generate_len(10_000)
    }];
    let inputs = [
        TraceInput::ready(traces[0].clone()),
        TraceInput::ready(traces[1].clone()),
    ];
    let specs = vec![
        PredictorSpec::new("gshare").labeled("g"),
        PredictorSpec::new("bimodal").labeled("b"),
    ];
    let clean =
        sweep_inputs(&registry, &specs, &inputs, &SweepOptions::serial()).expect("clean sweep");

    let dir = scratch("journal-ckpt");
    fs::create_dir_all(&dir).expect("create checkpoint dir");
    let journal = scratch("killed.journal");
    // Kill job 2 (bimodal on INT1) after the 4096-record checkpoint.
    let killed = sweep_inputs(
        &registry,
        &specs,
        &inputs,
        &SweepOptions::serial()
            .with_journal(&journal)
            .with_checkpoints(4_096, &dir)
            .with_fault_plan(FaultPlan::new().kill_at(2, 5_000)),
    )
    .expect("killed sweep");
    assert_eq!(killed.jobs()[2].status, JobStatus::Killed);
    assert_eq!(killed.summary().ok, 3);

    let loaded = Journal::load(&journal, None).expect("journal loads");
    assert_eq!(
        loaded.entries.keys().copied().collect::<Vec<_>>(),
        vec![0, 1, 3],
        "the killed job must not be journaled as terminal"
    );
    let ckpt_ref = loaded
        .checkpoints
        .get(&2)
        .expect("the killed job's checkpoint must be referenced");
    assert_eq!(ckpt_ref.records, 4_096);
    assert_eq!(ckpt_ref.file, dir.join("job-2.ckpt"));
    assert!(ckpt_ref.file.exists());

    // Resume: jobs 0, 1, 3 restore from the journal; job 2 restores
    // mid-trace from its checkpoint and finishes.
    let resumed = sweep_inputs(
        &registry,
        &specs,
        &inputs,
        &SweepOptions::serial()
            .resuming(&journal)
            .with_checkpoints(4_096, &dir),
    )
    .expect("resumed sweep");
    assert!(resumed.is_fully_ok());
    assert_eq!(resumed.summary().resumed, 3);
    assert_eq!(
        resumed.results_json(),
        clean.results_json(),
        "journal restore + mid-trace checkpoint restore must reproduce the clean document"
    );
}

/// Satellite (a): the retry backoff sleep must be cancellation-aware.
/// A job with a large backoff and a small wall-clock budget must report
/// `timed_out` as soon as the watchdog fires — not after the backoff.
#[test]
fn retry_backoff_is_interrupted_by_the_watchdog() {
    let registry = bfbp::default_registry();
    let specs = vec![PredictorSpec::new("gshare")];
    let inputs = [TraceInput::ready(int1(2_000))];
    let options = SweepOptions::serial()
        .with_retry(RetryPolicy::retries(3, Duration::from_secs(60)))
        .with_timeout(Duration::from_millis(200))
        .with_fault_plan(FaultPlan::new().panic_at(0));
    let start = Instant::now();
    let report = sweep_inputs(&registry, &specs, &inputs, &options).expect("sweep");
    let elapsed = start.elapsed();
    assert_eq!(report.jobs()[0].status, JobStatus::TimedOut);
    assert_eq!(
        report.jobs()[0].attempts,
        1,
        "the watchdog fires inside the first backoff, before attempt 2"
    );
    assert!(
        elapsed < Duration::from_secs(20),
        "a 60 s backoff must not outlive a 200 ms budget (took {elapsed:?})"
    );
}
