//! Property tests for the `bfbp-wire/1` codec: every frame kind
//! round-trips through encode/decode, every truncation is a typed
//! `Torn`, every single-bit corruption is a typed error (never a
//! silent wrong decode), and the scratch-reusing hot-path encoders are
//! byte-identical to the generic `Frame` encoder they share layout
//! code with.
//!
//! Uses the workspace's own deterministic [`Xoshiro256`] generator, so
//! every case is reproducible from its printed seed.

use std::io::Cursor;

use bfbp::sim::ckpt::fnv1a;
use bfbp::sim::wire::{
    encode_outcome_batch, encode_predict_batch, encode_predict_reply, pack_bits, unpack_bits,
    CondBatch, ErrorCode, Frame, FrameKind, FrameReader, PredictorInfo, SessionStats, WireError,
    WIRE_PROTOCOL,
};
use bfbp::sim::PredictorCaps;
use bfbp::trace::record::{BranchKind, BranchRecord};
use bfbp::trace::rng::Xoshiro256;
use bfbp::trace::TraceChunk;

fn rand_string(rng: &mut Xoshiro256, max: u64) -> String {
    const CHARS: &[u8] = b"abcXYZ019 _-:=,./";
    let n = rng.below(max + 1) as usize;
    (0..n)
        .map(|_| CHARS[rng.below(CHARS.len() as u64) as usize] as char)
        .collect()
}

fn rand_stats(rng: &mut Xoshiro256) -> SessionStats {
    SessionStats {
        records: rng.next_u64(),
        instructions: rng.next_u64(),
        conditional_branches: rng.next_u64(),
        mispredictions: rng.next_u64(),
    }
}

fn rand_caps(rng: &mut Xoshiro256) -> PredictorCaps {
    PredictorCaps::from_bits(rng.below(16) as u8).expect("bits 0..16 are all valid")
}

fn rand_cond_batch(rng: &mut Xoshiro256, max: u64) -> CondBatch {
    let n = rng.below(max + 1) as usize;
    CondBatch {
        pcs: (0..n).map(|_| rng.next_u64()).collect(),
        targets: (0..n).map(|_| rng.next_u64()).collect(),
        gaps: (0..n).map(|_| rng.below(10_000) as u32).collect(),
        takens: (0..n).map(|_| rng.chance(0.5)).collect(),
    }
}

fn rand_record(rng: &mut Xoshiro256) -> BranchRecord {
    let kind = BranchKind::from_u8(rng.below(6) as u8).expect("0..6 are valid kinds");
    BranchRecord {
        pc: rng.next_u64(),
        target: rng.next_u64(),
        kind,
        taken: !kind.is_conditional() || rng.chance(0.5),
        non_branch_insts: rng.below(10_000) as u32,
    }
}

/// A random frame of the given kind, exercising every payload field.
fn rand_frame(kind: FrameKind, rng: &mut Xoshiro256) -> Frame {
    match kind {
        FrameKind::Hello => Frame::Hello {
            protocol: WIRE_PROTOCOL.to_owned(),
            client: rand_string(rng, 24),
        },
        FrameKind::HelloAck => Frame::HelloAck {
            protocol: WIRE_PROTOCOL.to_owned(),
            server: rand_string(rng, 24),
            predictors: (0..rng.below(6))
                .map(|_| PredictorInfo {
                    name: rand_string(rng, 16),
                    caps: rand_caps(rng),
                })
                .collect(),
        },
        FrameKind::Open => Frame::Open {
            session: rng.next_u64(),
            spec: rand_string(rng, 32),
        },
        FrameKind::OpenAck => Frame::OpenAck {
            session: rng.next_u64(),
            caps: rand_caps(rng),
            resumed: rng.chance(0.5),
            stats: rand_stats(rng),
        },
        FrameKind::PredictBatch => Frame::PredictBatch {
            session: rng.next_u64(),
            batch: rand_cond_batch(rng, 64),
        },
        FrameKind::PredictReply => Frame::PredictReply {
            session: rng.next_u64(),
            miss: (0..rng.below(65)).map(|_| rng.chance(0.3)).collect(),
        },
        FrameKind::OutcomeBatch => Frame::OutcomeBatch {
            session: rng.next_u64(),
            records: (0..rng.below(65)).map(|_| rand_record(rng)).collect(),
        },
        FrameKind::OutcomeAck => Frame::OutcomeAck {
            session: rng.next_u64(),
        },
        FrameKind::Stats => Frame::Stats {
            session: rng.next_u64(),
        },
        FrameKind::StatsReply => Frame::StatsReply {
            session: rng.next_u64(),
            stats: rand_stats(rng),
        },
        FrameKind::Checkpoint => Frame::Checkpoint {
            session: rng.next_u64(),
        },
        FrameKind::CheckpointAck => Frame::CheckpointAck {
            session: rng.next_u64(),
            persisted: rng.chance(0.5),
        },
        FrameKind::Close => Frame::Close {
            session: rng.next_u64(),
        },
        FrameKind::CloseAck => Frame::CloseAck {
            session: rng.next_u64(),
            stats: rand_stats(rng),
        },
        FrameKind::Shutdown => Frame::Shutdown,
        FrameKind::ShutdownAck => Frame::ShutdownAck {
            sessions: rng.next_u64(),
        },
        FrameKind::Error => Frame::Error {
            code: ErrorCode::from_u8(1 + rng.below(5) as u8).expect("1..=5 are valid codes"),
            session: rng.next_u64(),
            message: rand_string(rng, 48),
        },
    }
}

#[test]
fn every_frame_kind_round_trips() {
    for seed in 0..32u64 {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for kind in FrameKind::ALL {
            let frame = rand_frame(kind, &mut rng);
            let mut bytes = Vec::new();
            frame.encode_into(&mut bytes);
            let mut reader = FrameReader::new();
            let decoded = reader
                .read_frame(&mut Cursor::new(&bytes))
                .unwrap_or_else(|e| panic!("seed {seed} {kind:?}: {e}"))
                .unwrap_or_else(|| panic!("seed {seed} {kind:?}: unexpected clean close"));
            assert_eq!(decoded, frame, "seed {seed}");
            assert_eq!(decoded.kind(), kind, "seed {seed}");
        }
    }
}

#[test]
fn frames_back_to_back_on_one_stream_all_arrive() {
    let mut rng = Xoshiro256::seed_from_u64(7);
    let frames: Vec<Frame> = FrameKind::ALL
        .into_iter()
        .map(|kind| rand_frame(kind, &mut rng))
        .collect();
    let mut stream = Vec::new();
    let mut scratch = Vec::new();
    for frame in &frames {
        frame.encode_into(&mut scratch);
        stream.extend_from_slice(&scratch);
    }
    let mut cursor = Cursor::new(&stream);
    let mut reader = FrameReader::new();
    for expected in &frames {
        let got = reader.read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(&got, expected);
    }
    assert!(
        reader.read_frame(&mut cursor).unwrap().is_none(),
        "clean close at the frame boundary must read as None"
    );
}

#[test]
fn every_truncation_is_torn() {
    let mut rng = Xoshiro256::seed_from_u64(11);
    for kind in FrameKind::ALL {
        let frame = rand_frame(kind, &mut rng);
        let mut bytes = Vec::new();
        frame.encode_into(&mut bytes);
        for cut in 1..bytes.len() {
            let mut reader = FrameReader::new();
            let result = reader.read_frame(&mut Cursor::new(&bytes[..cut]));
            assert!(
                matches!(result, Err(WireError::Torn)),
                "{kind:?} cut at {cut}/{}: {result:?}",
                bytes.len()
            );
        }
        // Zero bytes is a clean close, not an error.
        let mut reader = FrameReader::new();
        assert!(matches!(
            reader.read_frame(&mut Cursor::new(&bytes[..0])),
            Ok(None)
        ));
    }
}

#[test]
fn every_single_bit_flip_is_a_typed_error() {
    let mut rng = Xoshiro256::seed_from_u64(23);
    for kind in FrameKind::ALL {
        let frame = rand_frame(kind, &mut rng);
        let mut bytes = Vec::new();
        frame.encode_into(&mut bytes);
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                let mut reader = FrameReader::new();
                let result = reader.read_frame(&mut Cursor::new(&corrupt));
                // A flip in the length prefix reads as Torn/TooLarge
                // (or trips the checksum on a shortened body); a flip
                // anywhere in the body or trailer trips the checksum.
                // What it must never be is a silently different frame.
                assert!(
                    result.is_err(),
                    "{kind:?} byte {i} bit {bit} decoded as {result:?}"
                );
            }
        }
    }
}

#[test]
fn unknown_kind_byte_is_rejected_by_name() {
    // A frame that is perfectly formed — valid length, valid checksum —
    // except its kind byte is unassigned.
    let body = [200u8, 1, 2, 3];
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&body);
    bytes.extend_from_slice(&fnv1a(&body).to_le_bytes());
    let mut reader = FrameReader::new();
    assert!(matches!(
        reader.read_frame(&mut Cursor::new(&bytes)),
        Err(WireError::UnknownKind(200))
    ));
}

#[test]
fn absurd_length_prefix_is_rejected_before_allocation() {
    for len in [0u32, (bfbp::sim::wire::MAX_FRAME as u32) + 1, u32::MAX] {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        let mut reader = FrameReader::new();
        assert!(
            matches!(
                reader.read_frame(&mut Cursor::new(&bytes)),
                Err(WireError::TooLarge(_))
            ),
            "length {len} must be rejected as TooLarge"
        );
    }
}

#[test]
fn trailing_payload_bytes_are_rejected() {
    // An extra byte smuggled after a valid payload, with the length and
    // checksum recomputed to match: the cursor's exhaustive `finish`
    // must reject it as malformed rather than ignore it.
    let mut bytes = Vec::new();
    Frame::Stats { session: 9 }.encode_into(&mut bytes);
    let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
    let mut body = bytes[4..4 + len].to_vec();
    body.push(0xAB);
    let mut smuggled = Vec::new();
    smuggled.extend_from_slice(&(body.len() as u32).to_le_bytes());
    smuggled.extend_from_slice(&body);
    smuggled.extend_from_slice(&fnv1a(&body).to_le_bytes());
    let mut reader = FrameReader::new();
    assert!(matches!(
        reader.read_frame(&mut Cursor::new(&smuggled)),
        Err(WireError::Malformed(_))
    ));
}

#[test]
fn hot_path_encoders_match_the_generic_frame_encoder() {
    for seed in 0..16u64 {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let session = rng.next_u64();

        let batch = rand_cond_batch(&mut rng, 128);
        let mut fast = Vec::new();
        encode_predict_batch(
            session,
            &batch.pcs,
            &batch.targets,
            &batch.gaps,
            &batch.takens,
            &mut fast,
        );
        let mut generic = Vec::new();
        Frame::PredictBatch { session, batch }.encode_into(&mut generic);
        assert_eq!(fast, generic, "seed {seed}: PREDICT_BATCH layouts diverge");

        let miss: Vec<bool> = (0..rng.below(129)).map(|_| rng.chance(0.2)).collect();
        encode_predict_reply(session, &miss, &mut fast);
        Frame::PredictReply { session, miss }.encode_into(&mut generic);
        assert_eq!(fast, generic, "seed {seed}: PREDICT_REPLY layouts diverge");

        let records: Vec<BranchRecord> =
            (0..rng.below(129)).map(|_| rand_record(&mut rng)).collect();
        let mut chunk = TraceChunk::with_capacity(records.len());
        for record in &records {
            chunk.push(record);
        }
        encode_outcome_batch(session, &chunk, 0, chunk.len(), &mut fast);
        Frame::OutcomeBatch { session, records }.encode_into(&mut generic);
        assert_eq!(fast, generic, "seed {seed}: OUTCOME_BATCH layouts diverge");
    }
}

#[test]
fn bit_packing_round_trips_any_length() {
    let mut rng = Xoshiro256::seed_from_u64(41);
    for n in 0..130usize {
        let bits: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
        let mut packed = Vec::new();
        pack_bits(&bits, &mut packed);
        assert_eq!(packed.len(), n.div_ceil(8));
        let mut unpacked = Vec::new();
        unpack_bits(&packed, n, &mut unpacked);
        assert_eq!(unpacked, bits, "length {n}");
    }
}

#[test]
fn code_bytes_validate_exhaustively() {
    for byte in 0..=255u8 {
        let kind = FrameKind::from_u8(byte);
        assert_eq!(kind.is_some(), (1..=17).contains(&byte), "kind byte {byte}");
        if let Some(kind) = kind {
            assert_eq!(kind as u8, byte);
        }
        let code = ErrorCode::from_u8(byte);
        assert_eq!(code.is_some(), (1..=5).contains(&byte), "error byte {byte}");
        if let Some(code) = code {
            assert_eq!(code as u8, byte);
        }
    }
}
