//! Shape tests for the paper's headline claims, run at a reduced trace
//! scale. These assert *orderings and directions* — who wins, roughly
//! where — not absolute MPKI values (see EXPERIMENTS.md for the
//! full-scale numbers).
//!
//! Predictors are built by name through [`bfbp::default_registry`] and
//! executed by the parallel sweep engine, the same path the figure
//! binaries use.

use bfbp::sim::engine::{sweep, SweepOptions, SweepReport};
use bfbp::sim::registry::PredictorSpec;
use bfbp::sim::runner::SuiteRunner;
use bfbp_bench::experiments;

/// A scale that keeps the whole file under ~2 minutes on one core while
/// still letting predictors warm up.
const SCALE: f64 = 0.2;

fn run(runner: &SuiteRunner, specs: &[PredictorSpec]) -> SweepReport {
    let registry = bfbp::default_registry();
    sweep(&registry, specs, runner, &SweepOptions::default()).expect("specs build")
}

#[test]
fn bf_neural_beats_the_neural_baselines() {
    // Figure 8's neural story: BF-Neural < OH-SNAP; both < nothing. The
    // conventional piecewise-linear (Figure 9 bar 1) is worst.
    let runner = SuiteRunner::generate(SCALE);
    let report = run(
        &runner,
        &[
            PredictorSpec::new("piecewise"),
            PredictorSpec::new("oh-snap"),
            PredictorSpec::new("bf-neural"),
        ],
    );
    let (pwl, snap, bf) = (
        report.mean_mpki("piecewise"),
        report.mean_mpki("oh-snap"),
        report.mean_mpki("bf-neural"),
    );
    assert!(
        bf < snap,
        "BF-Neural ({bf:.3}) must beat OH-SNAP ({snap:.3})"
    );
    assert!(
        bf < pwl,
        "BF-Neural ({bf:.3}) must beat the conventional perceptron ({pwl:.3})"
    );
}

#[test]
fn bf_neural_is_comparable_to_tage() {
    // Figure 8: "provides accuracies comparable to that of TAGE"
    // (within ±15% at reduced scale).
    let runner = SuiteRunner::generate(SCALE);
    let report = run(
        &runner,
        &[
            PredictorSpec::new("isl-tage")
                .with("tables", 15usize)
                .labeled("tage"),
            PredictorSpec::new("bf-neural"),
        ],
    );
    let (tage, bf) = (report.mean_mpki("tage"), report.mean_mpki("bf-neural"));
    let ratio = bf / tage;
    assert!(
        (0.7..1.15).contains(&ratio),
        "BF-Neural {bf:.3} vs TAGE {tage:.3} (ratio {ratio:.3})"
    );
}

#[test]
fn ablation_bias_filtering_helps() {
    // Figure 9's first two steps: BST gating + fhist improves on the
    // conventional perceptron, and bias-free history improves again.
    let runner = SuiteRunner::generate(SCALE);
    let report = run(
        &runner,
        &[
            PredictorSpec::new("piecewise"),
            PredictorSpec::new("bf-neural")
                .with("history-mode", "unfiltered")
                .labeled("fhist"),
            PredictorSpec::new("bf-neural")
                .with("history-mode", "bias-filtered")
                .labeled("bias-free"),
        ],
    );
    let conv = report.mean_mpki("piecewise");
    let fhist = report.mean_mpki("fhist");
    let bias_free = report.mean_mpki("bias-free");
    assert!(
        fhist < conv,
        "fhist bar ({fhist:.3}) must improve on conventional ({conv:.3})"
    );
    assert!(
        bias_free < conv,
        "bias-free bar ({bias_free:.3}) must improve on conventional ({conv:.3})"
    );
}

#[test]
fn recency_stack_wins_on_its_target_traces() {
    // Figure 9's rightmost step, checked where the paper locates it:
    // "Traces such as SPEC03 [SPEC14, SPEC18] ... RS assists those".
    let specs: Vec<_> = ["SPEC03", "SPEC14", "SPEC18"]
        .iter()
        .map(|n| bfbp::trace::synth::suite::find(n).expect("trace"))
        .collect();
    let runner = SuiteRunner::from_specs(specs, 0.5);
    let report = run(
        &runner,
        &[
            PredictorSpec::new("bf-neural")
                .with("history-mode", "bias-filtered")
                .labeled("without-rs"),
            PredictorSpec::new("bf-neural").labeled("with-rs"),
        ],
    );
    let without_rs = report.mean_mpki("without-rs");
    let with_rs = report.mean_mpki("with-rs");
    assert!(
        with_rs < without_rs,
        "RS ({with_rs:.3}) must beat bias-filtered-only ({without_rs:.3}) on SPEC03/14/18"
    );
}

#[test]
fn fifteen_tables_beat_ten_on_long_history_traces() {
    // §VI-D: the long-history-sensitive traces gain from tables 10→15.
    let specs: Vec<_> = ["SPEC00", "SPEC03", "SPEC10", "SPEC15", "SPEC17"]
        .iter()
        .map(|n| bfbp::trace::synth::suite::find(n).expect("trace"))
        .collect();
    let runner = SuiteRunner::from_specs(specs, 0.5);
    let report = run(
        &runner,
        &[
            PredictorSpec::new("isl-tage")
                .with("tables", 10usize)
                .labeled("t10"),
            PredictorSpec::new("isl-tage")
                .with("tables", 15usize)
                .labeled("t15"),
        ],
    );
    let (t10, t15) = (report.mean_mpki("t10"), report.mean_mpki("t15"));
    assert!(
        t15 < t10,
        "TAGE-15 ({t15:.3}) must beat TAGE-10 ({t10:.3}) on long-history traces"
    );
}

#[test]
fn figure12_hits_shift_toward_shorter_tables() {
    // Figure 12: BF-TAGE's provider distribution sits at shorter tables
    // than conventional TAGE's on the long-history traces.
    let shifts = experiments::fig12_hits(0.1);
    let shifted = shifts
        .iter()
        .filter(|(_, tage15, bf10)| bf10 < tage15)
        .count();
    assert!(
        shifted >= 5,
        "expected most Fig-12 traces to shift shorter; got {shifted}/7: {shifts:?}"
    );
}

#[test]
fn bf_tage_matches_conventional_at_four_tables() {
    // Figure 10's left edge: at small table counts the bias-free history
    // must at least match conventional TAGE at the same storage.
    let curve = experiments::fig10_tables(0.1);
    let (n, conv, bf) = curve[0];
    assert_eq!(n, 4);
    assert!(
        bf <= conv * 1.05,
        "BF-ISL-TAGE-4 ({bf:.3}) should be within 5% of ISL-TAGE-4 ({conv:.3})"
    );
}
