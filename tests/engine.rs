//! Integration tests for the parallel sweep engine and the predictor
//! registry: parallel execution must be bit-identical to serial, the
//! engine must agree with the single-threaded `SuiteRunner` path, and
//! every registered predictor must round-trip through its defaults.

use bfbp::sim::engine::{sweep, sweep_serial, SweepOptions};
use bfbp::sim::registry::{Params, PredictorSpec};
use bfbp::sim::runner::SuiteRunner;
use bfbp::trace::synth::suite;

fn small_runner() -> SuiteRunner {
    let specs: Vec<_> = ["INT1", "MM2"]
        .iter()
        .map(|n| suite::find(n).expect("trace in suite"))
        .collect();
    SuiteRunner::from_specs(specs, 0.02)
}

fn small_specs() -> Vec<PredictorSpec> {
    vec![
        PredictorSpec::new("gshare").labeled("g"),
        PredictorSpec::new("bimodal").labeled("b"),
    ]
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    // 2 specs x 2 traces: the parallel engine must produce exactly the
    // serial results — same order, same counts, same interval windows —
    // so the machine-readable JSON is byte-identical.
    let registry = bfbp::default_registry();
    let runner = small_runner();
    let specs = small_specs();

    let serial = sweep_serial(&registry, &specs, &runner).expect("serial sweep");
    for threads in [2, 3, 8] {
        let parallel = sweep(
            &registry,
            &specs,
            &runner,
            &SweepOptions::default().with_threads(threads),
        )
        .expect("parallel sweep");
        assert_eq!(
            serial.results_json(),
            parallel.results_json(),
            "results JSON must not depend on thread count ({threads} threads)"
        );
    }
}

#[test]
fn engine_matches_the_single_threaded_runner() {
    // The engine and the serial run_spec path must agree on every
    // per-trace result.
    let registry = bfbp::default_registry();
    let runner = small_runner();
    let spec = PredictorSpec::new("gshare");

    let report = sweep(
        &registry,
        std::slice::from_ref(&spec),
        &runner,
        &SweepOptions::default().with_threads(4),
    )
    .expect("sweep");
    let engine_results = report.try_results("gshare").expect("gshare series exists");

    let runner_results = runner
        .run_spec(&registry, &spec)
        .expect("gshare builds through the registry");

    assert_eq!(engine_results.len(), runner_results.len());
    for (a, b) in engine_results.iter().zip(&runner_results) {
        assert_eq!(a.trace_name(), b.trace_name());
        assert_eq!(a.mispredictions(), b.mispredictions());
        assert_eq!(a.conditional_branches(), b.conditional_branches());
        assert_eq!(a.instructions(), b.instructions());
    }
}

#[test]
fn every_registered_predictor_builds_from_defaults() {
    // Registry round-trip: every name must build with its registered
    // defaults, report a plausible name, and claim storage — except the
    // trivial static predictors, which are explicitly storage-free.
    let registry = bfbp::default_registry();
    let names = registry.names();
    assert!(
        names.len() >= 12,
        "expected the full workspace registry, got {names:?}"
    );
    for name in names {
        let p = registry
            .build(name, &Params::new())
            .unwrap_or_else(|e| panic!("default build of {name} failed: {e}"));
        assert!(!p.name().is_empty(), "{name} reports an empty display name");
        let bits = p.storage().total_bits();
        if name.starts_with("static-") {
            assert_eq!(bits, 0, "{name} should be storage-free");
        } else {
            assert!(bits > 0, "{name} reports no storage");
        }
    }
}

#[test]
fn sweep_report_carries_timing_and_interval_data() {
    let registry = bfbp::default_registry();
    let runner = small_runner();
    let options = SweepOptions {
        interval_insts: 1_000,
        ..SweepOptions::default()
    };
    let report = sweep(&registry, &small_specs(), &runner, &options).expect("sweep");

    assert_eq!(report.jobs().len(), 4);
    assert!(report.wall().as_nanos() > 0);
    // cpu() sums the per-job simulation walls; it excludes spec
    // validation and thread setup, so it only has to be non-zero and
    // consistent with the recorded jobs.
    let job_sum: std::time::Duration = report.jobs().iter().map(|j| j.wall).sum();
    assert_eq!(report.cpu(), job_sum);
    assert!(report.cpu().as_nanos() > 0);
    assert!(report.speedup() > 0.0);
    assert!(report.is_fully_ok());
    for job in report.jobs() {
        let record = job.record().expect("healthy sweep job");
        assert!(!record.intervals.is_empty(), "interval windows requested");
        let misses: u64 = record.intervals.iter().map(|w| w.mispredictions).sum();
        assert_eq!(misses, record.result.mispredictions());
    }

    let json = report.to_json();
    for key in [
        "\"schema\"",
        "\"timing\"",
        "\"threads\"",
        "\"wall_ms\"",
        "\"series\"",
    ] {
        assert!(json.contains(key), "JSON missing {key}: {json}");
    }
}

#[test]
fn unknown_specs_fail_before_any_simulation() {
    let registry = bfbp::default_registry();
    let runner = small_runner();
    let specs = [
        PredictorSpec::new("gshare"),
        PredictorSpec::new("no-such-predictor"),
    ];
    let err = sweep(&registry, &specs, &runner, &SweepOptions::default());
    assert!(err.is_err(), "unknown predictor must be rejected");
}
