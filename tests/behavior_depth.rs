//! Deeper behavioural tests: scenarios that exercise the predictors'
//! dynamics beyond the per-module unit tests — warm-up behaviour,
//! phase-change recovery, classifier interchangeability, and clone
//! independence.

use bfbp::core::bf_neural::{BfNeural, BfNeuralConfig};
use bfbp::core::bf_tage::BfTage;
use bfbp::core::bst::{BranchStatus, Bst, Classifier, ProbabilisticBst};
use bfbp::core::profile::StaticProfile;
use bfbp::predictors::loop_pred::LoopPredictor;
use bfbp::sim::predictor::ConditionalPredictor;
use bfbp::sim::simulate::simulate;
use bfbp::tage::config::TageConfig;
use bfbp::tage::isl::Isl;
use bfbp::tage::tage::Tage;
use bfbp::trace::record::{BranchRecord, Trace};
use bfbp::trace::rng::Xoshiro256;
use bfbp::trace::synth::suite;

/// BF-Neural's very first encounter with a branch is predicted
/// statically (BST `NotFound`); the second encounter uses the recorded
/// bias; only a direction change engages the perceptron.
#[test]
fn bf_neural_classification_lifecycle() {
    let mut p = BfNeural::budget_64kb();
    // Phase 1: branch is always taken → at most the first prediction can
    // miss.
    let mut misses = 0;
    for _ in 0..50 {
        if !p.predict(0x40) {
            misses += 1;
        }
        p.update(0x40, true, 0);
    }
    assert_eq!(misses, 1, "only the NotFound encounter may miss");
    // Phase 2: direction flips once — BST transitions to NonBiased and
    // the perceptron takes over; the bias weight keeps tracking the
    // dominant direction, so accuracy stays high.
    p.predict(0x40);
    p.update(0x40, false, 0);
    let mut late_misses = 0;
    for _ in 0..200 {
        if !p.predict(0x40) {
            late_misses += 1;
        }
        p.update(0x40, true, 0);
    }
    assert!(
        late_misses <= 40,
        "perceptron must keep tracking a mostly-taken branch, missed {late_misses}"
    );
}

/// A phase change (stable taken → stable not-taken) must be recovered
/// from by every headline predictor within a bounded number of
/// executions.
#[test]
fn predictors_recover_from_phase_change() {
    let mut records = Vec::new();
    for _ in 0..500 {
        records.push(BranchRecord::cond(0x80, 0x100, true, 3));
    }
    for _ in 0..500 {
        records.push(BranchRecord::cond(0x80, 0x100, false, 3));
    }
    let trace = Trace::new("phase", records);
    let predictors: Vec<Box<dyn ConditionalPredictor>> = vec![
        Box::new(BfNeural::budget_64kb()),
        Box::new(BfTage::with_tables(10)),
        Box::new(Tage::with_tables(10)),
    ];
    for mut p in predictors {
        let name = p.name().into_owned();
        let r = simulate(p.as_mut(), &trace);
        assert!(
            r.mispredictions() < 60,
            "{name} should lose only a transient at the phase flip, lost {}",
            r.mispredictions()
        );
    }
}

/// The probabilistic BST eventually reconverges to a biased class after
/// a phase change, unlike the absorbing 2-bit FSM — the §IV-B1 argument.
#[test]
fn probabilistic_bst_tracks_phases_where_two_bit_cannot() {
    let mut two_bit = Bst::new(10);
    let mut prob = ProbabilisticBst::new(10, 16);
    // Brief non-biased episode…
    two_bit.commit(0x40, true);
    prob.commit(0x40, true);
    two_bit.commit(0x40, false);
    prob.commit(0x40, false);
    // …followed by a long stable phase.
    let mut prob_rebiased = false;
    for _ in 0..2000 {
        assert_eq!(two_bit.commit(0x40, false), BranchStatus::NonBiased);
        if prob.commit(0x40, false) == BranchStatus::NotTaken {
            prob_rebiased = true;
        }
    }
    assert!(prob_rebiased, "probabilistic BST must revert to NotTaken");
}

/// Swapping the classifier (dynamic vs static profile) changes warm-up
/// behaviour but both BF-TAGE variants end in the same accuracy class.
#[test]
fn bf_tage_works_with_any_classifier() {
    let trace = suite::find("INT3").unwrap().generate_len(30_000);
    let config = TageConfig::bias_free(7).unwrap();

    let mut dynamic = Isl::new(BfTage::with_classifier(
        &config,
        Classifier::TwoBit(Bst::new(13)),
    ));
    let mut probabilistic = Isl::new(BfTage::with_classifier(
        &config,
        Classifier::Probabilistic(ProbabilisticBst::new(13, 256)),
    ));
    let mut profiled = Isl::new(BfTage::with_classifier(
        &config,
        Classifier::Static(StaticProfile::from_trace(&trace)),
    ));
    let r_dyn = simulate(&mut dynamic, &trace);
    let r_prob = simulate(&mut probabilistic, &trace);
    let r_prof = simulate(&mut profiled, &trace);
    for r in [&r_dyn, &r_prob, &r_prof] {
        assert!(
            r.accuracy() > 0.9,
            "{}: {}",
            r.predictor_name(),
            r.accuracy()
        );
    }
    // All three within a factor of two of each other.
    let worst = r_dyn.mpki().max(r_prob.mpki()).max(r_prof.mpki());
    let best = r_dyn.mpki().min(r_prob.mpki()).min(r_prof.mpki());
    assert!(worst < best * 2.0 + 0.5);
}

/// Cloned predictors evolve independently (no shared state through Rc
/// or similar).
#[test]
fn cloned_predictors_are_independent() {
    let mut a = BfNeural::budget_64kb();
    for i in 0..100u64 {
        a.predict(0x40 + i % 8 * 4);
        a.update(0x40 + i % 8 * 4, i % 2 == 0, 0);
    }
    let mut b = a.clone();
    // Train the clone differently; the original must be unaffected.
    for _ in 0..200 {
        b.predict(0x99c);
        b.update(0x99c, true, 0);
    }
    // `a` has never seen 0x99c: its BST still reports NotFound → static
    // not-taken prediction; `b` predicts taken.
    assert!(b.predict(0x99c));
    assert!(!a.predict(0x99c));
}

/// The loop predictor must stay silent (non-confident) on branches that
/// are not loops at all.
#[test]
fn loop_predictor_silent_on_random_branches() {
    let mut lp = LoopPredictor::paper_64_entry();
    let mut rng = Xoshiro256::seed_from_u64(9);
    let mut confident = 0;
    for i in 0..5000u64 {
        let taken = rng.chance(0.5);
        if let Some(p) = lp.predict(0x40) {
            if p.confident {
                confident += 1;
            }
        }
        lp.update(0x40, taken, i % 2 == 0);
    }
    assert!(
        confident < 250,
        "loop predictor must rarely be confident on noise, was {confident}"
    );
}

/// TAGE provider statistics reflect warm-up: early predictions come from
/// the base predictor, later ones increasingly from tagged tables.
#[test]
fn tage_providers_migrate_from_base_to_tables() {
    let trace = suite::find("SPEC00").unwrap().generate_len(40_000);
    let mut t = Tage::with_tables(10);
    // First fifth.
    let records: Vec<_> = trace.records().to_vec();
    let fifth = records.len() / 5;
    for r in &records[..fifth] {
        if r.kind.is_conditional() {
            t.predict(r.pc);
            t.update(r.pc, r.taken, r.target);
        }
    }
    let early_base =
        t.provider_stats().base_count() as f64 / t.provider_stats().total().max(1) as f64;
    t.reset_provider_stats();
    for r in &records[fifth..] {
        if r.kind.is_conditional() {
            t.predict(r.pc);
            t.update(r.pc, r.taken, r.target);
        }
    }
    let late_base =
        t.provider_stats().base_count() as f64 / t.provider_stats().total().max(1) as f64;
    assert!(
        late_base < early_base,
        "base share should fall as tables warm: early {early_base:.3}, late {late_base:.3}"
    );
}

/// The ablation configurations degrade gracefully: even the weakest
/// (unfiltered) variant stays a functional predictor on every category.
#[test]
fn ablation_variants_all_functional() {
    for config in [
        BfNeuralConfig::ablation_fhist(),
        BfNeuralConfig::ablation_bias_free_ghist(),
        BfNeuralConfig::ablation_recency_stack(),
        BfNeuralConfig::budget_32kb(),
    ] {
        for name in ["SPEC05", "FP3", "INT2", "MM2", "SERV2"] {
            let trace = suite::find(name).unwrap().generate_len(5_000);
            let mut p = BfNeural::new(config);
            let r = simulate(&mut p, &trace);
            assert!(
                r.accuracy() > 0.7,
                "{:?} on {name}: accuracy {}",
                p.name(),
                r.accuracy()
            );
        }
    }
}
