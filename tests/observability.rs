//! Integration tests for the observability layer: metrics collection
//! must never perturb the `bfbp-sweep/2` results document, the
//! `bfbp-events/1` journal must be valid JSONL with one closed span per
//! job and monotonic timestamps, the metrics document must carry
//! per-predictor introspection counters and H2P attribution, and all of
//! it must be deterministic across thread counts.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use bfbp::sim::engine::{sweep, SweepOptions};
use bfbp::sim::registry::PredictorSpec;
use bfbp::sim::runner::SuiteRunner;
use bfbp::trace::synth::suite;

fn small_runner() -> SuiteRunner {
    let specs: Vec<_> = ["INT1", "MM2"]
        .iter()
        .map(|n| suite::find(n).expect("trace in suite"))
        .collect();
    SuiteRunner::from_specs(specs, 0.02)
}

fn small_specs() -> Vec<PredictorSpec> {
    vec![
        PredictorSpec::new("gshare").labeled("g"),
        PredictorSpec::new("bimodal").labeled("b"),
    ]
}

/// A unique scratch path under the temp dir.
fn scratch(name: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!("bfbp-obs-tests-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(format!("{}-{name}", SEQ.fetch_add(1, Ordering::Relaxed)))
}

/// Collecting metrics must not change a single byte of the results
/// document: the observer hooks sit strictly off the results path.
#[test]
fn metrics_collection_never_perturbs_results() {
    let registry = bfbp::default_registry();
    let runner = small_runner();
    let specs = small_specs();

    let plain = sweep(&registry, &specs, &runner, &SweepOptions::default()).expect("plain sweep");
    let observed = sweep(
        &registry,
        &specs,
        &runner,
        &SweepOptions::default().with_metrics(),
    )
    .expect("observed sweep");

    assert_eq!(
        plain.results_json(),
        observed.results_json(),
        "metrics collection must leave the bfbp-sweep/2 document byte-identical"
    );
    assert!(
        plain.metrics_json().is_none(),
        "no metrics when not requested"
    );
    let metrics = observed.metrics_json().expect("metrics collected");
    assert!(
        metrics.contains("\"schema\": \"bfbp-metrics/1\""),
        "{metrics}"
    );
}

/// The event journal must be valid JSONL: every line one JSON object,
/// exactly one `job_open` and one `job_close` per job (open before
/// close), `t_us` non-decreasing in file order, and the sweep span
/// bracketing everything.
#[test]
fn events_journal_is_valid_jsonl_with_closed_spans() {
    let registry = bfbp::default_registry();
    let runner = small_runner();
    let specs = small_specs();
    let events = scratch("spans.events.jsonl");

    let report = sweep(
        &registry,
        &specs,
        &runner,
        &SweepOptions::default().with_threads(2).with_events(&events),
    )
    .expect("sweep");
    assert!(report.is_fully_ok());
    let n_jobs = report.jobs().len();

    let journal = fs::read_to_string(&events).expect("journal written");
    let lines: Vec<&str> = journal.lines().collect();
    assert!(!lines.is_empty());
    assert!(
        lines[0].contains("\"ev\": \"journal_open\"")
            && lines[0].contains("\"schema\": \"bfbp-events/1\""),
        "header line: {}",
        lines[0]
    );

    let mut last_t = 0u64;
    let mut opens = vec![None; n_jobs];
    let mut closes = vec![None; n_jobs];
    for (i, line) in lines.iter().enumerate() {
        assert!(
            line.starts_with("{\"ev\": \"") && line.ends_with('}'),
            "line {i} is not an event object: {line}"
        );
        let t_us = field_u64(line, "t_us").unwrap_or_else(|| panic!("no t_us: {line}"));
        assert!(t_us >= last_t, "t_us regressed at line {i}: {line}");
        last_t = t_us;
        if let Some(job) = field_u64(line, "job").map(|j| j as usize) {
            if line.contains("\"ev\": \"job_open\"") {
                assert!(opens[job].is_none(), "job {job} opened twice");
                opens[job] = Some(i);
            }
            if line.contains("\"ev\": \"job_close\"") {
                assert!(closes[job].is_none(), "job {job} closed twice");
                closes[job] = Some(i);
            }
        }
    }
    for job in 0..n_jobs {
        let open = opens[job].unwrap_or_else(|| panic!("job {job} never opened"));
        let close = closes[job].unwrap_or_else(|| panic!("job {job} never closed"));
        assert!(open < close, "job {job} closed before opening");
    }
    assert!(journal.contains("\"ev\": \"sweep_open\""));
    assert!(journal.contains("\"ev\": \"sweep_close\""));
    assert!(
        lines
            .last()
            .expect("non-empty")
            .contains("\"ev\": \"sweep_close\""),
        "sweep span must close last"
    );
}

/// The per-predictor introspection counters the issue requires: BF-Neural,
/// BF-TAGE, perceptron, and TAGE must each export their internals, and
/// every job must carry a non-empty top-N hard-to-predict table.
#[test]
fn metrics_document_covers_required_predictors() {
    let registry = bfbp::default_registry();
    let runner = small_runner();
    let specs = vec![
        PredictorSpec::new("bf-neural").labeled("bf-neural"),
        PredictorSpec::new("bf-tage").labeled("bf-tage"),
        PredictorSpec::new("perceptron").labeled("perceptron"),
        PredictorSpec::new("tage").labeled("tage"),
    ];
    let report = sweep(
        &registry,
        &specs,
        &runner,
        &SweepOptions::default().with_metrics(),
    )
    .expect("sweep");
    assert!(report.is_fully_ok());

    let expected: [(&str, &[&str]); 4] = [
        (
            "bf-neural",
            &[
                "bst.occupancy",
                "bst.hit_rate",
                "weights.wm.saturation",
                "theta",
            ],
        ),
        (
            "bf-tage",
            &[
                "tage.table1.allocs*",
                "bst.occupancy",
                "bf_ghr.commits*",
                "bf_ghr.occupancy",
            ],
        ),
        (
            "perceptron",
            &["weights.saturation", "theta", "weights.total*"],
        ),
        (
            "tage",
            &[
                "tage.table1.allocs*",
                "tage.alloc_failures*",
                "tage.table1.occupancy",
            ],
        ),
    ];
    for (s, (label, names)) in expected.iter().enumerate() {
        for t in 0..2 {
            let obs = report
                .job_obs(s, t)
                .unwrap_or_else(|| panic!("{label}: no obs for trace {t}"));
            for name in *names {
                // A trailing '*' marks a counter; plain names are gauges.
                let present = match name.strip_suffix('*') {
                    Some(counter) => obs.metrics.counter_value(counter).is_some(),
                    None => obs.metrics.gauge_value(name).is_some(),
                };
                assert!(present, "{label}: metric {name} missing");
            }
            // Universal simulation counters from the engine itself.
            assert!(obs.metrics.counter_value("sim.mispredictions").is_some());
            // Per-branch attribution: something must have mispredicted.
            assert!(obs.h2p.total_mispredicted() > 0, "{label}: empty H2P");
            assert!(!obs.h2p.top(32).is_empty(), "{label}: no top-N rows");
        }
    }
    let doc = report.metrics_json().expect("metrics document");
    assert!(doc.contains("\"schema\": \"bfbp-metrics/1\""));
    assert!(doc.contains("\"h2p\": ["));
    assert!(doc.contains("tage.table1.allocs"));
}

/// The metrics document is deterministic: serial and parallel runs of
/// the same matrix agree byte for byte (H2P accumulation is per-job,
/// rendering is canonically sorted).
#[test]
fn metrics_document_is_thread_count_independent() {
    let registry = bfbp::default_registry();
    let runner = small_runner();
    let specs = small_specs();
    let serial = sweep(
        &registry,
        &specs,
        &runner,
        &SweepOptions::serial().with_metrics(),
    )
    .expect("serial");
    let parallel = sweep(
        &registry,
        &specs,
        &runner,
        &SweepOptions::default().with_threads(4).with_metrics(),
    )
    .expect("parallel");
    assert_eq!(
        serial.metrics_json().expect("serial metrics"),
        parallel.metrics_json().expect("parallel metrics")
    );
    assert_eq!(serial.results_json(), parallel.results_json());
}

/// Pulls an unsigned-integer field out of one rendered event line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}
