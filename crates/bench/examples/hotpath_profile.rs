//! Manual hot-path cost breakdown for bf-tage over SERV1: times the
//! decode, history, and table layers separately so a throughput
//! regression can be attributed without a system profiler.
//!
//! ```sh
//! cargo run --release -p bfbp-bench --example hotpath_profile
//! ```

use std::time::Instant;

use bfbp_core::bf_ghr::BfGhr;
use bfbp_predictors::history::{mix64, PathHistory};
use bfbp_sim::registry::PredictorSpec;
use bfbp_sim::simulate::Simulation;
use bfbp_tage::config::TageConfig;
use bfbp_tage::tage::TageCore;
use bfbp_trace::cache::TraceCache;
use bfbp_trace::source::{FileSource, TraceChunk, TraceSource};
use bfbp_trace::synth::suite;

fn main() {
    let spec = suite::find("SERV1").expect("SERV1 in suite");
    let n = spec.default_len();
    let cache = TraceCache::from_env();
    let (trace, _) = cache.fetch(&spec, n);
    let entry = cache.entry_path(&spec, n).expect("cache on");

    // 1. Decode only.
    let t = Instant::now();
    let mut source = FileSource::open(&entry).expect("open");
    let mut chunk = TraceChunk::new();
    let mut total = 0usize;
    while source.fill_chunk(&mut chunk, 4096).expect("decode") > 0 {
        total += chunk.len();
    }
    let decode = t.elapsed();
    eprintln!(
        "decode only           {:>10.0} rec/s ({total} records)",
        total as f64 / decode.as_secs_f64()
    );

    // 2. Full bf-tage replay.
    let registry = bfbp::default_registry();
    let mut p = registry
        .build_spec(&PredictorSpec::new("bf-tage"))
        .expect("bf-tage");
    Simulation::new(p.as_mut()).run_trace(&trace).expect("warm");
    let mut p = registry
        .build_spec(&PredictorSpec::new("bf-tage"))
        .expect("bf-tage");
    let t = Instant::now();
    Simulation::new(p.as_mut()).run_trace(&trace).expect("run");
    let full = t.elapsed();
    eprintln!(
        "bf-tage replay        {:>10.0} rec/s",
        trace.len() as f64 / full.as_secs_f64()
    );

    // 3. BF-GHR commit + fold alone, fed realistic keys/outcomes.
    let conds: Vec<(u16, bool)> = trace
        .records()
        .iter()
        .filter(|r| r.kind.is_conditional())
        .map(|r| ((mix64(r.pc >> 2) & 0x3FFF) as u16, r.taken))
        .collect();
    let mut ghr = BfGhr::new();
    let mut sink = 0u64;
    let lengths = [3usize, 8, 14, 26, 40, 54, 70, 94, 118, 142];
    let mut folded = Vec::new();
    let t = Instant::now();
    for &(key, taken) in &conds {
        ghr.commit(key, taken, key & 3 == 0);
        ghr.fold_mixed(&lengths, &mut folded);
        sink ^= folded[9];
    }
    let ghr_time = t.elapsed();
    eprintln!(
        "ghr commit+fold       {:>10.0} cond/s (sink {sink:x})",
        conds.len() as f64 / ghr_time.as_secs_f64()
    );

    // 3b. Commit alone, and fold alone against a static history.
    let mut ghr2 = BfGhr::new();
    let t = Instant::now();
    for &(key, taken) in &conds {
        ghr2.commit(key, taken, key & 3 == 0);
    }
    let commit_time = t.elapsed();
    eprintln!(
        "ghr commit only       {:>10.0} cond/s ({:.1}ns)",
        conds.len() as f64 / commit_time.as_secs_f64(),
        commit_time.as_secs_f64() * 1e9 / conds.len() as f64
    );
    let t = Instant::now();
    for _ in 0..conds.len() {
        ghr2.fold_mixed(&lengths, &mut folded);
        sink ^= folded[9];
    }
    let fold_time = t.elapsed();
    eprintln!(
        "ghr fold only         {:>10.0} cond/s ({:.1}ns, sink {sink:x})",
        conds.len() as f64 / fold_time.as_secs_f64(),
        fold_time.as_secs_f64() * 1e9 / conds.len() as f64
    );

    // 4. TageCore predict/update alone with synthetic indices.
    let config = TageConfig::bias_free(10).expect("10 tables");
    let mut core = TageCore::new(&config);
    let masks: Vec<usize> = config
        .tables
        .iter()
        .map(|t| (1 << t.log_size) - 1)
        .collect();
    let mut idx = vec![0usize; 10];
    let mut tags = vec![0u16; 10];
    let t = Instant::now();
    for (i, &(key, taken)) in conds.iter().enumerate() {
        let base = mix64(u64::from(key) ^ (i as u64) << 17);
        for j in 0..10 {
            idx[j] = (base.rotate_left(j as u32 * 6) as usize) & masks[j];
            tags[j] = (base >> (j + 3)) as u16 & 0x3FF;
        }
        let g = core.predict(u64::from(key) << 2, &idx, &tags);
        sink ^= u64::from(g);
        core.update(u64::from(key) << 2, taken);
    }
    let core_time = t.elapsed();
    eprintln!(
        "tage core p+u         {:>10.0} cond/s (incl. index synth; sink {sink:x})",
        conds.len() as f64 / core_time.as_secs_f64()
    );

    // 5. Path history push for every record.
    let mut path = PathHistory::new(16);
    let t = Instant::now();
    for r in trace.records() {
        path.push(r.pc);
    }
    sink ^= path.value();
    eprintln!(
        "path push             {:>10.0} rec/s (sink {sink:x})",
        trace.len() as f64 / t.elapsed().as_secs_f64()
    );

    eprintln!(
        "\nper-record budget: full {:.1}ns | decode {:.1}ns | ghr {:.1}ns/cond | core {:.1}ns/cond",
        full.as_secs_f64() * 1e9 / trace.len() as f64,
        decode.as_secs_f64() * 1e9 / total as f64,
        ghr_time.as_secs_f64() * 1e9 / conds.len() as f64,
        core_time.as_secs_f64() * 1e9 / conds.len() as f64,
    );
}
