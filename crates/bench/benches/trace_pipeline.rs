//! Streaming-pipeline throughput smoke: the repo's first recorded perf
//! baseline for the chunked simulation hot loop.
//!
//! Measures records/sec for `bf-tage` over a cached SERV trace on both
//! consumption paths — the materialized replay (`Simulation::run_trace`)
//! and the streamed chunk decode of the cache's BFBT entry — plus the
//! cache's cold/warm fetch latency and the process peak RSS, and writes
//! the numbers to `BENCH_4.json` (in `BFBP_RESULTS_DIR`, else the
//! workspace root).
//!
//! ```sh
//! cargo bench --features bench-harness --bench trace_pipeline
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use bfbp_sim::registry::PredictorSpec;
use bfbp_sim::simulate::Simulation;
use bfbp_trace::cache::TraceCache;
use bfbp_trace::source::FileSource;
use bfbp_trace::synth::suite;

/// Timed repetitions per path; the best (highest-throughput) rep is
/// reported, which is the conventional way to suppress scheduler noise
/// in a smoke-sized benchmark.
const REPS: usize = 3;

fn main() {
    let registry = bfbp::default_registry();
    let spec = suite::find("SERV1").expect("SERV1 in suite");
    let n_records = spec.default_len();
    let cache = TraceCache::from_env();

    // Cold (or possibly warm, if a previous run populated the default
    // cache dir) fetch, then a guaranteed-warm fetch for the hit timing.
    let t0 = Instant::now();
    let (trace, first_status) = cache.fetch(&spec, n_records);
    let first_fetch_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let (_, warm_status) = cache.fetch(&spec, n_records);
    let warm_fetch_ms = t1.elapsed().as_secs_f64() * 1e3;

    let build = |registry: &bfbp_sim::registry::PredictorRegistry| {
        registry
            .build_spec(&PredictorSpec::new("bf-tage"))
            .expect("bf-tage is registered")
    };

    // Warm-up pass (predictor allocation paths, branch-predictor-of-the-
    // host effects), then timed reps.
    let mut p = build(&registry);
    Simulation::new(p.as_mut())
        .run_trace(&trace)
        .expect("never cancelled");

    let mut replay_best = 0.0f64;
    for _ in 0..REPS {
        let mut p = build(&registry);
        let t = Instant::now();
        let (result, _) = Simulation::new(p.as_mut())
            .run_trace(&trace)
            .expect("never cancelled");
        let rate = trace.len() as f64 / t.elapsed().as_secs_f64();
        assert!(result.conditional_branches() > 0);
        replay_best = replay_best.max(rate);
    }

    // Streamed path: decode the cache's own BFBT entry chunk-by-chunk,
    // which is exactly what a `TraceInput::Streamed` sweep job does.
    let entry = cache
        .entry_path(&spec, n_records)
        .filter(|p| p.exists())
        .expect("cache entry exists after fetch (is BFBP_TRACE_CACHE=0 set?)");
    let mut streamed_best = 0.0f64;
    for _ in 0..REPS {
        let mut p = build(&registry);
        let mut source = FileSource::open(&entry).expect("cache entry opens");
        let t = Instant::now();
        let (result, _) = Simulation::new(p.as_mut())
            .run(&mut source)
            .expect("never cancelled");
        let rate = trace.len() as f64 / t.elapsed().as_secs_f64();
        assert!(result.instructions() > 0);
        streamed_best = streamed_best.max(rate);
    }

    let peak_rss_kb = peak_rss_kb().unwrap_or(0);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"bfbp-bench/1\",");
    let _ = writeln!(json, "  \"bench\": \"BENCH_4\",");
    let _ = writeln!(
        json,
        "  \"description\": \"streaming trace pipeline baseline: bf-tage over cached {}\",",
        spec.name()
    );
    let _ = writeln!(json, "  \"trace\": \"{}\",", spec.name());
    let _ = writeln!(json, "  \"records\": {n_records},");
    let _ = writeln!(json, "  \"predictor\": \"bf-tage\",");
    let _ = writeln!(json, "  \"replay_records_per_sec\": {replay_best:.0},");
    let _ = writeln!(json, "  \"streamed_records_per_sec\": {streamed_best:.0},");
    let _ = writeln!(
        json,
        "  \"first_fetch\": {{\"status\": \"{}\", \"ms\": {:.2}}},",
        first_status.name(),
        first_fetch_ms
    );
    let _ = writeln!(
        json,
        "  \"warm_fetch\": {{\"status\": \"{}\", \"ms\": {:.2}}},",
        warm_status.name(),
        warm_fetch_ms
    );
    let _ = writeln!(json, "  \"peak_rss_kb\": {peak_rss_kb}");
    json.push_str("}\n");

    let path = output_dir().join("BENCH_4.json");
    std::fs::write(&path, &json).expect("write BENCH_4.json");
    print!("{json}");
    eprintln!("wrote {}", path.display());
}

/// `BFBP_RESULTS_DIR` when set, else the workspace root (the parent of
/// the cargo `target` directory the bench executable runs from).
fn output_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("BFBP_RESULTS_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    if let Ok(exe) = std::env::current_exe() {
        for ancestor in exe.ancestors() {
            if ancestor.file_name().is_some_and(|n| n == "target") {
                if let Some(root) = ancestor.parent() {
                    return root.to_path_buf();
                }
            }
        }
    }
    PathBuf::from(".")
}

/// Peak resident set size in kB from `/proc/self/status` (`VmHWM`);
/// `None` on non-Linux or unreadable procfs.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}
