//! Batched-kernel perf-regression harness: records/sec for every
//! registered predictor in batched and per-record mode, plus the
//! headline streamed/replay rates for `bf-tage` over the cached SERV
//! trace — directly comparable to the BENCH_4 streaming-pipeline
//! baseline, which predates the batch kernels.
//!
//! Two guards in one binary: the numbers land in `BENCH_6.json` (in
//! `BFBP_RESULTS_DIR`, else the workspace root) for the verify skill's
//! tolerance check, and every matrix predictor's batched run is
//! asserted to produce *identical* misprediction counts to the
//! per-record reference loop — a throughput win that changes a count
//! fails the bench, not just the test suite.
//!
//! ```sh
//! cargo bench --features bench-harness --bench throughput
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use bfbp_sim::registry::{PredictorRegistry, PredictorSpec};
use bfbp_sim::simulate::{simulate_stream, SimResult, Simulation};
use bfbp_trace::cache::TraceCache;
use bfbp_trace::record::Trace;
use bfbp_trace::source::FileSource;
use bfbp_trace::synth::suite;

/// Timed repetitions per path; the best (highest-throughput) rep is
/// reported, which is the conventional way to suppress scheduler noise
/// in a smoke-sized benchmark.
const REPS: usize = 3;

/// Record count for the all-predictor matrix: long enough to amortize
/// warm-up, short enough that the slowest predictor keeps the whole
/// matrix in seconds.
const MATRIX_RECORDS: usize = 20_000;

fn main() {
    let registry = bfbp::default_registry();
    let spec = suite::find("SERV1").expect("SERV1 in suite");
    let n_records = spec.default_len();
    let cache = TraceCache::from_env();
    let (trace, _) = cache.fetch(&spec, n_records);

    // Headline: bf-tage on the same trace/length/paths BENCH_4 recorded,
    // now driven through the batch kernels.
    let build = |registry: &PredictorRegistry| {
        registry
            .build_spec(&PredictorSpec::new("bf-tage"))
            .expect("bf-tage is registered")
    };
    let mut p = build(&registry);
    Simulation::new(p.as_mut())
        .run_trace(&trace)
        .expect("never cancelled");

    let mut replay_best = 0.0f64;
    for _ in 0..REPS {
        let mut p = build(&registry);
        let t = Instant::now();
        let (result, _) = Simulation::new(p.as_mut())
            .run_trace(&trace)
            .expect("never cancelled");
        let rate = trace.len() as f64 / t.elapsed().as_secs_f64();
        assert!(result.conditional_branches() > 0);
        replay_best = replay_best.max(rate);
    }

    let entry = cache
        .entry_path(&spec, n_records)
        .filter(|p| p.exists())
        .expect("cache entry exists after fetch (is BFBP_TRACE_CACHE=0 set?)");
    let mut streamed_best = 0.0f64;
    for _ in 0..REPS {
        let mut p = build(&registry);
        let mut source = FileSource::open(&entry).expect("cache entry opens");
        let t = Instant::now();
        let (result, _) = Simulation::new(p.as_mut())
            .run(&mut source)
            .expect("never cancelled");
        let rate = trace.len() as f64 / t.elapsed().as_secs_f64();
        assert!(result.instructions() > 0);
        streamed_best = streamed_best.max(rate);
    }

    // Matrix: every registered predictor, batched chunk loop vs the
    // per-record reference loop, on one shared short trace.
    let matrix_trace = spec.generate_len(MATRIX_RECORDS);
    let mut matrix = Vec::new();
    for name in registry.names() {
        let row = matrix_row(&registry, name, &matrix_trace);
        eprintln!(
            "{name:<18} batched {:>10.0} rec/s   per-record {:>10.0} rec/s   x{:.2}",
            row.batched_rate,
            row.per_record_rate,
            row.batched_rate / row.per_record_rate
        );
        matrix.push(row);
    }

    let peak_rss_kb = peak_rss_kb().unwrap_or(0);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema\": \"bfbp-bench/1\",");
    let _ = writeln!(json, "  \"bench\": \"BENCH_6\",");
    let _ = writeln!(
        json,
        "  \"description\": \"batched predictor kernels: bf-tage over cached {} plus an all-predictor batched vs per-record matrix\",",
        spec.name()
    );
    let _ = writeln!(json, "  \"trace\": \"{}\",", spec.name());
    let _ = writeln!(json, "  \"records\": {n_records},");
    let _ = writeln!(json, "  \"predictor\": \"bf-tage\",");
    let _ = writeln!(json, "  \"replay_records_per_sec\": {replay_best:.0},");
    let _ = writeln!(json, "  \"streamed_records_per_sec\": {streamed_best:.0},");
    let _ = writeln!(json, "  \"matrix_records\": {MATRIX_RECORDS},");
    let _ = writeln!(json, "  \"matrix\": [");
    for (i, row) in matrix.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"predictor\": \"{}\", \"batched_records_per_sec\": {:.0}, \"per_record_records_per_sec\": {:.0}}}{}",
            row.name,
            row.batched_rate,
            row.per_record_rate,
            if i + 1 < matrix.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"peak_rss_kb\": {peak_rss_kb}");
    json.push_str("}\n");

    let path = output_dir().join("BENCH_6.json");
    std::fs::write(&path, &json).expect("write BENCH_6.json");
    print!("{json}");
    eprintln!("wrote {}", path.display());
}

struct MatrixRow {
    name: String,
    batched_rate: f64,
    per_record_rate: f64,
}

/// Times one predictor in both modes on `trace`, asserting the batched
/// chunk loop reproduces the per-record loop's counts exactly.
fn matrix_row(registry: &PredictorRegistry, name: &str, trace: &Trace) -> MatrixRow {
    let spec = PredictorSpec::new(name);
    let build = || registry.build_spec(&spec).expect("registered spec builds");

    // Warm-up (allocation paths, host-cache effects), one per mode.
    let mut p = build();
    let (reference, _) = Simulation::new(p.as_mut())
        .run_trace(trace)
        .expect("never cancelled");
    let mut p = build();
    per_record(p.as_mut(), trace);

    let mut batched_rate = 0.0f64;
    for _ in 0..REPS {
        let mut p = build();
        let t = Instant::now();
        let (result, _) = Simulation::new(p.as_mut())
            .run_trace(trace)
            .expect("never cancelled");
        batched_rate = batched_rate.max(trace.len() as f64 / t.elapsed().as_secs_f64());
        assert_eq!(
            result.mispredictions(),
            reference.mispredictions(),
            "{name}: batched reps disagree"
        );
    }
    let mut per_record_rate = 0.0f64;
    for _ in 0..REPS {
        let mut p = build();
        let t = Instant::now();
        let result = per_record(p.as_mut(), trace);
        per_record_rate = per_record_rate.max(trace.len() as f64 / t.elapsed().as_secs_f64());
        assert_eq!(
            result.mispredictions(),
            reference.mispredictions(),
            "{name}: batched and per-record modes disagree"
        );
        assert_eq!(
            result.conditional_branches(),
            reference.conditional_branches()
        );
    }
    MatrixRow {
        name: name.to_owned(),
        batched_rate,
        per_record_rate,
    }
}

/// The un-batched reference: one predict/update (or track_other) pair
/// per record, no chunking — the hot loop as it was before the batch
/// kernels landed.
fn per_record(p: &mut dyn bfbp_sim::predictor::ConditionalPredictor, trace: &Trace) -> SimResult {
    simulate_stream(p, trace.name(), trace.records().iter().copied())
}

/// `BFBP_RESULTS_DIR` when set, else the workspace root (the parent of
/// the cargo `target` directory the bench executable runs from).
fn output_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("BFBP_RESULTS_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    if let Ok(exe) = std::env::current_exe() {
        for ancestor in exe.ancestors() {
            if ancestor.file_name().is_some_and(|n| n == "target") {
                if let Some(root) = ancestor.parent() {
                    return root.to_path_buf();
                }
            }
        }
    }
    PathBuf::from(".")
}

/// Peak resident set size in kB from `/proc/self/status` (`VmHWM`);
/// `None` on non-Linux or unreadable procfs.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}
