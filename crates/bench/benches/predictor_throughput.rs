//! Prediction throughput microbenchmarks: simulated branches per second
//! for every predictor at its paper configuration.
//!
//! These are the latency/energy proxies behind the paper's argument that
//! fewer tagged tables (BF-TAGE) mean less work per prediction: compare
//! `isl_tage_15` against `bf_isl_tage_10` and the smaller counts.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use bfbp_core::bf_neural::BfNeural;
use bfbp_core::bf_tage::bf_isl_tage;
use bfbp_predictors::piecewise::PiecewiseLinear;
use bfbp_predictors::snap::ScaledNeural;
use bfbp_sim::predictor::ConditionalPredictor;
use bfbp_sim::simulate::simulate;
use bfbp_tage::isl::isl_tage;
use bfbp_trace::record::Trace;
use bfbp_trace::synth::suite;

const BENCH_BRANCHES: usize = 20_000;

fn bench_trace() -> Trace {
    suite::find("SPEC00")
        .expect("SPEC00 in suite")
        .generate_len(BENCH_BRANCHES)
}

fn bench_predictors(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("predictor_throughput");
    group
        .throughput(Throughput::Elements(trace.len() as u64))
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2));

    macro_rules! bench {
        ($name:literal, $make:expr) => {
            group.bench_function($name, |b| {
                b.iter(|| {
                    let mut p = $make;
                    black_box(simulate(&mut p, &trace).mispredictions())
                })
            });
        };
    }

    bench!(
        "piecewise_linear_64kb",
        PiecewiseLinear::conventional_64kb()
    );
    bench!("oh_snap_64kb", ScaledNeural::budget_64kb());
    bench!("isl_tage_15", isl_tage(15));
    bench!("isl_tage_10", isl_tage(10));
    bench!("isl_tage_7", isl_tage(7));
    bench!("bf_neural_64kb", BfNeural::budget_64kb());
    bench!("bf_isl_tage_10", bf_isl_tage(10));
    bench!("bf_isl_tage_7", bf_isl_tage(7));

    group.finish();
}

fn bench_single_prediction(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("warm_predict_update");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));

    // Warm each predictor on the whole trace, then measure steady-state
    // predict+update pairs on a fixed record stream.
    let records: Vec<_> = trace
        .iter()
        .filter(|r| r.kind.is_conditional())
        .copied()
        .collect();

    macro_rules! bench_warm {
        ($name:literal, $make:expr) => {
            group.bench_function($name, |b| {
                let mut p = $make;
                simulate(&mut p, &trace);
                let mut i = 0usize;
                b.iter(|| {
                    let r = &records[i % records.len()];
                    i += 1;
                    let g = p.predict(r.pc);
                    p.update(r.pc, r.taken, r.target);
                    black_box(g)
                })
            });
        };
    }

    bench_warm!("bf_neural_steady", BfNeural::budget_64kb());
    bench_warm!("bf_isl_tage_10_steady", bf_isl_tage(10));
    bench_warm!("isl_tage_15_steady", isl_tage(15));

    group.finish();
}

criterion_group!(benches, bench_predictors, bench_single_prediction);
criterion_main!(benches);
