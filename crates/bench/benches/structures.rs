//! Microbenchmarks for the paper's hardware structures: recency-stack
//! operations (Figure 3), BST transitions (Figure 5), folded-history
//! updates, and segmented BF-GHR commits (Figure 7).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use bfbp_core::bf_ghr::BfGhr;
use bfbp_core::bst::Bst;
use bfbp_core::recency::RecencyStack;
use bfbp_predictors::history::{BucketedFolds, ManagedHistory};

fn bench_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("structures");
    group
        .throughput(Throughput::Elements(1))
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));

    group.bench_function("recency_stack_record_48", |b| {
        let mut rs = RecencyStack::new(48);
        let mut now = 0u64;
        b.iter(|| {
            now += 1;
            rs.record(black_box(now % 64), now.is_multiple_of(2), now);
        })
    });

    group.bench_function("bst_commit", |b| {
        let mut bst = Bst::new(14);
        let mut pc = 0u64;
        b.iter(|| {
            pc = pc.wrapping_add(4);
            black_box(bst.commit(pc, !pc.is_multiple_of(8)));
        })
    });

    group.bench_function("folded_history_push", |b| {
        let mut m = ManagedHistory::new(2048, &[(1930, 11), (517, 12), (97, 10)]);
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            m.push(k.is_multiple_of(3));
            black_box(m.fold(0));
        })
    });

    group.bench_function("bucketed_folds_push", |b| {
        let mut f = BucketedFolds::new();
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            f.push(k.is_multiple_of(3));
            black_box(f.widest());
        })
    });

    group.bench_function("bf_ghr_commit", |b| {
        let mut ghr = BfGhr::new();
        let mut k = 0u64;
        b.iter(|| {
            k += 1;
            ghr.commit(
                black_box((k % 4096) as u16),
                k.is_multiple_of(2),
                !k.is_multiple_of(3),
            );
        })
    });

    group.bench_function("bf_ghr_collect_mixed", |b| {
        let mut ghr = BfGhr::new();
        for k in 0..4096u64 {
            ghr.commit((k % 512) as u16, k.is_multiple_of(2), !k.is_multiple_of(3));
        }
        let mut out = Vec::with_capacity(160);
        b.iter(|| {
            ghr.collect_mixed(&mut out);
            black_box(out.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_structures);
criterion_main!(benches);
