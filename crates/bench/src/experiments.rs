//! The experiment implementations behind every figure and table of the
//! paper's evaluation section. Each `fig*`/`table*` function prints the
//! same rows/series the paper reports and returns the headline numbers so
//! integration tests can assert on shapes without scraping stdout.
//!
//! Predictor configurations are [`PredictorSpec`]s built through the
//! workspace registry ([`bfbp::default_registry`]) and executed by the
//! parallel sweep engine ([`bfbp_sim::engine::sweep`]); each figure also
//! drops a machine-readable JSON document under `target/results/`
//! (`$BFBP_RESULTS_DIR` overrides the directory). The handful of
//! experiments that need concrete predictor internals (provider
//! statistics, explicit classifiers, the idealized Algorithm 1) still
//! construct those types directly.
//!
//! Scale: all functions take a trace-length scale factor (1.0 = the
//! suite's default lengths); harness binaries pass
//! `env_scale`-controlled values so `BFBP_TRACE_SCALE=0.05` gives a quick
//! smoke run.

use bfbp_core::bf_neural::{BfNeural, BfNeuralConfig};
use bfbp_core::bf_tage::{bf_isl_tage, BfTage};
use bfbp_core::bst::Classifier;
use bfbp_core::profile::StaticProfile;
use bfbp_sim::engine::{sweep, SweepOptions, SweepReport};
use bfbp_sim::registry::{PredictorRegistry, PredictorSpec};
use bfbp_sim::runner::{scaled_len, SuiteRunner};
use bfbp_sim::simulate::{simulate, SimResult};
use bfbp_sim::storage::StorageBreakdown;
use bfbp_sim::tune::{tune, SearchSpace, TuneError, TuneOptions};
use bfbp_tage::config::TageConfig;
use bfbp_tage::isl::Isl;
use bfbp_tage::tage::Tage;
use bfbp_trace::cache::TraceCache;
use bfbp_trace::stats::BiasProfile;
use bfbp_trace::synth::suite;

use crate::{banner, cell, print_mpki_table};

/// Runs `specs` over the suite at `scale` through the parallel engine
/// and writes the `<run>.json` results document. Panics on a spec that
/// does not build — every spec here names a registered predictor.
fn run_sweep(specs: &[PredictorSpec], scale: f64, run: &str) -> SweepReport {
    let registry = bfbp::default_registry();
    let runner = SuiteRunner::generate(scale);
    run_sweep_with(&registry, specs, &runner, run)
}

/// [`run_sweep`] against a caller-provided registry and trace suite.
/// Fault-tolerance knobs (`BFBP_SWEEP_RETRIES`, `BFBP_SWEEP_BACKOFF_MS`,
/// `BFBP_SWEEP_TIMEOUT_MS`) are honored from the environment.
fn run_sweep_with(
    registry: &PredictorRegistry,
    specs: &[PredictorSpec],
    runner: &SuiteRunner,
    run: &str,
) -> SweepReport {
    let report = sweep(registry, specs, runner, &SweepOptions::from_env())
        .unwrap_or_else(|e| panic!("sweep {run} failed to start: {e}"));
    match report.write_json(run) {
        Ok(path) => println!(
            "[{run}: {} jobs on {} threads, wall {:.0} ms, speedup {:.2}x -> {}]",
            report.jobs().len(),
            report.threads(),
            report.wall().as_secs_f64() * 1e3,
            report.speedup(),
            path.display()
        ),
        Err(e) => eprintln!("warning: could not write results for {run}: {e}"),
    }
    // With BFBP_SWEEP_METRICS on, the introspection/H2P document lands
    // beside the results; without it this is a no-op (Ok(None)).
    match report.write_metrics_json(run) {
        Ok(Some(path)) => println!("[{run}: metrics -> {}]", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("warning: could not write metrics for {run}: {e}"),
    }
    let summary = report.summary();
    if summary.ok < summary.jobs {
        eprintln!(
            "warning: {run} completed partially: {} ok, {} failed, {} timed out, {} skipped",
            summary.ok, summary.failed, summary.timed_out, summary.skipped
        );
    }
    report
}

/// The successful per-trace results of one series; panics on an unknown
/// label (labels here come from the experiment's own spec list).
fn series_results(report: &SweepReport, label: &str) -> Vec<SimResult> {
    report
        .try_results(label)
        .unwrap_or_else(|| panic!("no sweep series labeled {label:?}"))
}

/// Figure 2: percentage of completely biased static branches per trace
/// (plus the dynamic share, which the paper's text discusses). Returns
/// the per-trace static percentages in suite order.
pub fn fig02_bias(scale: f64) -> Vec<f64> {
    banner(
        "Figure 2 — Biased Branches",
        "% of static conditional branches that are completely biased, per trace",
    );
    let runner = SuiteRunner::generate(scale);
    println!(
        "{}{}{}{}",
        cell("trace", 10),
        cell("static biased %", 18),
        cell("dynamic biased %", 18),
        cell("static branches", 16),
    );
    let mut out = Vec::new();
    for trace in runner.traces() {
        let p = BiasProfile::measure(trace);
        println!(
            "{}{}{}{}",
            cell(trace.name(), 10),
            cell(&format!("{:.1}", p.static_biased_percent()), 18),
            cell(&format!("{:.1}", p.dynamic_biased_percent()), 18),
            cell(&p.static_conditionals().to_string(), 16),
        );
        out.push(p.static_biased_percent());
    }
    out
}

/// The Figure 8 predictor set: OH-SNAP, the paper's TAGE baseline
/// (15 tagged tables + loop predictor, no SC), and BF-Neural, all at a
/// ~64 KB budget.
fn fig08_specs() -> Vec<PredictorSpec> {
    vec![
        PredictorSpec::new("oh-snap").labeled("OH-SNAP"),
        PredictorSpec::new("isl-tage")
            .with("sc", false)
            .labeled("TAGE"),
        PredictorSpec::new("bf-neural").labeled("BF-Neural"),
    ]
}

/// Figure 8: MPKI comparison between OH-SNAP, TAGE (15 tagged tables +
/// loop predictor, no SC — the paper's baseline) and BF-Neural, all at a
/// ~64 KB budget. Returns `(snap, tage, bf_neural)` mean MPKI.
pub fn fig08_mpki(scale: f64) -> (f64, f64, f64) {
    banner(
        "Figure 8 — MPKI Comparison between Various Predictors",
        "paper: OH-SNAP 2.63, TAGE 2.445, BF-Neural 2.49 (64 KB budget)",
    );
    let report = run_sweep(&fig08_specs(), scale, "fig08");
    let (snap, tage, bf) = (
        series_results(&report, "OH-SNAP"),
        series_results(&report, "TAGE"),
        series_results(&report, "BF-Neural"),
    );
    print_mpki_table(&["OH-SNAP", "TAGE", "BF-Neural"], &[snap, tage, bf]);
    let result = (
        report.mean_mpki("OH-SNAP"),
        report.mean_mpki("TAGE"),
        report.mean_mpki("BF-Neural"),
    );
    println!(
        "\nmeans: OH-SNAP {:.3}  TAGE {:.3}  BF-Neural {:.3}  (BF vs OH-SNAP: {:+.1}%)",
        result.0,
        result.1,
        result.2,
        100.0 * (result.2 - result.0) / result.0
    );
    result
}

/// §VI-B's 32 KB data point: BF-Neural at half the budget
/// (paper: 2.73 MPKI). Returns the mean MPKI.
pub fn fig08_32kb(scale: f64) -> f64 {
    banner(
        "§VI-B — BF-Neural at 32 KB",
        "paper: 2.73 MPKI (vs 2.49 at 64 KB)",
    );
    let specs = [
        PredictorSpec::new("bf-neural-32kb").labeled("32kb"),
        PredictorSpec::new("bf-neural").labeled("64kb"),
    ];
    let report = run_sweep(&specs, scale, "fig08-32kb");
    let (m32, m64) = (report.mean_mpki("32kb"), report.mean_mpki("64kb"));
    println!("BF-Neural 32 KB: {m32:.3} MPKI   BF-Neural 64 KB: {m64:.3} MPKI");
    m32
}

/// Figure 9: contribution of the individual optimizations. Returns the
/// four bar means in paper order: conventional perceptron, BF-Neural
/// (fhist), BF-Neural (ghist bias-free + fhist), BF-Neural (ghist
/// bias-free + RS + fhist).
pub fn fig09_ablation(scale: f64) -> [f64; 4] {
    banner(
        "Figure 9 — Contribution of Optimizations for the BF-Neural Predictor",
        "paper: 3.28 -> 2.67 -> 2.59 -> 2.49 MPKI",
    );
    let labels = [
        "Conventional",
        "BF (fhist)",
        "BF (bias-free ghist)",
        "BF (+ recency stack)",
    ];
    let specs = [
        PredictorSpec::new("piecewise").labeled(labels[0]),
        PredictorSpec::new("bf-neural")
            .with("history-mode", "unfiltered")
            .labeled(labels[1]),
        PredictorSpec::new("bf-neural")
            .with("history-mode", "bias-filtered")
            .labeled(labels[2]),
        PredictorSpec::new("bf-neural").labeled(labels[3]),
    ];
    let report = run_sweep(&specs, scale, "fig09");
    print_mpki_table(
        &labels,
        &labels
            .iter()
            .map(|l| series_results(&report, l))
            .collect::<Vec<_>>(),
    );
    let bars = labels.map(|l| report.mean_mpki(l));
    println!(
        "\nbars: {:.3} -> {:.3} -> {:.3} -> {:.3}",
        bars[0], bars[1], bars[2], bars[3]
    );
    bars
}

/// Figure 10: mean MPKI for 4..=10 tagged tables, ISL-TAGE vs
/// BF-ISL-TAGE at matched storage. Returns `(isl, bf_isl)` means per
/// table count.
pub fn fig10_tables(scale: f64) -> Vec<(usize, f64, f64)> {
    banner(
        "Figure 10 — MPKI Comparison for Different Number of Tables",
        "paper: BF-ISL-TAGE below ISL-TAGE for small-to-moderate table counts\n\
         (e.g. 7 tables: 2.57 vs 2.73); roughly equal at 10",
    );
    let table_counts: Vec<usize> = (4..=10).collect();
    let specs: Vec<PredictorSpec> = table_counts
        .iter()
        .flat_map(|&n| {
            [
                PredictorSpec::new("isl-tage")
                    .with("tables", n)
                    .labeled(&format!("isl-{n}")),
                PredictorSpec::new("bf-isl-tage")
                    .with("tables", n)
                    .labeled(&format!("bf-isl-{n}")),
            ]
        })
        .collect();
    let report = run_sweep(&specs, scale, "fig10");
    println!(
        "{}{}{}",
        cell("tables", 8),
        cell("ISL-TAGE", 14),
        cell("BF-ISL-TAGE", 14)
    );
    let mut out = Vec::new();
    for n in table_counts {
        let (a, b) = (
            report.mean_mpki(&format!("isl-{n}")),
            report.mean_mpki(&format!("bf-isl-{n}")),
        );
        println!(
            "{}{}{}",
            cell(&n.to_string(), 8),
            cell(&format!("{a:.3}"), 14),
            cell(&format!("{b:.3}"), 14)
        );
        out.push((n, a, b));
    }
    out
}

/// Figure 11: per-trace relative MPKI improvement with respect to a
/// conventional 10-table TAGE, for the 15-table TAGE and the 10-table
/// BF-TAGE. Returns `(trace, tage15_improvement_%, bf10_improvement_%)`.
pub fn fig11_relative(scale: f64) -> Vec<(String, f64, f64)> {
    banner(
        "Figure 11 — Relative Improvement in MPKI w.r.t. TAGE with 10 Tables",
        "positive = better than 10-table TAGE; paper: BF-TAGE-10 tracks TAGE-15\n\
         on long-history traces, loses on SPEC07/FP2/MM/SERV",
    );
    let specs = [
        PredictorSpec::new("isl-tage")
            .with("tables", 10usize)
            .labeled("t10"),
        PredictorSpec::new("isl-tage")
            .with("tables", 15usize)
            .labeled("t15"),
        PredictorSpec::new("bf-isl-tage").labeled("bf10"),
    ];
    let report = run_sweep(&specs, scale, "fig11");
    let (t10, t15, bf10) = (
        series_results(&report, "t10"),
        series_results(&report, "t15"),
        series_results(&report, "bf10"),
    );
    println!(
        "{}{}{}",
        cell("trace", 10),
        cell("TAGE-15 vs TAGE-10 %", 24),
        cell("BF-TAGE-10 vs TAGE-10 %", 24)
    );
    let mut out = Vec::new();
    for ((a, b), c) in t10.iter().zip(&t15).zip(&bf10) {
        let base = a.mpki().max(1e-9);
        let imp15 = 100.0 * (a.mpki() - b.mpki()) / base;
        let imp_bf = 100.0 * (a.mpki() - c.mpki()) / base;
        println!(
            "{}{}{}",
            cell(a.trace_name(), 10),
            cell(&format!("{imp15:+.1}"), 24),
            cell(&format!("{imp_bf:+.1}"), 24)
        );
        out.push((a.trace_name().to_owned(), imp15, imp_bf));
    }
    out
}

/// The traces Figure 12 plots histograms for.
pub const FIG12_TRACES: [&str; 7] = [
    "SPEC00", "SPEC02", "SPEC03", "SPEC06", "SPEC09", "SPEC15", "SPEC17",
];

/// Figure 12: per-table provider ("branch-hit") distributions for the
/// 15-table TAGE and the 10-table BF-TAGE on seven long traces,
/// illustrating the shift toward shorter-history tables. Returns, per
/// trace, the mean provider table index (1-based) for TAGE-15 and
/// BF-TAGE-10.
///
/// Needs [`Tage::provider_stats`]/[`BfTage::provider_stats`], which are
/// not part of the [`bfbp_sim::ConditionalPredictor`] trait, so this
/// experiment constructs its predictors directly instead of going
/// through the registry.
pub fn fig12_hits(scale: f64) -> Vec<(String, f64, f64)> {
    banner(
        "Figure 12 — Branch-Hit Distribution over Tagged Tables",
        "percentage of predictions provided by each tagged table;\n\
         BF-TAGE should shift hits toward shorter-history tables",
    );
    let mut out = Vec::new();
    for name in FIG12_TRACES {
        let spec = suite::find(name).expect("figure 12 trace in suite");
        let (trace, _) = TraceCache::from_env().fetch(&spec, scaled_len(&spec, scale));

        let mut tage = Tage::with_tables(15);
        simulate(&mut tage, &trace);
        let mut bf = BfTage::with_tables(10);
        simulate(&mut bf, &trace);

        println!("\n{name}:");
        println!(
            "{}{}{}",
            cell("table", 8),
            cell("TAGE-15 %", 12),
            cell("BF-TAGE-10 %", 12)
        );
        let ts = tage.provider_stats();
        let bs = bf.provider_stats();
        for i in 0..15 {
            let t = ts.table_percent(i);
            let b = if i < 10 { bs.table_percent(i) } else { 0.0 };
            println!(
                "{}{}{}",
                cell(&format!("T{}", i + 1), 8),
                cell(&format!("{t:.1}"), 12),
                cell(&format!("{b:.1}"), 12)
            );
        }
        let mean_idx = |stats: &bfbp_tage::tage::ProviderStats, n: usize| -> f64 {
            let hits: f64 = (0..n).map(|i| stats.table_count(i) as f64).sum();
            if hits == 0.0 {
                return 0.0;
            }
            (0..n)
                .map(|i| (i + 1) as f64 * stats.table_count(i) as f64)
                .sum::<f64>()
                / hits
        };
        let mt = mean_idx(ts, 15);
        let mb = mean_idx(bs, 10);
        println!("mean provider table: TAGE-15 {mt:.2}, BF-TAGE-10 {mb:.2}");
        out.push((name.to_owned(), mt, mb));
    }
    out
}

/// Traces the Table I configurations are measured on — a spread over
/// the suite's categories, fetched at full scaled length so the cache
/// entries are the same ones the budget-sweep tuner's final rung reads.
const TABLE1_TRACES: [&str; 3] = ["SPEC03", "INT1", "SERV1"];

/// Table I: the storage budget of the 10-table BF-TAGE, regenerated from
/// the actual configuration (paper total: 51,100 bytes), alongside the
/// matched conventional configuration — with measured MPKI context on a
/// spread of suite traces served from the trace cache, like every other
/// experiment bin. Returns the BF-TAGE breakdown.
pub fn table1_storage(scale: f64) -> StorageBreakdown {
    banner(
        "Table I — Total storage for BF-TAGE with 10 tagged tables",
        "paper total: 51,100 bytes (tables + BST + RS + unfiltered history)",
    );
    let registry = bfbp::default_registry();
    let bf = registry
        .build("bf-tage", &bfbp_sim::registry::Params::new())
        .expect("bf-tage is registered");
    let storage = bf.storage();
    println!("{storage}");
    let conv = registry
        .build("tage", &bfbp_sim::registry::Params::new())
        .expect("tage is registered");
    println!(
        "\n(conventional 10-table TAGE for comparison: {} bytes)",
        conv.storage().total_bytes()
    );
    println!(
        "\nmeasured MPKI at these budgets ({} cache-served suite traces, scale {scale}):",
        TABLE1_TRACES.len()
    );
    println!(
        "{}{}{}",
        cell("trace", 10),
        cell("BF-TAGE-10", 12),
        cell("TAGE-10", 12)
    );
    let cache = TraceCache::from_env();
    for name in TABLE1_TRACES {
        let spec = suite::find(name).expect("Table I trace in suite");
        let (trace, _) = cache.fetch(&spec, scaled_len(&spec, scale));
        let mut bf = registry
            .build("bf-tage", &bfbp_sim::registry::Params::new())
            .expect("bf-tage is registered");
        let r_bf = simulate(bf.as_mut(), &trace);
        let mut conv = registry
            .build("tage", &bfbp_sim::registry::Params::new())
            .expect("tage is registered");
        let r_conv = simulate(conv.as_mut(), &trace);
        println!(
            "{}{}{}",
            cell(name, 10),
            cell(&format!("{:.3}", r_bf.mpki()), 12),
            cell(&format!("{:.3}", r_conv.mpki()), 12)
        );
    }
    storage
}

/// One budget's Pareto frontier: `(params summary, total bits, mean
/// MPKI)` per point, cheapest first.
pub type BudgetFrontier = Vec<(String, u64, f64)>;

/// The paper's design-space exploration, automated: tune the BF-TAGE
/// family (`bf-isl-tage`, tables 4..10, SC on/off) at fixed storage
/// budgets with the successive-halving tuner and report each budget's
/// Pareto frontier. The 56 KB budget is the Table I class (tagged
/// tables + BST + RS + history), 64 KB is the paper's headline budget.
/// Returns `(budget_bits, frontier (params, total_bits, mean MPKI))`
/// per budget.
pub fn budget_frontier(scale: f64) -> Vec<(u64, BudgetFrontier)> {
    banner(
        "Budget sweep — BF-TAGE design space at fixed storage budgets",
        "successive-halving search over bf-isl-tage:tables=4..10,sc=true|false;\n\
         Pareto frontier of mean MPKI vs. total storage at each budget",
    );
    let registry = bfbp::default_registry();
    let space = SearchSpace::parse("bf-isl-tage:tables=4..10,sc=true|false")
        .expect("budget-sweep space parses");
    let traces = suite::suite();
    let mut out = Vec::new();
    for budget_kb in [56u64, 60, 64] {
        let budget_bits = budget_kb * 8192;
        let options = TuneOptions {
            eta: 2,
            rungs: 2,
            scale,
            sweep: SweepOptions::from_env(),
            ..TuneOptions::default()
        };
        match tune(&registry, &space, budget_bits, &traces, &options) {
            Ok(report) => {
                println!(
                    "\n{budget_kb} KB budget: {} feasible of {} declared, {} evaluations, \
                     wall {:.0} ms",
                    report.candidates().len(),
                    report.declared(),
                    report.configs_evaluated(),
                    report.wall().as_secs_f64() * 1e3
                );
                let mut frontier = Vec::new();
                for point in report.frontier() {
                    println!(
                        "  {:>7.1} KB  {:>7.3} MPKI  {}",
                        point.total_bits as f64 / 8192.0,
                        point.mean_mpki,
                        point.params.summary()
                    );
                    frontier.push((point.params.summary(), point.total_bits, point.mean_mpki));
                }
                out.push((budget_bits, frontier));
            }
            Err(TuneError::NoFeasible {
                declared,
                over_budget,
                ..
            }) => {
                println!(
                    "\n{budget_kb} KB budget: infeasible ({over_budget} of {declared} over budget)"
                );
                out.push((budget_bits, Vec::new()));
            }
            Err(e) => panic!("budget sweep at {budget_kb} KB failed: {e}"),
        }
    }
    out
}

/// §VI-D: static profile-assisted classification on the traces the paper
/// calls out (SERV3, FP1, MM5). A profiling pass classifies every static
/// branch exactly; the measured pass runs BF-ISL-TAGE with that profile
/// instead of the dynamic BST. Returns `(trace, dynamic, profiled)` mean
/// MPKI triples.
///
/// The profiled predictor needs [`Classifier::Static`] plugged into
/// [`BfTage::with_classifier`] — a per-trace artifact, not a registry
/// configuration — so this experiment constructs its predictors
/// directly.
pub fn profile_assist(scale: f64) -> Vec<(String, f64, f64)> {
    banner(
        "§VI-D — Static Profile-Assisted Classification",
        "paper: profile assistance restores SERV3 (2.62 -> 2.44) and helps FP1/MM5",
    );
    let mut out = Vec::new();
    println!(
        "{}{}{}",
        cell("trace", 10),
        cell("dynamic BST", 14),
        cell("static profile", 16)
    );
    for name in ["SERV3", "FP1", "MM5"] {
        let spec = suite::find(name).expect("trace in suite");
        let (trace, _) = TraceCache::from_env().fetch(&spec, scaled_len(&spec, scale));

        let mut dynamic = bf_isl_tage(10);
        let r_dyn = simulate(&mut dynamic, &trace);

        let profile = StaticProfile::from_trace(&trace);
        let config = TageConfig::bias_free(10).expect("10 tables supported");
        let mut profiled = Isl::new(BfTage::with_classifier(
            &config,
            Classifier::Static(profile),
        ));
        let r_prof = simulate(&mut profiled, &trace);

        println!(
            "{}{}{}",
            cell(name, 10),
            cell(&format!("{:.3}", r_dyn.mpki()), 14),
            cell(&format!("{:.3}", r_prof.mpki()), 16)
        );
        out.push((name.to_owned(), r_dyn.mpki(), r_prof.mpki()));
    }
    out
}

/// Convenience: the Figure 8 predictor set run over the suite, returned
/// as per-trace results (used by the comparison example and tests).
pub fn headline_results(scale: f64) -> Vec<(String, Vec<SimResult>)> {
    let registry = bfbp::default_registry();
    let runner = SuiteRunner::generate(scale);
    let specs = [
        PredictorSpec::new("oh-snap"),
        PredictorSpec::new("isl-tage")
            .with("sc", false)
            .labeled("tage-15"),
        PredictorSpec::new("bf-neural"),
    ];
    let report = sweep(&registry, &specs, &runner, &SweepOptions::default())
        .expect("headline specs are registered");
    report.all_results()
}

/// Design-choice ablations beyond the paper's Figure 9: each row toggles
/// one implementation decision of the final BF-Neural design (positional
/// history, folded-history indexing, the loop predictor, the
/// probabilistic BST) and reports the mean MPKI delta. Returns
/// `(label, mpki)` pairs, baseline first.
pub fn design_ablations(scale: f64) -> Vec<(String, f64)> {
    banner(
        "Design ablations — BF-Neural implementation choices",
        "each row disables/replaces one mechanism of the 64 KB design",
    );
    let variants: Vec<(&str, PredictorSpec)> = vec![
        ("baseline (full design)", PredictorSpec::new("bf-neural")),
        (
            "no positional history (§III-C off)",
            PredictorSpec::new("bf-neural").with("positional", false),
        ),
        (
            "no folded history (§IV-A off)",
            PredictorSpec::new("bf-neural").with("folded-hist", false),
        ),
        (
            "no loop predictor",
            PredictorSpec::new("bf-neural").with("loop-predictor", false),
        ),
        (
            "probabilistic 3-bit BST (§IV-B1)",
            PredictorSpec::new("bf-neural").with("probabilistic-bst", true),
        ),
        (
            "shallow recency stack (depth 16)",
            PredictorSpec::new("bf-neural").with("deep-depth", 16usize),
        ),
        (
            "no recent unfiltered component (ht = 1)",
            PredictorSpec::new("bf-neural").with("recent-unfiltered", 1usize),
        ),
    ];
    let specs: Vec<PredictorSpec> = variants
        .iter()
        .map(|(label, spec)| spec.clone().labeled(label))
        .collect();
    let report = run_sweep(&specs, scale, "design-ablations");
    let mut out = Vec::new();
    let mut baseline = f64::NAN;
    for (label, _) in &variants {
        let mpki = report.mean_mpki(label);
        if baseline.is_nan() {
            baseline = mpki;
        }
        println!(
            "{}{}{}",
            cell(label, 44),
            cell(&format!("{mpki:.3}"), 10),
            cell(&format!("{:+.3}", mpki - baseline), 10)
        );
        out.push(((*label).to_owned(), mpki));
    }
    out
}

/// §IV-B1 / §VI-D: the dynamic-detection perturbation study. Branches
/// that are biased for a long stretch and then turn non-biased perturb
/// a bias-free predictor twice: they start entering the filtered
/// history (shifting what every weight/index sees), and they move from
/// cheap BST prediction to perceptron prediction. The paper argues the
/// predictor "gets enough time to recover the losses from this dynamic
/// detection" on long traces (§VI-D).
///
/// The workload: a stable deep correlation whose scene also contains
/// twelve "waker" branches, biased for the first half of the run and
/// phase-flipping afterwards. We report the consumer's misprediction
/// rate before the wake-up, just after it, and in the recovery tail,
/// for the practical BF-Neural and the idealized depth-indexed
/// Algorithm 1. Returns `(post_jump, tail_recovery)` for BF-Neural in
/// percentage points.
pub fn relearning_perturbation() -> (f64, f64) {
    banner(
        "§IV-B1 / §VI-D — Dynamic-detection perturbation and recovery",
        "wakers turn non-biased mid-run; consumer accuracy dips, then recovers",
    );
    use bfbp_core::bf_neural::IdealBfNeural;
    use bfbp_core::bst::Bst;
    use bfbp_sim::ConditionalPredictor;
    use bfbp_trace::synth::behavior::{BehaviorModel, Direction};
    use bfbp_trace::synth::builder::ProgramBuilder;
    use bfbp_trace::synth::program::Step;

    // One scene: a source, twelve wakers (biased for the first half),
    // biased filler, then a consumer correlated with the source. When
    // the wakers turn non-biased they enter the recency stack between
    // the source and the consumer, shifting every stack depth.
    let mut b = ProgramBuilder::new(77);
    let src = b.add_branch(BehaviorModel::SlowBernoulli { p_flip: 0.35 });
    let wakers: Vec<Step> = (0..12)
        .map(|_| {
            Step::Cond(b.add_branch(BehaviorModel::PhaseFlip {
                period: 120_000,
                base: Direction::Taken,
            }))
        })
        .collect();
    let filler: Vec<Step> = (0..80)
        .map(|k| {
            if k == 0 {
                Step::Cond(b.add_branch(BehaviorModel::Bias(Direction::Taken)))
            } else {
                Step::Cond(b.add_branch(BehaviorModel::Bias(Direction::NotTaken)))
            }
        })
        .collect();
    let consumer = b.add_branch(BehaviorModel::CorrelatedLastOutcome {
        src,
        invert: false,
        noise: 0.01,
    });
    let mut steps = vec![Step::Cond(src)];
    steps.extend(wakers);
    steps.extend(filler);
    steps.push(Step::Cond(consumer));
    b.add_scene(1, steps);
    let program = b.build();
    let consumer_pc = program.branches()[consumer.index()].pc();
    let trace = program.emit("relearn", 360_000, 3);

    let mut ideal = IdealBfNeural::new(12, 32, Classifier::TwoBit(Bst::new(13)));
    let mut practical = BfNeural::new(BfNeuralConfig {
        loop_predictor: false,
        ..BfNeuralConfig::budget_64kb()
    });

    // Consumer-only misprediction rates: before the wake-up (second
    // sixth), immediately after (fourth sixth), and the recovery tail
    // (sixth sixth). The wake-up happens at half = three sixths.
    let sixth = trace.len() / 6;
    let windows = [sixth..2 * sixth, 3 * sixth..4 * sixth, 5 * sixth..6 * sixth];
    let mut miss = [[0u64; 2]; 3];
    let mut execs = [0u64; 3];
    for (i, r) in trace.iter().enumerate() {
        if !r.kind.is_conditional() {
            continue;
        }
        let gi = ideal.predict(r.pc);
        let gp = practical.predict(r.pc);
        if r.pc == consumer_pc {
            if let Some(w) = windows.iter().position(|win| win.contains(&i)) {
                execs[w] += 1;
                if gp != r.taken {
                    miss[w][0] += 1;
                }
                if gi != r.taken {
                    miss[w][1] += 1;
                }
            }
        }
        ideal.update(r.pc, r.taken, r.target);
        practical.update(r.pc, r.taken, r.target);
    }
    let rate = |w: usize, p: usize| 100.0 * miss[w][p] as f64 / execs[w].max(1) as f64;
    for (p, label) in [
        (0usize, "practical BF-Neural (1-D table)"),
        (1usize, "idealized Algorithm 1 (depth-indexed)"),
    ] {
        println!(
            "  {label}: before {:.1}%  after wake-up {:.1}%  recovery tail {:.1}%",
            rate(0, p),
            rate(1, p),
            rate(2, p)
        );
    }
    let post_jump = rate(1, 0) - rate(0, 0);
    let tail_recovery = rate(1, 0) - rate(2, 0);
    println!(
        "BF-Neural dips {post_jump:+.1} points at the detection event and          recovers {tail_recovery:.1} points by the tail (§VI-D's recovery claim)"
    );
    (post_jump, tail_recovery)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: f64 = 0.02;

    #[test]
    fn fig02_reports_all_traces() {
        let v = fig02_bias(SMOKE);
        assert_eq!(v.len(), 40);
        assert!(v.iter().all(|p| (0.0..=100.0).contains(p)));
    }

    #[test]
    fn table1_close_to_paper_budget() {
        let s = table1_storage(SMOKE);
        let bytes = s.total_bytes();
        // Paper: 51,100 bytes; ours includes the full 2048-deep raw
        // history, so allow a band.
        assert!(
            (40_000..62_000).contains(&bytes),
            "BF-TAGE-10 storage {bytes} bytes"
        );
    }

    #[test]
    fn budget_frontier_respects_budgets() {
        let frontiers = budget_frontier(SMOKE);
        assert_eq!(frontiers.len(), 3);
        for (budget_bits, frontier) in &frontiers {
            // Each of the probed budgets (56/60/64 KB) admits at least
            // one bf-isl-tage configuration, and every frontier point
            // fits its budget.
            assert!(!frontier.is_empty(), "no frontier at {budget_bits} bits");
            for (params, total_bits, mpki) in frontier {
                assert!(
                    total_bits <= budget_bits,
                    "{params} ({total_bits} bits) exceeds {budget_bits}"
                );
                assert!(mpki.is_finite() && *mpki >= 0.0);
            }
        }
    }

    #[test]
    fn profile_assist_runs() {
        let v = profile_assist(SMOKE);
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|(_, d, p)| *d > 0.0 && *p > 0.0));
    }

    #[test]
    fn design_ablations_cover_all_variants() {
        let v = design_ablations(SMOKE);
        assert_eq!(v.len(), 7);
        assert!(v.iter().all(|(_, m)| *m > 0.0));
    }
}
