//! # bfbp-bench
//!
//! Shared harness utilities for the experiment binaries that regenerate
//! every table and figure of the paper's evaluation (see `DESIGN.md` §4
//! for the experiment index and `EXPERIMENTS.md` for recorded results).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cli;
pub mod experiments;

use bfbp_sim::simulate::SimResult;

/// Prints a figure/table banner.
pub fn banner(title: &str, detail: &str) {
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("{detail}");
    println!("{}", "=".repeat(78));
}

/// Formats a fixed-width left-aligned cell.
pub fn cell(text: &str, width: usize) -> String {
    format!("{text:<width$}")
}

/// Prints a per-trace MPKI table: one row per trace, one column per
/// predictor series, followed by the arithmetic-mean row the paper
/// reports.
pub fn print_mpki_table(series_names: &[&str], series: &[Vec<SimResult>]) {
    assert_eq!(series_names.len(), series.len());
    assert!(!series.is_empty());
    let n_traces = series[0].len();
    assert!(series.iter().all(|s| s.len() == n_traces));

    print!("{}", cell("trace", 10));
    for name in series_names {
        print!("{}", cell(name, 22));
    }
    println!();
    for t in 0..n_traces {
        print!("{}", cell(series[0][t].trace_name(), 10));
        for s in series {
            print!("{}", cell(&format!("{:.3}", s[t].mpki()), 22));
        }
        println!();
    }
    print!("{}", cell("Avg.", 10));
    for s in series {
        print!("{}", cell(&format!("{:.3}", bfbp_sim::mean_mpki(s)), 22));
    }
    println!();
}

/// The suite scale to use: `BFBP_TRACE_SCALE` env var, defaulting to
/// `default`.
pub fn scale(default: f64) -> f64 {
    bfbp_sim::runner::env_scale(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_pads() {
        assert_eq!(cell("ab", 5), "ab   ");
    }

    #[test]
    fn mpki_table_prints() {
        let series = vec![vec![SimResult::from_counts("T1", "p", 100, 10, 1000)]];
        print_mpki_table(&["p"], &series);
    }
}
