//! Shared command-line parsing for the experiment binaries.
//!
//! `sweep`, `run_all`, `diagnose`, `forensics`, `serve`, and `loadgen`
//! accept an overlapping set of engine-tuning flags (threads, retries,
//! timeouts, journals, observability outputs, trace-cache control).
//! [`CommonArgs`] parses them once so the binaries cannot drift apart:
//! each binary calls [`CommonArgs::try_consume`] first in its flag loop
//! and handles only its own flags when that returns `Ok(false)`. The
//! collected values are then consumed one of three ways: built straight
//! into an in-process [`SweepOptions`] ([`SweepOptions::from_cli`] via
//! the [`FromCli`] extension, the `sweep` workflow), exported as the
//! `BFBP_SWEEP_*` environment variables the per-experiment sweeps read
//! ([`CommonArgs::export_env`], the `run_all` workflow), or read field
//! by field (the serve binaries). Binaries that honor only a few of the
//! common flags call [`CommonArgs::ensure_only`] so the rest fail
//! loudly instead of being silently ignored.

use std::path::PathBuf;
use std::time::Duration;

use bfbp_sim::engine::SweepOptions;

/// Usage text for the flags [`CommonArgs::try_consume`] understands,
/// for embedding in a binary's `usage:` message.
pub const COMMON_USAGE: &str = "\
common flags:
  --threads N          worker threads (0 = all cores)
  --retries N          re-attempts per failed job
  --backoff MS         delay between retry attempts
  --timeout MS         per-job wall-clock budget
  --journal PATH       checkpoint completed jobs to a journal
  --resume PATH        restore from a journal, re-running only missing
                       or failed jobs (keeps appending to it unless
                       --journal names another file)
  --checkpoint-every N snapshot each in-flight job's full state every N
                       trace records (requires --checkpoint-dir)
  --checkpoint-dir DIR directory for mid-job bfbp-ckpt/1 snapshots; a
                       re-run pointed here resumes interrupted jobs
                       mid-trace
  --metrics            collect per-job introspection metrics and H2P
  --metrics-out PATH   ... and write the bfbp-metrics/1 document here
  --events PATH        append the bfbp-events/1 span/event journal
  --flight-recorder N  keep the last N decisions per in-flight job for
                       postmortem dumps (requires --postmortem-dir)
  --postmortem-dir DIR directory for bfbp-postmortem/1 dumps written
                       when a job fails, times out, or is killed
  --progress           draw a live job-completion line on stderr
  --trace-cache | --no-trace-cache
                       force the content-addressed trace cache on/off";

/// Handles `--trace-cache` / `--no-trace-cache` by exporting the
/// machine-wide `BFBP_TRACE_CACHE` knob every trace consumer reads;
/// returns whether `arg` was one of the two.
pub fn trace_cache_flag(arg: &str) -> bool {
    match arg {
        "--trace-cache" => std::env::set_var("BFBP_TRACE_CACHE", "1"),
        "--no-trace-cache" => std::env::set_var("BFBP_TRACE_CACHE", "0"),
        _ => return false,
    }
    true
}

/// The engine-tuning flags shared by the experiment binaries. Every
/// field is optional so a binary can distinguish "flag given" from
/// "leave the [`SweepOptions::from_env`] / built-in default alone".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommonArgs {
    /// `--threads N`.
    pub threads: Option<usize>,
    /// `--retries N` (re-attempts after the first try).
    pub retries: Option<u32>,
    /// `--backoff MS`.
    pub backoff_ms: Option<u64>,
    /// `--timeout MS`.
    pub timeout_ms: Option<u64>,
    /// `--journal PATH`.
    pub journal: Option<PathBuf>,
    /// `--resume PATH`.
    pub resume: Option<PathBuf>,
    /// `--checkpoint-every N` (mid-job snapshot cadence in records).
    pub checkpoint_every: Option<u64>,
    /// `--checkpoint-dir DIR`.
    pub checkpoint_dir: Option<PathBuf>,
    /// `--metrics` or `--metrics-out`.
    pub metrics: bool,
    /// `--metrics-out PATH` (where the binary writes the collected
    /// `bfbp-metrics/1` document; implies [`CommonArgs::metrics`]).
    pub metrics_out: Option<PathBuf>,
    /// `--events PATH` (also accepted as `--events-out`).
    pub events: Option<PathBuf>,
    /// `--flight-recorder N` (ring capacity in decisions).
    pub flight_recorder: Option<usize>,
    /// `--postmortem-dir DIR`.
    pub postmortem_dir: Option<PathBuf>,
    /// `--progress`.
    pub progress: bool,
}

impl CommonArgs {
    /// Consumes `arg` (and its value from `args`) when it is a common
    /// flag. Returns `Ok(true)` when consumed, `Ok(false)` when the
    /// binary should handle the argument itself, and `Err` with a
    /// user-facing message when a common flag's value is missing or
    /// malformed.
    pub fn try_consume(
        &mut self,
        arg: &str,
        args: &mut dyn Iterator<Item = String>,
    ) -> Result<bool, String> {
        fn value(
            args: &mut dyn Iterator<Item = String>,
            flag: &str,
            what: &str,
        ) -> Result<String, String> {
            args.next()
                .filter(|v| !v.is_empty())
                .ok_or_else(|| format!("{flag} needs {what}"))
        }
        fn number<T: std::str::FromStr>(
            args: &mut dyn Iterator<Item = String>,
            flag: &str,
            what: &str,
        ) -> Result<T, String> {
            value(args, flag, what)?
                .parse()
                .map_err(|_| format!("{flag} needs {what}"))
        }

        match arg {
            "--threads" => self.threads = Some(number(args, arg, "a thread count")?),
            "--retries" => self.retries = Some(number(args, arg, "a count")?),
            "--backoff" => self.backoff_ms = Some(number(args, arg, "milliseconds")?),
            "--timeout" => self.timeout_ms = Some(number(args, arg, "milliseconds")?),
            "--journal" => self.journal = Some(value(args, arg, "a path")?.into()),
            "--resume" => self.resume = Some(value(args, arg, "a journal path")?.into()),
            "--checkpoint-every" => {
                self.checkpoint_every = Some(number(args, arg, "a record count")?);
            }
            "--checkpoint-dir" => {
                self.checkpoint_dir = Some(value(args, arg, "a directory")?.into());
            }
            "--metrics" => self.metrics = true,
            "--metrics-out" => {
                self.metrics = true;
                self.metrics_out = Some(value(args, arg, "a path")?.into());
            }
            "--events" | "--events-out" => self.events = Some(value(args, arg, "a path")?.into()),
            "--flight-recorder" => {
                self.flight_recorder = Some(number(args, arg, "a decision count")?);
            }
            "--postmortem-dir" => {
                self.postmortem_dir = Some(value(args, arg, "a directory")?.into());
            }
            "--progress" => self.progress = true,
            other => return Ok(trace_cache_flag(other)),
        }
        Ok(true)
    }

    /// Overlays every given flag on `options` (fields left `None` keep
    /// whatever `options` already holds, e.g. from
    /// [`SweepOptions::from_env`]). `--resume` also checkpoints to the
    /// resumed journal unless `--journal` names another file.
    pub fn apply_to(&self, options: &mut SweepOptions) {
        if let Some(n) = self.threads {
            options.threads = n;
        }
        if let Some(retries) = self.retries {
            options.retry.max_attempts = retries.saturating_add(1);
        }
        if let Some(ms) = self.backoff_ms {
            options.retry.backoff = Duration::from_millis(ms);
        }
        if let Some(ms) = self.timeout_ms {
            options.timeout = Some(Duration::from_millis(ms));
        }
        if let Some(path) = &self.resume {
            options.resume_from = Some(path.clone());
            options.journal = Some(path.clone());
        }
        if let Some(path) = &self.journal {
            options.journal = Some(path.clone());
        }
        if let Some(every) = self.checkpoint_every {
            options.checkpoint_every = every;
        }
        if let Some(dir) = &self.checkpoint_dir {
            options.checkpoint_dir = Some(dir.clone());
        }
        if self.metrics {
            options.metrics = true;
        }
        if let Some(path) = &self.events {
            options.events = Some(path.clone());
        }
        if let Some(capacity) = self.flight_recorder {
            options.flight_recorder = capacity;
        }
        if let Some(dir) = &self.postmortem_dir {
            options.postmortem_dir = Some(dir.clone());
        }
        if self.progress {
            options.progress = true;
        }
    }

    /// Rejects any given flag that `supported` does not list, with the
    /// same user-facing message [`CommonArgs::export_env`] uses — for
    /// binaries that reuse the common parser but honor only a few of
    /// its flags (`diagnose`, `forensics`, `serve`, `loadgen`).
    pub fn ensure_only(&self, supported: &[&str]) -> Result<(), String> {
        let given = [
            (self.threads.is_some(), "--threads"),
            (self.retries.is_some(), "--retries"),
            (self.backoff_ms.is_some(), "--backoff"),
            (self.timeout_ms.is_some(), "--timeout"),
            (self.journal.is_some(), "--journal"),
            (self.resume.is_some(), "--resume"),
            (self.checkpoint_every.is_some(), "--checkpoint-every"),
            (self.checkpoint_dir.is_some(), "--checkpoint-dir"),
            (self.metrics, "--metrics"),
            (self.metrics_out.is_some(), "--metrics-out"),
            (self.events.is_some(), "--events"),
            (self.flight_recorder.is_some(), "--flight-recorder"),
            (self.postmortem_dir.is_some(), "--postmortem-dir"),
            (self.progress, "--progress"),
        ];
        for (was_given, flag) in given {
            if was_given && !supported.contains(&flag) {
                return Err(format!("{flag} is not supported by this binary"));
            }
        }
        Ok(())
    }

    /// Exports the given flags as the `BFBP_SWEEP_*` environment
    /// variables that configure every sweep a child experiment runs
    /// (`run_all` hardens its whole campaign this way).
    ///
    /// # Errors
    ///
    /// Flags with no environment equivalent (`--threads`, `--journal`,
    /// `--resume`, `--metrics-out`, `--progress`) are rejected rather
    /// than silently dropped.
    pub fn export_env(&self) -> Result<(), String> {
        let unsupported = [
            (self.threads.is_some(), "--threads"),
            (self.journal.is_some(), "--journal"),
            (self.resume.is_some(), "--resume"),
            (self.metrics_out.is_some(), "--metrics-out"),
            (self.progress, "--progress"),
        ];
        for (given, flag) in unsupported {
            if given {
                return Err(format!("{flag} is not supported by this binary"));
            }
        }
        if let Some(retries) = self.retries {
            std::env::set_var("BFBP_SWEEP_RETRIES", retries.to_string());
        }
        if let Some(ms) = self.backoff_ms {
            std::env::set_var("BFBP_SWEEP_BACKOFF_MS", ms.to_string());
        }
        if let Some(ms) = self.timeout_ms {
            std::env::set_var("BFBP_SWEEP_TIMEOUT_MS", ms.to_string());
        }
        if self.metrics {
            std::env::set_var("BFBP_SWEEP_METRICS", "1");
        }
        if let Some(path) = &self.events {
            std::env::set_var("BFBP_SWEEP_EVENTS", path.as_os_str());
        }
        if let Some(every) = self.checkpoint_every {
            std::env::set_var("BFBP_SWEEP_CKPT_EVERY", every.to_string());
        }
        if let Some(dir) = &self.checkpoint_dir {
            std::env::set_var("BFBP_SWEEP_CKPT_DIR", dir.as_os_str());
        }
        if let Some(capacity) = self.flight_recorder {
            std::env::set_var("BFBP_SWEEP_FLIGHT", capacity.to_string());
        }
        if let Some(dir) = &self.postmortem_dir {
            std::env::set_var("BFBP_SWEEP_FLIGHT_DIR", dir.as_os_str());
        }
        Ok(())
    }
}

/// Extension constructor so `SweepOptions::from_cli(&common)` replaces
/// the `SweepOptions::from_env()` + `common.apply_to(&mut options)`
/// pair every binary used to spell by hand: environment defaults
/// first, parsed flags overlaid.
///
/// (An extension trait because inherent impls must live in the
/// defining crate — `SweepOptions` is `bfbp_sim`'s, `CommonArgs` is
/// ours.)
pub trait FromCli {
    /// Environment defaults overlaid with the parsed common flags.
    fn from_cli(common: &CommonArgs) -> Self;
}

impl FromCli for SweepOptions {
    fn from_cli(common: &CommonArgs) -> Self {
        let mut options = SweepOptions::from_env();
        common.apply_to(&mut options);
        options
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consume_all(line: &[&str]) -> Result<(CommonArgs, Vec<String>), String> {
        let mut common = CommonArgs::default();
        let mut rest = Vec::new();
        let mut args = line.iter().map(|s| (*s).to_owned());
        while let Some(arg) = args.next() {
            if !common.try_consume(&arg, &mut args)? {
                rest.push(arg);
            }
        }
        Ok((common, rest))
    }

    #[test]
    fn consumes_common_flags_and_passes_through_the_rest() {
        let (common, rest) = consume_all(&[
            "--threads",
            "4",
            "--retries",
            "2",
            "--backoff",
            "10",
            "--timeout",
            "5000",
            "--journal",
            "j.jsonl",
            "--metrics-out",
            "m.json",
            "--events",
            "e.jsonl",
            "--progress",
            "--run",
            "night",
            "bf-tage",
        ])
        .unwrap();
        assert_eq!(common.threads, Some(4));
        assert_eq!(common.retries, Some(2));
        assert_eq!(common.backoff_ms, Some(10));
        assert_eq!(common.timeout_ms, Some(5000));
        assert_eq!(
            common.journal.as_deref(),
            Some(std::path::Path::new("j.jsonl"))
        );
        assert!(common.metrics);
        assert_eq!(
            common.metrics_out.as_deref(),
            Some(std::path::Path::new("m.json"))
        );
        assert_eq!(
            common.events.as_deref(),
            Some(std::path::Path::new("e.jsonl"))
        );
        assert!(common.progress);
        assert_eq!(rest, ["--run", "night", "bf-tage"]);
    }

    #[test]
    fn missing_or_malformed_values_are_user_facing_errors() {
        assert_eq!(
            consume_all(&["--threads"]).unwrap_err(),
            "--threads needs a thread count"
        );
        assert_eq!(
            consume_all(&["--timeout", "soon"]).unwrap_err(),
            "--timeout needs milliseconds"
        );
        assert_eq!(
            consume_all(&["--journal"]).unwrap_err(),
            "--journal needs a path"
        );
    }

    #[test]
    fn apply_to_overlays_only_given_flags() {
        let mut options = SweepOptions::default().with_threads(7);
        let (common, _) = consume_all(&["--retries", "3", "--backoff", "25"]).unwrap();
        common.apply_to(&mut options);
        assert_eq!(options.threads, 7, "untouched field must keep its value");
        assert_eq!(options.retry.max_attempts, 4);
        assert_eq!(options.retry.backoff, Duration::from_millis(25));
        assert_eq!(options.timeout, None);
        assert!(!options.metrics);
    }

    #[test]
    fn resume_checkpoints_to_the_resumed_journal_by_default() {
        let mut options = SweepOptions::default();
        let (common, _) = consume_all(&["--resume", "r.jsonl"]).unwrap();
        common.apply_to(&mut options);
        assert_eq!(
            options.resume_from.as_deref(),
            Some(std::path::Path::new("r.jsonl"))
        );
        assert_eq!(
            options.journal.as_deref(),
            Some(std::path::Path::new("r.jsonl"))
        );

        let mut options = SweepOptions::default();
        let (common, _) = consume_all(&["--resume", "r.jsonl", "--journal", "j.jsonl"]).unwrap();
        common.apply_to(&mut options);
        assert_eq!(
            options.journal.as_deref(),
            Some(std::path::Path::new("j.jsonl"))
        );
    }

    #[test]
    fn checkpoint_flags_apply_to_options() {
        let mut options = SweepOptions::default();
        let (common, rest) =
            consume_all(&["--checkpoint-every", "50000", "--checkpoint-dir", "ckpts"]).unwrap();
        assert!(rest.is_empty());
        common.apply_to(&mut options);
        assert_eq!(options.checkpoint_every, 50_000);
        assert_eq!(
            options.checkpoint_dir.as_deref(),
            Some(std::path::Path::new("ckpts"))
        );
        assert_eq!(
            consume_all(&["--checkpoint-every", "soon"]).unwrap_err(),
            "--checkpoint-every needs a record count"
        );
        assert_eq!(
            consume_all(&["--checkpoint-dir"]).unwrap_err(),
            "--checkpoint-dir needs a directory"
        );
    }

    #[test]
    fn flight_recorder_flags_apply_to_options() {
        let mut options = SweepOptions::default();
        let (common, rest) =
            consume_all(&["--flight-recorder", "256", "--postmortem-dir", "pm"]).unwrap();
        assert!(rest.is_empty());
        common.apply_to(&mut options);
        assert_eq!(options.flight_recorder, 256);
        assert_eq!(
            options.postmortem_dir.as_deref(),
            Some(std::path::Path::new("pm"))
        );
        assert_eq!(
            consume_all(&["--flight-recorder", "many"]).unwrap_err(),
            "--flight-recorder needs a decision count"
        );
        assert_eq!(
            consume_all(&["--postmortem-dir"]).unwrap_err(),
            "--postmortem-dir needs a directory"
        );
    }

    #[test]
    fn from_cli_overlays_flags_on_env_defaults() {
        let (common, _) = consume_all(&["--retries", "3", "--backoff", "25"]).unwrap();
        let options = SweepOptions::from_cli(&common);
        assert_eq!(options.retry.max_attempts, 4);
        assert_eq!(options.retry.backoff, Duration::from_millis(25));
    }

    #[test]
    fn ensure_only_rejects_unsupported_flags() {
        let (common, _) = consume_all(&["--events", "e.jsonl", "--threads", "2"]).unwrap();
        assert!(common.ensure_only(&["--events", "--threads"]).is_ok());
        assert_eq!(
            common.ensure_only(&["--events"]).unwrap_err(),
            "--threads is not supported by this binary"
        );
    }

    #[test]
    fn export_env_rejects_flags_without_env_equivalents() {
        let (common, _) = consume_all(&["--progress"]).unwrap();
        assert_eq!(
            common.export_env().unwrap_err(),
            "--progress is not supported by this binary"
        );
    }
}
