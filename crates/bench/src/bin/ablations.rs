//! Runs the design-choice ablation study (beyond the paper's Figure 9):
//! positional history, folded history, loop predictor, probabilistic
//! BST, stack depth, and the recent unfiltered component.
fn main() {
    bfbp_bench::experiments::design_ablations(bfbp_bench::scale(1.0));
}
