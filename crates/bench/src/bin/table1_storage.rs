//! Regenerates Table I (BF-TAGE 10-table storage budget) with measured
//! MPKI context on cache-served suite traces.
fn main() {
    bfbp_bench::experiments::table1_storage(bfbp_bench::scale(1.0));
}
