//! Regenerates Table I (BF-TAGE 10-table storage budget).
fn main() {
    bfbp_bench::experiments::table1_storage();
}
