//! Development diagnostic: per-PC misprediction attribution (the H2P
//! table) and predictor-introspection counters for one trace and one
//! predictor spec — rendered from the same `bfbp_sim::obs` source the
//! sweep engine exports, so the human view and `--json` never diverge.
//!
//! ```sh
//! diagnose [--json] [--top N] [--events PATH]
//!          [--trace-cache|--no-trace-cache] [TRACE [SPEC]]
//! ```
//!
//! Defaults: trace `SPEC03`, spec `isl-tage:tables=10`, top 20.
//!
//! Flags are parsed through `bfbp_bench::cli::CommonArgs`, so
//! `--trace-cache` / `--events` (also spelled `--events-out`) behave
//! exactly as in `sweep`; common flags the diagnostic cannot honor are
//! rejected, not silently ignored. `--events` appends a one-span
//! `bfbp-events/1` journal of the diagnostic run.

use std::process::ExitCode;

use bfbp_bench::cli::CommonArgs;
use bfbp_sim::obs::{job_obs_json, Event, EventJournal, JobObs};
use bfbp_sim::registry::PredictorSpec;
use bfbp_sim::simulate::Simulation;
use bfbp_trace::cache::TraceCache;
use bfbp_trace::synth::suite;

fn main() -> ExitCode {
    let mut common = CommonArgs::default();
    let mut json = false;
    let mut top = 20usize;
    let mut positional: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match common.try_consume(&arg, &mut args) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => return usage(&e),
        }
        match arg.as_str() {
            "--json" => json = true,
            "--top" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => top = n,
                None => return usage("--top needs a count"),
            },
            other if other.starts_with("--") => return usage(&format!("unknown flag {other:?}")),
            other => positional.push(other.to_owned()),
        }
    }
    if let Err(e) = common.ensure_only(&["--events"]) {
        return usage(&e);
    }
    let name = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "SPEC03".into());
    let which = positional
        .get(1)
        .cloned()
        .unwrap_or_else(|| "isl-tage:tables=10".into());

    let registry = bfbp::default_registry();
    let spec = match PredictorSpec::parse(&which) {
        Ok(s) => s,
        Err(e) => return usage(&format!("bad spec {which:?}: {e}")),
    };
    let mut predictor = match registry.build_spec(&spec) {
        Ok(p) => p,
        Err(e) => {
            eprintln!(
                "cannot build {which:?}: {e} (registered: {})",
                registry.names().join(", ")
            );
            return ExitCode::FAILURE;
        }
    };
    let Some(trace_spec) = suite::find(&name) else {
        return usage(&format!("unknown trace {name:?}"));
    };
    // Served from the machine-wide trace cache when warm; see
    // `bfbp_trace::cache` for the `BFBP_TRACE_CACHE` knob.
    let (trace, _status) = TraceCache::from_env().fetch(&trace_spec, trace_spec.default_len());

    let mut obs = JobObs::default();
    let mut observe = |pc, taken, mispredicted| obs.h2p.record(pc, taken, mispredicted);
    let (result, _) = Simulation::new(predictor.as_mut())
        .observer(&mut observe)
        .run_trace(&trace)
        .expect("never cancelled");
    obs.metrics
        .counter("sim.instructions", result.instructions());
    obs.metrics
        .counter("sim.conditional_branches", result.conditional_branches());
    obs.metrics
        .counter("sim.mispredictions", result.mispredictions());
    if let Some(introspect) = predictor.introspection() {
        introspect.introspect(&mut obs.metrics);
    }

    if let Some(path) = &common.events {
        match EventJournal::open(path) {
            Ok(journal) => journal.emit(
                Event::new("diagnose")
                    .str("trace", &name)
                    .str("spec", &which)
                    .num("conditional_branches", result.conditional_branches())
                    .num("mispredictions", result.mispredictions())
                    .float("mpki", result.mpki()),
            ),
            Err(e) => {
                eprintln!("cannot open events journal {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    if json {
        println!("{}", job_obs_json(&which, &name, Some(&obs), top));
    } else {
        println!(
            "{name} / {which}: {} cond, {} misp ({:.3} MPKI)",
            result.conditional_branches(),
            result.mispredictions(),
            result.mpki()
        );
        println!("\ntop {top} hard-to-predict branches:");
        print!("{}", obs.h2p.render_table(top));
        println!("\nintrospection:");
        print!("{}", obs.metrics.render_human());
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: diagnose [--json] [--top N] [--events PATH]\n\
        \x20               [--trace-cache|--no-trace-cache] [TRACE [SPEC]]"
    );
    ExitCode::FAILURE
}
