//! Development diagnostic: per-PC misprediction breakdown for one trace
//! and one predictor spec (e.g. `diagnose SPEC03 isl-tage:tables=10`).

use std::collections::HashMap;

use bfbp_sim::registry::PredictorSpec;
use bfbp_trace::synth::suite;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "SPEC03".into());
    let which = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "isl-tage:tables=10".into());
    let registry = bfbp::default_registry();
    let spec = PredictorSpec::parse(&which).expect("predictor spec");
    let mut p = registry.build_spec(&spec).unwrap_or_else(|e| {
        panic!(
            "cannot build {which:?}: {e} (registered: {})",
            registry.names().join(", ")
        )
    });
    let trace_spec = suite::find(&name).expect("trace name");
    let trace = trace_spec.generate();
    let mut per_pc: HashMap<u64, (u64, u64, u64)> = HashMap::new(); // (mispredicts, total, late mispredicts)
    let n = trace.len();
    for (i, r) in trace.iter().enumerate() {
        if r.kind.is_conditional() {
            let guess = p.predict(r.pc);
            let e = per_pc.entry(r.pc).or_default();
            e.1 += 1;
            if guess != r.taken {
                e.0 += 1;
                if i > n / 2 {
                    e.2 += 1;
                }
            }
            p.update(r.pc, r.taken, r.target);
        } else {
            p.track_other(r);
        }
    }
    let total_misp: u64 = per_pc.values().map(|v| v.0).sum();
    let total: u64 = per_pc.values().map(|v| v.1).sum();
    println!("{name} / {which}: {total} cond, {total_misp} misp ({:.2}%)", 100.0*total_misp as f64/total as f64);
    let mut rows: Vec<(u64, u64, u64, u64)> = per_pc.iter().map(|(pc, (m, t, l))| (*pc, *m, *t, *l)).collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1));
    println!("pc, misp, execs, rate, share, late-half-rate:");
    for (pc, m, t, l) in rows.iter().take(20) {
        println!("  {pc:#x}  {m:>6}  {t:>8}  {:>5.1}%  {:>5.1}%  late {:>5.1}%", 100.0 * *m as f64 / *t as f64, 100.0 * *m as f64 / total_misp as f64, 100.0 * *l as f64 / (*t as f64 / 2.0));
    }
}
