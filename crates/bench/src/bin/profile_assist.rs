//! Regenerates the §VI-D static-profile-assisted classification study.
fn main() {
    bfbp_bench::experiments::profile_assist(bfbp_bench::scale(1.0));
}
