//! Budget-constrained autotuner CLI: successive-halving search over a
//! predictor's registry parameters, reporting the Pareto frontier of
//! MPKI vs. storage as a deterministic `bfbp-frontier/1` document.
//!
//! ```sh
//! tune --space 'bf-isl-tage:tables=4..10,sc=true|false' \
//!      --budget-kbits 512 [--eta 2] [--rungs 3] \
//!      [--samples N] [--seed S] [--trace NAME]... \
//!      [--state PATH] [--resume] [--frontier-out PATH] \
//!      [--bench-out PATH] [common flags]
//! ```
//!
//! The space grammar is `name[:key=lo..hi[/step],key=a|b|c,...]`;
//! unknown parameter keys are rejected with the predictor's accepted
//! keys. Candidates whose storage exceeds `--budget-kbits` (kilobits,
//! 1 kbit = 1024 bits) never cost a simulated record. Each rung runs
//! as one batch on the parallel sweep engine, so `--threads`,
//! `--retries`, `--timeout`, and `--events` apply per rung; trace
//! lengths honor `BFBP_TRACE_SCALE` and the trace cache serves every
//! rung's truncated traces.
//!
//! Crash consistency: `--state PATH` journals each completed rung
//! (`bfbp-tune/1`, atomic tmp+rename + FNV-1a trailer); a killed run
//! restarted with `--resume` re-enters the exact rung it died in, and
//! the frontier it writes is byte-identical to an uninterrupted run.
//!
//! `--bench-out` additionally writes a `bfbp-bench/1` document with
//! the run's `tune_configs_per_sec` throughput for `bench_check`.

use std::path::PathBuf;
use std::process::ExitCode;

use bfbp_bench::cli::{CommonArgs, FromCli};
use bfbp_bench::{banner, scale};
use bfbp_sim::engine::{json_f64, json_string, SweepOptions};
use bfbp_sim::tune::{tune, SearchSpace, TuneOptions};
use bfbp_trace::synth::suite;

fn main() -> ExitCode {
    let registry = bfbp::default_registry();
    let mut common = CommonArgs::default();
    let mut space_text: Option<String> = None;
    let mut budget_kbits: Option<u64> = None;
    let mut eta = 2usize;
    let mut rungs = 3usize;
    let mut samples = 0usize;
    let mut seed = 0xB1A5_F7EEu64;
    let mut trace_names: Vec<String> = Vec::new();
    let mut state: Option<PathBuf> = None;
    let mut resume = false;
    let mut frontier_out = PathBuf::from("target/results/frontier.json");
    let mut bench_out: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        // Tuner flags first: the tuner's `--resume` is a boolean (the
        // state file is `--state`), unlike the common sweep flag of
        // the same name which takes a journal path.
        match arg.as_str() {
            "--space" => match args.next() {
                Some(text) => space_text = Some(text),
                None => return usage("--space needs a search-space spec"),
            },
            "--budget-kbits" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => budget_kbits = Some(n),
                _ => return usage("--budget-kbits needs a positive kilobit count"),
            },
            "--eta" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 2 => eta = n,
                _ => return usage("--eta needs an integer >= 2"),
            },
            "--rungs" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => rungs = n,
                _ => return usage("--rungs needs an integer >= 1"),
            },
            "--samples" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => samples = n,
                None => return usage("--samples needs a count (0 = full grid)"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed needs an integer"),
            },
            "--trace" => match args.next() {
                Some(name) => trace_names.push(name),
                None => return usage("--trace needs a suite trace name"),
            },
            "--state" => match args.next() {
                Some(path) => state = Some(path.into()),
                None => return usage("--state needs a path"),
            },
            "--resume" => resume = true,
            "--frontier-out" => match args.next() {
                Some(path) => frontier_out = path.into(),
                None => return usage("--frontier-out needs a path"),
            },
            "--bench-out" => match args.next() {
                Some(path) => bench_out = Some(path.into()),
                None => return usage("--bench-out needs a path"),
            },
            other => match common.try_consume(other, &mut args) {
                Ok(true) => {}
                Ok(false) => return usage(&format!("unknown argument {other:?}")),
                Err(e) => return usage(&e),
            },
        }
    }
    let Some(space_text) = space_text else {
        return usage("--space is required");
    };
    let Some(budget_kbits) = budget_kbits else {
        return usage("--budget-kbits is required");
    };
    if let Err(e) = common.ensure_only(&[
        "--threads",
        "--retries",
        "--backoff",
        "--timeout",
        "--events",
        "--metrics",
        "--progress",
    ]) {
        return usage(&e);
    }
    if resume && state.is_none() {
        return usage("--resume needs --state");
    }

    let space = match SearchSpace::parse(&space_text) {
        Ok(s) => s,
        Err(e) => return usage(&e.to_string()),
    };
    let traces = if trace_names.is_empty() {
        suite::suite()
    } else {
        let mut specs = Vec::with_capacity(trace_names.len());
        for name in &trace_names {
            match suite::find(name) {
                Some(spec) => specs.push(spec),
                None => return usage(&format!("unknown suite trace {name:?}")),
            }
        }
        specs
    };

    let budget_bits = budget_kbits * 1024;
    let mut options = TuneOptions {
        eta,
        rungs,
        samples,
        seed,
        scale: scale(1.0),
        state,
        resume,
        sweep: SweepOptions::from_cli(&common),
    };
    // Rung-level journaling is the tuner's own; keep the engine's
    // sweep journal knobs out of the per-rung batches.
    options.sweep.journal = None;
    options.sweep.resume_from = None;

    banner(
        "tune",
        &format!(
            "{} at {budget_kbits} kbits over {} trace(s), eta {eta}, {rungs} rung(s)",
            space.render(),
            traces.len()
        ),
    );
    let report = match tune(&registry, &space, budget_bits, &traces, &options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tune failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{} declared, {} feasible ({} over budget, {} rejected); {} evaluations",
        report.declared(),
        report.candidates().len(),
        report.over_budget(),
        report.declared() - report.candidates().len() - report.over_budget(),
        report.configs_evaluated()
    );
    for outcome in report.outcomes() {
        println!(
            "  rung {} (1/{} records): {} candidate(s){}",
            outcome.rung,
            outcome.divisor,
            outcome.scores.len(),
            if outcome.restored { " [restored]" } else { "" }
        );
    }
    println!("\nPareto frontier (MPKI vs. storage, budget {budget_bits} bits):");
    for point in report.frontier() {
        println!(
            "  c{:<4} {:>9.1} KB  {:>7.3} MPKI  {}",
            point.candidate,
            point.total_bits as f64 / 8192.0,
            point.mean_mpki,
            point.params.summary()
        );
    }
    if report.frontier().is_empty() {
        println!("  (empty — no candidate finished cleanly)");
    }

    if let Err(e) = report.write_frontier(&frontier_out) {
        eprintln!("cannot write frontier: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nfrontier: {}", frontier_out.display());
    let wall = report.wall().as_secs_f64();
    let configs_per_sec = report.configs_evaluated() as f64 / wall.max(1e-9);
    println!(
        "wall {:.0} ms, {:.2} configs/s, {:.0} records/s",
        wall * 1e3,
        configs_per_sec,
        report.simulated_records() as f64 / wall.max(1e-9)
    );

    if let Some(path) = bench_out {
        let doc = bench_json(&space_text, budget_bits, &report, configs_per_sec);
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("cannot write bench document: {e}");
            return ExitCode::FAILURE;
        }
        println!("bench: {}", path.display());
    }
    ExitCode::SUCCESS
}

/// A `bfbp-bench/1` document carrying the tuner's headline throughput
/// and the frontier it found, for the `bench_check` walk-back.
fn bench_json(
    space: &str,
    budget_bits: u64,
    report: &bfbp_sim::tune::TuneReport,
    configs_per_sec: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"bfbp-bench/1\",\n");
    out.push_str("  \"bench\": \"tune\",\n");
    out.push_str(&format!("  \"space\": {},\n", json_string(space)));
    out.push_str(&format!("  \"budget_bits\": {budget_bits},\n"));
    out.push_str(&format!(
        "  \"configs_evaluated\": {},\n",
        report.configs_evaluated()
    ));
    out.push_str(&format!(
        "  \"simulated_records\": {},\n",
        report.simulated_records()
    ));
    out.push_str(&format!(
        "  \"tune_configs_per_sec\": {},\n",
        json_f64(configs_per_sec)
    ));
    out.push_str("  \"frontier\": [");
    for (i, point) in report.frontier().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"params\": {}, \"total_bits\": {}, \"mean_mpki\": {}}}",
            json_string(&point.params.summary()),
            point.total_bits,
            json_f64(point.mean_mpki)
        ));
    }
    out.push_str("]\n}\n");
    out
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: tune --space SPACE --budget-kbits N [--eta N] [--rungs N]\n\
                     [--samples N] [--seed S] [--trace NAME]...\n\
                     [--state PATH] [--resume] [--frontier-out PATH]\n\
                     [--bench-out PATH] [common flags]\n\
         space: name[:key=lo..hi[/step],key=a|b|c,key=value,...]\n\
         supported common flags: --threads --retries --backoff --timeout\n\
                     --events --metrics --progress --trace-cache|--no-trace-cache\n\
         {}",
        bfbp_bench::cli::COMMON_USAGE
    );
    ExitCode::FAILURE
}
