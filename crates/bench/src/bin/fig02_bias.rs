//! Regenerates Figure 2 (biased-branch percentages per trace).
fn main() {
    bfbp_bench::experiments::fig02_bias(bfbp_bench::scale(1.0));
}
