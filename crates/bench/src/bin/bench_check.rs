//! Perf-regression gate over the committed `BENCH_*.json` baselines:
//! compares the newest benchmark document (or a freshly generated
//! `--candidate` file) against the committed history and fails when a
//! headline throughput key regressed past the noise tolerance.
//!
//! ```sh
//! bench_check                                 # newest committed vs history
//! bench_check --candidate /tmp/b7/BENCH_7.json  # fresh run vs history
//! bench_check --dir . --tolerance 0.7
//! ```
//!
//! Headline keys (`replay_records_per_sec`, `streamed_records_per_sec`,
//! `served_decisions_per_sec`, `tune_configs_per_sec`) are gated at
//! `--tolerance` (default 0.7× — single-core CI runs vary ±10–15%).
//! Different benches carry different keys (BENCH_6 measures offline
//! replay, BENCH_7 online serving, BENCH_8 autotuning), so each key is
//! compared between its two *newest carriers* — walking back through
//! the history, starting at the document under test — and a key with a
//! single carrier (or none) is reported but not gated, never silently
//! passed as vacuous. Because the walk-back is per key, committing a
//! new bench that measures something else never retires an old gate. When the document and some
//! baseline both carry a batched-vs-per-record `matrix`, each
//! predictor's *effective* rate — the better of its two modes, which
//! is what `Simulation::run` actually picks from the capability
//! descriptor's batch preference — is gated at half the headline
//! tolerance, loose enough for small-sample noise but tight enough to
//! catch a kernel that silently fell off a cliff.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use bfbp_sim::forensics::{parse_json, JsonValue};

const HEADLINE_KEYS: [&str; 4] = [
    "replay_records_per_sec",
    "streamed_records_per_sec",
    "served_decisions_per_sec",
    "tune_configs_per_sec",
];

fn main() -> ExitCode {
    let mut dir = PathBuf::from(".");
    let mut tolerance = 0.7f64;
    let mut candidate: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => match args.next() {
                Some(d) => dir = d.into(),
                None => return usage("--dir needs a directory"),
            },
            "--tolerance" => match args.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) if t > 0.0 && t <= 1.0 => tolerance = t,
                _ => return usage("--tolerance needs a factor in (0, 1]"),
            },
            "--candidate" => match args.next() {
                Some(p) => candidate = Some(p.into()),
                None => return usage("--candidate needs a file"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let mut committed = match committed_benches(&dir) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    // The document under test, plus its history: every committed bench
    // older than it, newest first, for per-key walk-back.
    let new_path = match &candidate {
        Some(fresh) => {
            if committed.is_empty() {
                eprintln!("error: no committed BENCH_*.json in {}", dir.display());
                return ExitCode::FAILURE;
            }
            fresh.clone()
        }
        None => {
            let Some((_, newest)) = committed.pop() else {
                eprintln!("error: no BENCH_*.json in {}", dir.display());
                return ExitCode::FAILURE;
            };
            if committed.is_empty() {
                eprintln!(
                    "only one BENCH_*.json in {} — nothing to compare against",
                    dir.display()
                );
                return ExitCode::SUCCESS;
            }
            newest
        }
    };
    let new_doc = match load(&new_path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: {}: {e}", new_path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut history: Vec<(PathBuf, JsonValue)> = Vec::new();
    for (_, path) in committed.into_iter().rev() {
        match load(&path) {
            Ok(doc) => history.push((path, doc)),
            Err(e) => {
                eprintln!("error: {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "bench_check: {} vs {}-document history (tolerance {tolerance:.2})",
        new_path.display(),
        history.len()
    );

    let mut failures = 0;
    let mut compared = 0u32;
    for key in HEADLINE_KEYS {
        // Walk back to the newest document carrying this key — benches
        // measure different things (replay vs serving vs tuning), so
        // the newest overall document rarely carries every key. When
        // the document under test lacks a key, the key's two newest
        // carriers are still gated against each other, so adding a new
        // bench never silently retires an old gate.
        let mut carriers = std::iter::once((&new_path, &new_doc))
            .chain(history.iter().map(|(path, doc)| (path, doc)))
            .filter_map(|(path, doc)| doc.get(key).and_then(JsonValue::as_f64).map(|v| (path, v)));
        match (carriers.next(), carriers.next()) {
            (Some((new_carrier, new)), Some((old_carrier, old))) => {
                eprintln!(
                    "  {key}: {} vs baseline {}",
                    new_carrier.display(),
                    old_carrier.display()
                );
                check(key, new, old, tolerance, &mut failures);
                compared += 1;
            }
            (Some((only, _)), None) => {
                eprintln!(
                    "  note  {key}: only {} carries it — no second carrier to gate against",
                    only.display()
                );
            }
            (None, _) => {}
        }
    }
    if compared == 0 {
        eprintln!("  note  no headline key has a baseline — nothing gated");
    }

    // Matrix gate: per-predictor effective (best-mode) rate, at half
    // the headline tolerance — 20k-record samples are noisier. Walks
    // back to the newest older document with a matrix.
    let matrix_tolerance = tolerance * 0.5;
    let new_matrix = matrix_rates(&new_doc);
    let old_matrix = history
        .iter()
        .map(|(_, doc)| matrix_rates(doc))
        .find(|rates| !rates.is_empty())
        .unwrap_or_default();
    for (name, new) in &new_matrix {
        if let Some(old) = old_matrix.get(name) {
            check(
                &format!("matrix:{name}"),
                *new,
                *old,
                matrix_tolerance,
                &mut failures,
            );
        }
    }

    if failures > 0 {
        eprintln!("bench_check: {failures} regression(s)");
        ExitCode::FAILURE
    } else {
        eprintln!("bench_check: ok");
        ExitCode::SUCCESS
    }
}

fn check(key: &str, new: f64, old: f64, tolerance: f64, failures: &mut u32) {
    if new >= tolerance * old {
        eprintln!(
            "  ok    {key}: {new:.0} vs {old:.0} ({:+.1}%)",
            pct(new, old)
        );
    } else {
        eprintln!(
            "  FAIL  {key}: {new:.0} vs {old:.0} ({:+.1}%, floor {:.0})",
            pct(new, old),
            tolerance * old
        );
        *failures += 1;
    }
}

fn pct(new: f64, old: f64) -> f64 {
    (new / old - 1.0) * 100.0
}

/// Every committed `BENCH_<n>.json` in `dir`, sorted ascending by `n`
/// (so `pop()` yields the newest).
fn committed_benches(dir: &Path) -> Result<Vec<(u64, PathBuf)>, String> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(|e| e.to_string())? {
        let path = entry.map_err(|e| e.to_string())?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(n) = name
            .strip_prefix("BENCH_")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            found.push((n, path));
        }
    }
    found.sort();
    Ok(found)
}

fn load(path: &Path) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = parse_json(&text).map_err(|e| e.to_string())?;
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some("bfbp-bench/1") => Ok(doc),
        Some(other) => Err(format!("unexpected schema {other:?}")),
        None => Err("missing \"schema\"".to_owned()),
    }
}

/// Per-predictor effective rate from a document's `matrix` array: the
/// better of batched and per-record, matching what the simulation's
/// capability-based batch routing achieves in practice.
fn matrix_rates(doc: &JsonValue) -> BTreeMap<String, f64> {
    let mut rates = BTreeMap::new();
    let Some(rows) = doc.get("matrix").and_then(JsonValue::as_arr) else {
        return rates;
    };
    for row in rows {
        let Some(name) = row.get("predictor").and_then(JsonValue::as_str) else {
            continue;
        };
        let batched = row
            .get("batched_records_per_sec")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
        let per_record = row
            .get("per_record_records_per_sec")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
        rates.insert(name.to_owned(), batched.max(per_record));
    }
    rates
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!("usage: bench_check [--dir DIR] [--tolerance F] [--candidate FILE]");
    ExitCode::FAILURE
}
