//! `bfbp-serve`: the online prediction service. Binds a TCP address,
//! restores any persisted sessions from the checkpoint directory, and
//! serves the `bfbp-wire/1` protocol until a client sends `SHUTDOWN`
//! (graceful: every live session is persisted) or the process is
//! killed (crash recovery: a restart pointed at the same
//! `--checkpoint-dir` resumes sessions from their last cadence
//! checkpoint, exactly like the sweep engine's kill-resume story).
//!
//! ```sh
//! serve [--addr HOST:PORT] [--max-conns N]
//!       [--checkpoint-every N] [--checkpoint-dir DIR] [--events PATH]
//! ```
//!
//! Defaults: `--addr 127.0.0.1:0` (ephemeral port), `--max-conns 8`.
//! The bound address is announced on stdout as `listening on ADDR` —
//! parse that line to find an ephemeral port (the verify workflow and
//! `tests/serve.rs` both do). Accepts beyond `--max-conns` are
//! load-shed with a `RETRY` error frame rather than queued.
//!
//! Flags are parsed through `bfbp_bench::cli::CommonArgs`, so
//! `--checkpoint-every` / `--checkpoint-dir` / `--events` spell and
//! behave exactly as they do in `sweep`; common flags the server
//! cannot honor are rejected, not silently ignored.

use std::process::ExitCode;

use bfbp_bench::cli::CommonArgs;
use bfbp_sim::service::{ServeOptions, Server};

fn main() -> ExitCode {
    let mut common = CommonArgs::default();
    let mut addr = "127.0.0.1:0".to_owned();
    let mut options = ServeOptions::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match common.try_consume(&arg, &mut args) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => return usage(&e),
        }
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => return usage("--addr needs HOST:PORT"),
            },
            "--max-conns" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => options.max_connections = n,
                _ => return usage("--max-conns needs a positive count"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    if let Err(e) = common.ensure_only(&["--checkpoint-every", "--checkpoint-dir", "--events"]) {
        return usage(&e);
    }
    if let Some(every) = common.checkpoint_every {
        options.checkpoint_every = every;
    }
    options.checkpoint_dir = common.checkpoint_dir.clone();
    options.events = common.events.clone();

    let server = match Server::bind(&addr, bfbp::default_registry(), options) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The machine-parseable announcement: `listening on 127.0.0.1:NNNN`.
    println!("listening on {}", server.local_addr());
    if server.restored_sessions() > 0 {
        println!("restored {} session(s)", server.restored_sessions());
    }
    match server.serve() {
        Ok(persisted) => {
            println!("shutdown: persisted {persisted} session(s)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: serve loop: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--max-conns N]\n\
        \x20            [--checkpoint-every N] [--checkpoint-dir DIR] [--events PATH]"
    );
    ExitCode::FAILURE
}
