//! Run any predictor over a trace file in the BFBT binary format —
//! the entry point for using this library on your own recorded traces.
//!
//! ```sh
//! simulate_trace <trace.bfbt> [predictor-spec]
//! ```
//!
//! The predictor spec is a registry spec: a registered name optionally
//! followed by `:key=value,...` overrides, e.g. `bf-neural` (default),
//! `isl-tage:tables=15,sc=false`, or `gshare:log-size=20,hist=18`.
//! Pass `list` to print every registered predictor.

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use bfbp_sim::registry::PredictorSpec;
use bfbp_sim::simulate::simulate_stream;
use bfbp_trace::format::TraceReader;

fn main() -> ExitCode {
    let registry = bfbp::default_registry();
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: simulate_trace <trace.bfbt> [predictor-spec]");
        eprintln!("       simulate_trace list");
        return ExitCode::FAILURE;
    };
    if path == "list" {
        for name in registry.names() {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    let which = args.next().unwrap_or_else(|| "bf-neural".to_owned());
    let spec = match PredictorSpec::parse(&which) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bad predictor spec {which:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut predictor = match registry.build_spec(&spec) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot build {which:?}: {e}");
            eprintln!("registered predictors: {}", registry.names().join(", "));
            return ExitCode::FAILURE;
        }
    };
    let file = match File::open(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let reader = match TraceReader::new(BufReader::new(file)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let name = reader.name().to_owned();
    let mut records = Vec::new();
    for r in reader {
        match r {
            Ok(rec) => records.push(rec),
            Err(e) => {
                eprintln!("trace error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let result = simulate_stream(predictor.as_mut(), &name, records);
    println!("{result}");
    println!("storage: {:.2} KiB", predictor.storage().total_kib());
    ExitCode::SUCCESS
}
