//! Run any predictor over a trace file in the BFBT binary format —
//! the entry point for using this library on your own recorded traces.
//!
//! ```sh
//! simulate_trace <trace.bfbt> [predictor]
//! ```
//!
//! Predictors: bf-neural (default), bf-isl-tage-10, isl-tage-15,
//! isl-tage-10, oh-snap, piecewise, gshare, bimodal.

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use bfbp_core::bf_neural::BfNeural;
use bfbp_core::bf_tage::bf_isl_tage;
use bfbp_predictors::bimodal::Bimodal;
use bfbp_predictors::gshare::Gshare;
use bfbp_predictors::piecewise::PiecewiseLinear;
use bfbp_predictors::snap::ScaledNeural;
use bfbp_sim::predictor::ConditionalPredictor;
use bfbp_sim::simulate::simulate_stream;
use bfbp_tage::isl::isl_tage;
use bfbp_trace::format::TraceReader;

fn make(which: &str) -> Option<Box<dyn ConditionalPredictor>> {
    Some(match which {
        "bf-neural" => Box::new(BfNeural::budget_64kb()),
        "bf-isl-tage-10" => Box::new(bf_isl_tage(10)),
        "isl-tage-15" => Box::new(isl_tage(15)),
        "isl-tage-10" => Box::new(isl_tage(10)),
        "oh-snap" => Box::new(ScaledNeural::budget_64kb()),
        "piecewise" => Box::new(PiecewiseLinear::conventional_64kb()),
        "gshare" => Box::new(Gshare::budget_64kb()),
        "bimodal" => Box::new(Bimodal::default_64kb_base()),
        _ => return None,
    })
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: simulate_trace <trace.bfbt> [predictor]");
        return ExitCode::FAILURE;
    };
    let which = args.next().unwrap_or_else(|| "bf-neural".to_owned());
    let Some(mut predictor) = make(&which) else {
        eprintln!(
            "unknown predictor {which}; try bf-neural, bf-isl-tage-10, \
             isl-tage-15, isl-tage-10, oh-snap, piecewise, gshare, bimodal"
        );
        return ExitCode::FAILURE;
    };
    let file = match File::open(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let reader = match TraceReader::new(BufReader::new(file)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let name = reader.name().to_owned();
    let mut records = Vec::new();
    for r in reader {
        match r {
            Ok(rec) => records.push(rec),
            Err(e) => {
                eprintln!("trace error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let result = simulate_stream(predictor.as_mut(), &name, records);
    println!("{result}");
    println!("storage: {:.2} KiB", predictor.storage().total_kib());
    ExitCode::SUCCESS
}
