//! Regenerates Figure 8 (OH-SNAP vs TAGE vs BF-Neural MPKI) and the
//! §VI-B 32 KB data point (pass `--budget32`).
fn main() {
    let scale = bfbp_bench::scale(1.0);
    bfbp_bench::experiments::fig08_mpki(scale);
    if std::env::args().any(|a| a == "--budget32") {
        bfbp_bench::experiments::fig08_32kb(scale);
    }
}
