//! Regenerates Figure 12 (branch-hit distribution over tagged tables).
fn main() {
    bfbp_bench::experiments::fig12_hits(bfbp_bench::scale(1.0));
}
