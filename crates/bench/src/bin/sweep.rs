//! General-purpose sweep driver: run any set of registered predictor
//! specs over the synthetic suite through the parallel engine and write
//! the machine-readable results JSON.
//!
//! ```sh
//! sweep [--threads N] [--run NAME] [--interval INSTS] <spec> [<spec>...]
//! sweep --list
//! ```
//!
//! Each `<spec>` is `[label=]name[:key=value,...]`, e.g.
//! `bf-neural`, `tage15=isl-tage:tables=15,sc=false`, or
//! `gshare:log-size=20`. Trace lengths scale with `BFBP_TRACE_SCALE`
//! (default 1.0); the JSON lands in `target/results/<run>.json` unless
//! `BFBP_RESULTS_DIR` overrides the directory.

use std::process::ExitCode;

use bfbp_bench::{banner, print_mpki_table, scale};
use bfbp_sim::engine::{sweep, SweepOptions};
use bfbp_sim::registry::PredictorSpec;
use bfbp_sim::runner::SuiteRunner;

fn main() -> ExitCode {
    let registry = bfbp::default_registry();
    let mut options = SweepOptions::default();
    let mut run = "sweep".to_owned();
    let mut specs: Vec<PredictorSpec> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                for name in registry.names() {
                    let desc = registry.describe(name).unwrap_or_default();
                    println!("{name:<18} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => options.threads = n,
                None => return usage("--threads needs a number"),
            },
            "--interval" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => options.interval_insts = n,
                None => return usage("--interval needs an instruction count"),
            },
            "--run" => match args.next() {
                Some(name) => run = name,
                None => return usage("--run needs a name"),
            },
            text => match PredictorSpec::parse(text) {
                Ok(s) => specs.push(s),
                Err(e) => return usage(&format!("bad spec {text:?}: {e}")),
            },
        }
    }
    if specs.is_empty() {
        return usage("no predictor specs given");
    }

    let scale = scale(1.0);
    banner(
        "sweep",
        &format!("{} spec(s) over the suite at scale {scale}", specs.len()),
    );
    let runner = SuiteRunner::generate(scale);
    let report = match sweep(&registry, &specs, &runner, &options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            eprintln!("registered predictors: {}", registry.names().join(", "));
            return ExitCode::FAILURE;
        }
    };

    let labeled = report.all_results();
    let labels: Vec<&str> = labeled.iter().map(|(l, _)| l.as_str()).collect();
    let series: Vec<Vec<_>> = labeled.iter().map(|(_, r)| r.clone()).collect();
    print_mpki_table(&labels, &series);
    println!(
        "\n{} jobs on {} threads: wall {:.0} ms, cpu {:.0} ms, speedup {:.2}x",
        report.jobs().len(),
        report.threads(),
        report.wall().as_secs_f64() * 1e3,
        report.cpu().as_secs_f64() * 1e3,
        report.speedup()
    );
    match report.write_json(&run) {
        Ok(path) => println!("results: {}", path.display()),
        Err(e) => {
            eprintln!("cannot write results JSON: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: sweep [--threads N] [--run NAME] [--interval INSTS] <spec> [<spec>...]\n\
                sweep --list\n\
         spec: [label=]name[:key=value,...]"
    );
    ExitCode::FAILURE
}
