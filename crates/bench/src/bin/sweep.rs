//! General-purpose sweep driver: run any set of registered predictor
//! specs over the synthetic suite (or on-disk BFBT trace files) through
//! the fault-tolerant parallel engine and write the machine-readable
//! `bfbp-sweep/2` results JSON.
//!
//! ```sh
//! sweep [--threads N] [--run NAME] [--interval INSTS]
//!       [--retries N] [--backoff MS] [--timeout MS]
//!       [--journal PATH] [--resume PATH]
//!       [--checkpoint-every N] [--checkpoint-dir DIR]
//!       [--metrics-out PATH] [--events-out PATH] [--progress]
//!       [--flight-recorder N] [--postmortem-dir DIR]
//!       [--trace-file PATH]... [--fault-plan PLAN]
//!       [--trace-cache|--no-trace-cache]
//!       <spec> [<spec>...]
//! sweep --list
//! ```
//!
//! Suite traces are served from the content-addressed trace cache
//! (`target/trace-cache/` by default), so repeated sweeps skip synthetic
//! generation entirely; `--no-trace-cache` (or `BFBP_TRACE_CACHE=0`)
//! forces regeneration and `--trace-cache` re-enables the default.
//!
//! Each `<spec>` is `[label=]name[:key=value,...]`, e.g.
//! `bf-neural`, `tage15=isl-tage:tables=15,sc=false`, or
//! `gshare:log-size=20`. Trace lengths scale with `BFBP_TRACE_SCALE`
//! (default 1.0); the JSON lands in `target/results/<run>.json` unless
//! `BFBP_RESULTS_DIR` overrides the directory.
//!
//! Observability: `--metrics-out` collects per-job predictor
//! introspection counters and the top-N hard-to-predict PC table into a
//! `bfbp-metrics/1` document (never perturbing the `bfbp-sweep/2`
//! results); `--events-out` appends a `bfbp-events/1` JSONL span/event
//! journal (sweep → job spans, retries, timeouts); `--progress` draws a
//! live job-completion line on stderr; `--flight-recorder N` keeps the
//! last N decisions per job in a ring buffer and, together with
//! `--postmortem-dir`, dumps them as a `bfbp-postmortem/1` document
//! whenever a job fails, times out, or is killed (render dumps and
//! export journals with the `forensics` binary).
//!
//! Fault tolerance: failed jobs are retried `--retries` times with
//! `--backoff` between attempts; `--timeout` bounds each job's wall
//! clock; `--journal` checkpoints completed jobs so `--resume` re-runs
//! only missing or failed ones; `--checkpoint-every`/`--checkpoint-dir`
//! additionally snapshot each in-flight job's full predictor state so a
//! killed process resumes *mid-trace* instead of restarting the job.
//! `--fault-plan` injects deterministic failures (e.g.
//! `panic@1,delay@2=50,io@3=checksum,kill@4=5000`) for drills. A run
//! with failed jobs still exits 0 and reports partial results — a spec
//! that does not build at all is the only sweep-level failure.

use std::process::ExitCode;

use bfbp_bench::cli::{CommonArgs, FromCli};
use bfbp_bench::{banner, print_mpki_table, scale};
use bfbp_sim::engine::{sweep, sweep_inputs, SweepOptions, TraceInput};
use bfbp_sim::fault::FaultPlan;
use bfbp_sim::registry::PredictorSpec;
use bfbp_sim::runner::SuiteRunner;

fn main() -> ExitCode {
    let registry = bfbp::default_registry();
    let mut common = CommonArgs::default();
    let mut run = "sweep".to_owned();
    let mut specs: Vec<PredictorSpec> = Vec::new();
    let mut trace_files: Vec<String> = Vec::new();
    let mut interval: Option<u64> = None;
    let mut fault_plan: Option<FaultPlan> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match common.try_consume(&arg, &mut args) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => return usage(&e),
        }
        match arg.as_str() {
            "--list" => {
                // Caps column: `B`atch-preferred, `C`heckpointable,
                // `I`ntrospectable, `P`rovenance (probed through the
                // consolidated capability descriptor). Storage column:
                // the default configuration's total budget in KB, so
                // tuner feasibility is visible without running anything.
                for name in registry.names() {
                    let desc = registry.describe(name).unwrap_or_default();
                    let caps = registry
                        .capabilities(name)
                        .map(|caps| caps.flags())
                        .unwrap_or_else(|_| "????".to_owned());
                    let kb = registry
                        .storage(name, &bfbp_sim::registry::Params::new())
                        .map(|s| format!("{:7.1} KB", s.total_bits() as f64 / 8192.0))
                        .unwrap_or_else(|_| "      ? KB".to_owned());
                    println!("{name:<18} {caps} {kb}  {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--interval" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => interval = Some(n),
                None => return usage("--interval needs an instruction count"),
            },
            "--run" => match args.next() {
                Some(name) => run = name,
                None => return usage("--run needs a name"),
            },
            "--fault-plan" => match args.next().map(|v| FaultPlan::parse(&v)) {
                Some(Ok(plan)) => fault_plan = Some(plan),
                Some(Err(e)) => return usage(&e.to_string()),
                None => return usage("--fault-plan needs a plan string"),
            },
            "--trace-file" => match args.next() {
                Some(path) => trace_files.push(path),
                None => return usage("--trace-file needs a path"),
            },
            text => match PredictorSpec::parse(text) {
                Ok(s) => specs.push(s),
                Err(e) => return usage(&format!("bad spec {text:?}: {e}")),
            },
        }
    }
    if specs.is_empty() {
        return usage("no predictor specs given");
    }
    // Environment knobs first, explicit flags on top.
    let mut options = SweepOptions::from_cli(&common);
    if let Some(insts) = interval {
        options.interval_insts = insts;
    }
    options.fault_plan = fault_plan;
    let metrics_out = common.metrics_out.clone();

    let result = if trace_files.is_empty() {
        let scale = scale(1.0);
        banner(
            "sweep",
            &format!("{} spec(s) over the suite at scale {scale}", specs.len()),
        );
        let runner = SuiteRunner::generate(scale);
        sweep(&registry, &specs, &runner, &options)
    } else {
        banner(
            "sweep",
            &format!(
                "{} spec(s) over {} trace file(s)",
                specs.len(),
                trace_files.len()
            ),
        );
        let inputs: Vec<TraceInput> = trace_files.iter().map(TraceInput::from_file).collect();
        for input in &inputs {
            if let TraceInput::Unavailable { name, error } = input {
                eprintln!("warning: trace {name:?} unavailable: {error}");
            }
        }
        sweep_inputs(&registry, &specs, &inputs, &options)
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            eprintln!("registered predictors: {}", registry.names().join(", "));
            return ExitCode::FAILURE;
        }
    };

    if report.is_fully_ok() {
        let labeled = report.all_results();
        let labels: Vec<&str> = labeled.iter().map(|(l, _)| l.as_str()).collect();
        let series: Vec<Vec<_>> = labeled.iter().map(|(_, r)| r.clone()).collect();
        print_mpki_table(&labels, &series);
    } else {
        // Partial results: the per-series table assumes full columns, so
        // report job statuses instead.
        println!(
            "partial results ({} of {} jobs ok):",
            report.summary().ok,
            report.jobs().len()
        );
        let traces = report.trace_names();
        for (s, info) in report.series().iter().enumerate() {
            for (t, trace) in traces.iter().enumerate() {
                let job = report.job(s, t).expect("matrix cell");
                let detail = match &job.status {
                    bfbp_sim::JobStatus::Ok(rec) => format!("mpki {:.3}", rec.result.mpki()),
                    bfbp_sim::JobStatus::Failed { error } => error.clone(),
                    _ => String::new(),
                };
                println!(
                    "  {:<12} {:<10} {:<10} {}",
                    info.label,
                    trace,
                    job.status.name(),
                    detail
                );
            }
        }
    }
    let summary = report.summary();
    println!(
        "\n{} jobs on {} threads ({} ok, {} failed, {} timed out, {} skipped{}{}): wall {:.0} ms, cpu {:.0} ms, speedup {:.2}x",
        summary.jobs,
        report.threads(),
        summary.ok,
        summary.failed,
        summary.timed_out,
        summary.skipped,
        if summary.killed > 0 {
            format!(", {} killed", summary.killed)
        } else {
            String::new()
        },
        if summary.resumed > 0 {
            format!(", {} resumed", summary.resumed)
        } else {
            String::new()
        },
        report.wall().as_secs_f64() * 1e3,
        report.cpu().as_secs_f64() * 1e3,
        report.speedup()
    );
    match report.write_json(&run) {
        Ok(path) => println!("results: {}", path.display()),
        Err(e) => {
            eprintln!("cannot write results JSON: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = metrics_out {
        match report.metrics_json() {
            Some(json) => match std::fs::write(&path, json) {
                Ok(()) => println!("metrics: {}", path.display()),
                Err(e) => {
                    eprintln!("cannot write metrics JSON: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => eprintln!("warning: no metrics collected (all jobs restored or failed)"),
        }
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: sweep [common flags] [--run NAME] [--interval INSTS]\n\
                      [--trace-file PATH]... [--fault-plan PLAN]\n\
                      <spec> [<spec>...]\n\
                sweep --list\n\
         spec: [label=]name[:key=value,...]\n\
         plan: e.g. panic@1,panic@4=1,delay@2=50,io@3=checksum,skip@5,kill@6=5000,random@42=0.1\n\
         {}",
        bfbp_bench::cli::COMMON_USAGE
    );
    ExitCode::FAILURE
}
