//! Regenerates Figure 10 (mean MPKI vs number of tagged tables).
fn main() {
    bfbp_bench::experiments::fig10_tables(bfbp_bench::scale(1.0));
}
