//! Postmortem and trace forensics: render `bfbp-postmortem/1` dumps as
//! human-readable reports and export `bfbp-events/1` journals to Chrome
//! Trace Format for `chrome://tracing` / Perfetto.
//!
//! ```sh
//! forensics --postmortem DUMP.json [DUMP.json...]
//! forensics --chrome-trace EVENTS.jsonl [--out TRACE.json]
//! forensics --chrome-trace --events EVENTS.jsonl   # same journal flag as sweep
//! ```
//!
//! Flags are parsed through `bfbp_bench::cli::CommonArgs`, so the
//! events journal can be named with the same `--events` /
//! `--events-out` flag every other binary uses (the positional path
//! still works); common flags this tool cannot honor are rejected.
//!
//! `--postmortem` prints each dump's identity (job, series, trace, how
//! it died) and the flight-recorder window oldest-first, flagging
//! mispredictions and summarising each decision's provenance
//! (component, provider table, counter/margin, alternate). The exit
//! code is non-zero when any dump fails to parse, so the smoke check in
//! the verify workflow can assert dump validity by running this binary.
//!
//! `--chrome-trace` parses the events journal (tolerating a torn final
//! line, exactly like the engine's own readers) and writes the Chrome
//! Trace JSON to `--out`, or stdout when no output path is given.

use std::path::PathBuf;
use std::process::ExitCode;

use bfbp_bench::cli::CommonArgs;
use bfbp_sim::forensics::{chrome_trace, parse_json, read_events, JsonValue};

fn main() -> ExitCode {
    let mut common = CommonArgs::default();
    let mut postmortems: Vec<PathBuf> = Vec::new();
    let mut journal: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut mode: Option<&str> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match common.try_consume(&arg, &mut args) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => return usage(&e),
        }
        match arg.as_str() {
            "--postmortem" => mode = Some("postmortem"),
            "--chrome-trace" => mode = Some("chrome-trace"),
            "--out" => match args.next() {
                Some(path) => out = Some(path.into()),
                None => return usage("--out needs a path"),
            },
            flag if flag.starts_with("--") => {
                return usage(&format!("unknown flag {flag:?}"));
            }
            path => match mode {
                Some("postmortem") => postmortems.push(path.into()),
                Some("chrome-trace") if journal.is_none() => journal = Some(path.into()),
                Some("chrome-trace") => {
                    return usage("--chrome-trace takes exactly one journal path")
                }
                _ => return usage(&format!("unexpected argument {path:?} before a mode flag")),
            },
        }
    }
    if let Err(e) = common.ensure_only(&["--events"]) {
        return usage(&e);
    }
    // `--events PATH` names the journal exactly as it does in `sweep`;
    // the positional spelling wins when both are given.
    if journal.is_none() {
        journal = common.events.clone();
    }

    match mode {
        Some("postmortem") if !postmortems.is_empty() => {
            let mut failures = 0;
            for path in &postmortems {
                if let Err(e) = render_postmortem(path) {
                    eprintln!("error: {}: {e}", path.display());
                    failures += 1;
                }
            }
            if failures > 0 {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Some("postmortem") => usage("--postmortem needs at least one dump path"),
        Some("chrome-trace") => {
            let Some(journal) = journal else {
                return usage("--chrome-trace needs an events journal path");
            };
            let events = match read_events(&journal) {
                Ok(events) => events,
                Err(e) => {
                    eprintln!("error: {}: {e}", journal.display());
                    return ExitCode::FAILURE;
                }
            };
            let doc = chrome_trace(&events);
            match &out {
                Some(path) => match std::fs::write(path, &doc) {
                    Ok(()) => {
                        eprintln!(
                            "{} events -> {} (load in chrome://tracing or Perfetto)",
                            events.len(),
                            path.display()
                        );
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("error: cannot write {}: {e}", path.display());
                        ExitCode::FAILURE
                    }
                },
                None => {
                    print!("{doc}");
                    ExitCode::SUCCESS
                }
            }
        }
        _ => usage("pick a mode: --postmortem or --chrome-trace"),
    }
}

/// Parses and prints one postmortem dump; any structural surprise is an
/// error so this binary doubles as a dump validator.
fn render_postmortem(path: &PathBuf) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = parse_json(&text).map_err(|e| e.to_string())?;
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != bfbp_sim::obs::POSTMORTEM_SCHEMA {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let str_of = |key: &str| doc.get(key).and_then(JsonValue::as_str).unwrap_or("?");
    let num_of = |key: &str| doc.get(key).and_then(JsonValue::as_u64);
    let entries = doc
        .get("entries")
        .and_then(JsonValue::as_arr)
        .ok_or("missing \"entries\" array")?;

    println!("{}", "=".repeat(78));
    println!("postmortem: {}", path.display());
    println!(
        "  job {} ({} / {}) {} — {}",
        num_of("job").unwrap_or(0),
        str_of("series"),
        str_of("trace"),
        str_of("status"),
        str_of("detail"),
    );
    println!(
        "  flight recorder: {} of {} decisions retained (capacity {})",
        entries.len(),
        num_of("recorded").unwrap_or(0),
        num_of("capacity").unwrap_or(0),
    );
    if entries.is_empty() {
        println!("  (ring empty: the job died before its first decision)");
        return Ok(());
    }
    println!(
        "  {:>12}  {:<14} {:<6} {:>5} {:>5}  provenance",
        "record", "pc", "kind", "pred", "taken"
    );
    for entry in entries {
        let index = entry
            .get("i")
            .and_then(JsonValue::as_u64)
            .ok_or("entry missing \"i\"")?;
        let pc = entry.get("pc").and_then(JsonValue::as_str).unwrap_or("?");
        let kind = entry.get("kind").and_then(JsonValue::as_str).unwrap_or("?");
        let fmt_dir = |key: &str| match entry.get(key).and_then(JsonValue::as_bool) {
            Some(true) => "T",
            Some(false) => "N",
            None => "?",
        };
        let miss = entry
            .get("mispredicted")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false);
        println!(
            "  {:>12}  {:<14} {:<6} {:>5} {:>5}  {}{}",
            index,
            pc,
            kind,
            fmt_dir("predicted"),
            fmt_dir("taken"),
            provenance_summary(entry.get("provenance")),
            if miss { "  << MISPREDICT" } else { "" },
        );
    }
    Ok(())
}

/// One-line provenance summary: `tage T7 ctr=3 alt=N hist=118`,
/// `perceptron margin=-12 hist=28`, `bst`, or `-` when absent.
fn provenance_summary(provenance: Option<&JsonValue>) -> String {
    let Some(p) = provenance.filter(|p| !matches!(p, JsonValue::Null)) else {
        return "-".to_owned();
    };
    let mut out = p
        .get("component")
        .and_then(JsonValue::as_str)
        .unwrap_or("?")
        .to_owned();
    if let Some(table) = p.get("table").and_then(JsonValue::as_u64) {
        out.push_str(&format!(" T{table}"));
    }
    if let Some(ctr) = p.get("counter").and_then(JsonValue::as_f64) {
        out.push_str(&format!(" ctr={ctr}"));
    }
    if let Some(margin) = p.get("margin").and_then(JsonValue::as_f64) {
        out.push_str(&format!(" margin={margin}"));
    }
    if let Some(alt) = p.get("alternate").and_then(JsonValue::as_bool) {
        out.push_str(if alt { " alt=T" } else { " alt=N" });
    }
    if let Some(h) = p.get("history_len").and_then(JsonValue::as_u64) {
        out.push_str(&format!(" hist={h}"));
    }
    out
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: forensics --postmortem DUMP.json [DUMP.json...]\n\
        \x20      forensics --chrome-trace EVENTS.jsonl [--out TRACE.json]"
    );
    ExitCode::FAILURE
}
