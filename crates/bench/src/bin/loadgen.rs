//! Load generator and correctness harness for `bfbp-serve`: replays
//! cached suite traces through N concurrent client connections,
//! measures served throughput, and verifies that every session's final
//! counters are byte-identical to an offline `Simulation::run` of the
//! same (spec, trace) pair — the served path must never drift from the
//! simulator it wraps.
//!
//! ```sh
//! loadgen --addr HOST:PORT [--connections N] [--batch N]
//!         [--spec SPEC] [--trace NAME]... [--records N]
//!         [--bench-out PATH] [--shutdown]
//!         [--trace-cache|--no-trace-cache]
//! ```
//!
//! Defaults: 4 connections, batch 1024, spec `bf-tage`, trace `SERV1`.
//! Traces are dealt to connections round-robin; connection `c` drives
//! session id `c+1`. Retryable failures (connection refused, torn
//! frames, `RETRY` shed replies, a served process being killed and
//! restarted) are absorbed by reconnect-with-backoff: the client
//! re-opens its session and fast-forwards its trace cursor to the
//! record count the server reports, so a mid-run `kill -9` + restart
//! converges to the same final counters as an uninterrupted run. The
//! exit code is non-zero when any session's counters disagree with the
//! offline simulation.
//!
//! `--bench-out` writes a `bfbp-bench/1` document whose headline key is
//! `served_decisions_per_sec` (conditional predictions served per
//! wall-clock second, all connections combined); `bench_check` gates
//! it against the committed baselines. `--shutdown` sends a graceful
//! `SHUTDOWN` frame after the run so the server persists its sessions
//! and exits.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use bfbp_bench::cli::CommonArgs;
use bfbp_sim::registry::PredictorSpec;
use bfbp_sim::service::{ServeClient, ServeError};
use bfbp_sim::simulate::Simulation;
use bfbp_sim::wire::SessionStats;
use bfbp_trace::cache::TraceCache;
use bfbp_trace::source::TraceChunk;
use bfbp_trace::synth::suite;

/// Total reconnect-backoff budget per connection: generous enough to
/// ride out a served process being killed and manually restarted.
const RETRY_BUDGET: Duration = Duration::from_secs(60);

fn main() -> ExitCode {
    let mut common = CommonArgs::default();
    let mut addr: Option<String> = None;
    let mut connections = 4usize;
    let mut batch = 1024usize;
    let mut spec_text = "bf-tage".to_owned();
    let mut trace_names: Vec<String> = Vec::new();
    let mut records: Option<usize> = None;
    let mut bench_out: Option<std::path::PathBuf> = None;
    let mut shutdown = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match common.try_consume(&arg, &mut args) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => return usage(&e),
        }
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = Some(a),
                None => return usage("--addr needs HOST:PORT"),
            },
            "--connections" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => connections = n,
                _ => return usage("--connections needs a positive count"),
            },
            "--batch" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => batch = n,
                _ => return usage("--batch needs a positive record count"),
            },
            "--spec" => match args.next() {
                Some(s) => spec_text = s,
                None => return usage("--spec needs a predictor spec"),
            },
            "--trace" => match args.next() {
                Some(t) => trace_names.push(t),
                None => return usage("--trace needs a suite trace name"),
            },
            "--records" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => records = Some(n),
                _ => return usage("--records needs a positive count"),
            },
            "--bench-out" => match args.next() {
                Some(p) => bench_out = Some(p.into()),
                None => return usage("--bench-out needs a path"),
            },
            "--shutdown" => shutdown = true,
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    if let Err(e) = common.ensure_only(&[]) {
        return usage(&e);
    }
    let Some(addr) = addr else {
        return usage("--addr is required (the server prints `listening on ADDR`)");
    };
    if trace_names.is_empty() {
        trace_names.push("SERV1".to_owned());
    }

    // Load each trace once and compute the offline ground truth the
    // served counters must match byte-for-byte.
    let registry = bfbp::default_registry();
    let spec = match PredictorSpec::parse(&spec_text) {
        Ok(s) => s,
        Err(e) => return usage(&format!("bad spec {spec_text:?}: {e}")),
    };
    let cache = TraceCache::from_env();
    let mut traces: Vec<(String, TraceChunk, SessionStats)> = Vec::new();
    for name in &trace_names {
        let Some(trace_spec) = suite::find(name) else {
            return usage(&format!("unknown trace {name:?}"));
        };
        let n = records.unwrap_or_else(|| trace_spec.default_len());
        let (trace, _status) = cache.fetch(&trace_spec, n);
        let mut chunk = TraceChunk::with_capacity(trace.len());
        for record in trace.records() {
            chunk.push(record);
        }
        let mut predictor = match registry.build_spec(&spec) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("cannot build {spec_text:?}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let (result, _) = Simulation::new(predictor.as_mut())
            .run_trace(&trace)
            .expect("never cancelled");
        let expected = SessionStats {
            records: trace.len() as u64,
            instructions: result.instructions(),
            conditional_branches: result.conditional_branches(),
            mispredictions: result.mispredictions(),
        };
        traces.push((name.clone(), chunk, expected));
    }

    println!(
        "loadgen: {connections} connection(s) x {spec_text} over {} (batch {batch}) -> {addr}",
        trace_names.join(", ")
    );
    let started = Instant::now();
    let outcomes: Vec<Result<SessionStats, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let (_, chunk, _) = &traces[c % traces.len()];
                let addr = addr.as_str();
                let spec_text = spec_text.as_str();
                scope.spawn(move || drive(addr, (c + 1) as u64, spec_text, chunk, batch))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("connection thread never panics"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut failures = 0u32;
    let mut total_records = 0u64;
    let mut total_decisions = 0u64;
    for (c, outcome) in outcomes.iter().enumerate() {
        let (name, _, expected) = &traces[c % traces.len()];
        match outcome {
            Ok(stats) => {
                total_records += stats.records;
                total_decisions += stats.conditional_branches;
                if stats == expected {
                    println!(
                        "  conn {c} ({name}): {} records, {} decisions, {} misp — matches offline",
                        stats.records, stats.conditional_branches, stats.mispredictions
                    );
                } else {
                    eprintln!(
                        "  conn {c} ({name}): MISMATCH served {stats:?} vs offline {expected:?}"
                    );
                    failures += 1;
                }
            }
            Err(e) => {
                eprintln!("  conn {c} ({name}): FAILED: {e}");
                failures += 1;
            }
        }
    }
    let decisions_per_sec = total_decisions as f64 / elapsed;
    let records_per_sec = total_records as f64 / elapsed;
    println!(
        "served {total_decisions} decisions ({total_records} records) in {elapsed:.2} s: \
         {decisions_per_sec:.0} decisions/sec, {records_per_sec:.0} records/sec"
    );

    if shutdown {
        match ServeClient::connect(&addr)
            .map_err(|e| e.to_string())
            .and_then(|mut c| c.shutdown_server().map_err(|e| e.to_string()))
        {
            Ok(persisted) => println!("server shutdown: persisted {persisted} session(s)"),
            Err(e) => {
                eprintln!("error: shutdown failed: {e}");
                failures += 1;
            }
        }
    }

    if let Some(path) = &bench_out {
        let bench = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("BENCH")
            .to_owned();
        let traces_json = trace_names
            .iter()
            .map(|t| format!("\"{t}\""))
            .collect::<Vec<_>>()
            .join(", ");
        let doc = format!(
            "{{\n  \"schema\": \"bfbp-bench/1\",\n  \"bench\": \"{bench}\",\n  \
             \"description\": \"online serving: {connections} loopback connections driving {spec_text} through bfbp-serve\",\n  \
             \"predictor\": \"{spec_text}\",\n  \"connections\": {connections},\n  \"batch\": {batch},\n  \
             \"traces\": [{traces_json}],\n  \"records\": {total_records},\n  \"decisions\": {total_decisions},\n  \
             \"elapsed_sec\": {elapsed:.3},\n  \"served_decisions_per_sec\": {decisions_per_sec:.0},\n  \
             \"served_records_per_sec\": {records_per_sec:.0}\n}}\n"
        );
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("bench: {}", path.display());
    }

    if failures > 0 {
        eprintln!("loadgen: {failures} failure(s)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Drives one session over one connection to completion, reconnecting
/// (and fast-forwarding to the server's record cursor) on retryable
/// failures until [`RETRY_BUDGET`] of backoff is exhausted.
fn drive(
    addr: &str,
    session: u64,
    spec: &str,
    chunk: &TraceChunk,
    batch: usize,
) -> Result<SessionStats, String> {
    let mut waited = Duration::ZERO;
    let mut backoff = Duration::from_millis(250);
    let pause = |waited: &mut Duration, backoff: &mut Duration, why: &dyn std::fmt::Display| {
        if *waited >= RETRY_BUDGET {
            return Err(format!("retry budget exhausted: {why}"));
        }
        std::thread::sleep(*backoff);
        *waited += *backoff;
        *backoff = (*backoff * 2).min(Duration::from_secs(4));
        Ok(())
    };
    loop {
        let attempt = (|| -> Result<SessionStats, ServeError> {
            let mut client = ServeClient::connect(addr).map_err(|e| ServeError::Wire(e.into()))?;
            client.hello("loadgen")?;
            let opened = client.open(session, spec)?;
            // A resumed session has already applied this many records
            // (possibly restored from a checkpoint after a crash);
            // fast-forward so nothing is double-counted.
            run_session(
                &mut client,
                session,
                chunk,
                opened.stats.records as usize,
                batch,
            )
        })();
        match attempt {
            Ok(stats) => return Ok(stats),
            Err(e) if e.is_retryable() => pause(&mut waited, &mut backoff, &e)?,
            Err(e) => return Err(e.to_string()),
        }
    }
}

/// Streams `chunk[cursor..]` through the session as maximal same-kind
/// runs capped at `batch` records — the same segmentation
/// `Simulation::run` feeds the fused kernels — then closes the session
/// and returns its final counters.
fn run_session(
    client: &mut ServeClient,
    session: u64,
    chunk: &TraceChunk,
    mut cursor: usize,
    batch: usize,
) -> Result<SessionStats, ServeError> {
    let n = chunk.len();
    let pcs = chunk.pcs();
    let targets = chunk.targets();
    let kinds = chunk.kinds();
    let takens = chunk.takens();
    let gaps = chunk.inst_gaps();
    while cursor < n {
        let conditional = kinds[cursor].is_conditional();
        let mut j = cursor + 1;
        while j < n && j - cursor < batch && kinds[j].is_conditional() == conditional {
            j += 1;
        }
        if conditional {
            client.predict_batch(
                session,
                &pcs[cursor..j],
                &targets[cursor..j],
                &gaps[cursor..j],
                &takens[cursor..j],
            )?;
        } else {
            client.outcome_batch(session, chunk, cursor, j)?;
        }
        cursor = j;
    }
    client.close_session(session)
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: loadgen --addr HOST:PORT [--connections N] [--batch N]\n\
        \x20              [--spec SPEC] [--trace NAME]... [--records N]\n\
        \x20              [--bench-out PATH] [--shutdown]\n\
        \x20              [--trace-cache|--no-trace-cache]"
    );
    ExitCode::FAILURE
}
