//! Runs every figure and table experiment in sequence — the full
//! evaluation of the paper (EXPERIMENTS.md records one such run).
//!
//! `--retries N` and `--timeout MS` harden every sweep in the campaign
//! (they export `BFBP_SWEEP_RETRIES` / `BFBP_SWEEP_TIMEOUT_MS`, which
//! the experiment driver reads per sweep), so one pathological job
//! degrades to a partial figure instead of killing the whole run.
//!
//! `--metrics` (`BFBP_SWEEP_METRICS=1`) collects per-job introspection
//! metrics and H2P tables, written as `<run>.metrics.json` beside each
//! sweep's results; `--events PATH` (`BFBP_SWEEP_EVENTS`) appends every
//! sweep's span/event journal to one shared `bfbp-events/1` JSONL file.
//!
//! `--trace-cache` / `--no-trace-cache` (`BFBP_TRACE_CACHE=1`/`0`)
//! force the content-addressed trace cache on or off; by default the
//! cache is enabled at `target/trace-cache/`, so a second full run
//! performs zero synthetic generation.
fn main() {
    let mut common = bfbp_bench::cli::CommonArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match common.try_consume(&arg, &mut args) {
            Ok(true) => {}
            Ok(false) => die(&format!("unknown argument {arg:?}")),
            Err(e) => die(&e),
        }
    }
    // This driver configures the per-experiment sweeps through the
    // environment; flags without an env equivalent are rejected here.
    if let Err(e) = common.export_env() {
        die(&e);
    }
    let scale = bfbp_bench::scale(1.0);
    bfbp_bench::experiments::fig02_bias(scale);
    bfbp_bench::experiments::fig08_mpki(scale);
    bfbp_bench::experiments::fig08_32kb(scale);
    bfbp_bench::experiments::fig09_ablation(scale);
    bfbp_bench::experiments::fig10_tables(scale);
    bfbp_bench::experiments::fig11_relative(scale);
    bfbp_bench::experiments::fig12_hits(scale);
    bfbp_bench::experiments::table1_storage(scale);
    bfbp_bench::experiments::budget_frontier(scale);
    bfbp_bench::experiments::profile_assist(scale);
    bfbp_bench::experiments::design_ablations(scale);
    bfbp_bench::experiments::relearning_perturbation();
}

fn die(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: run_all [--retries N] [--backoff MS] [--timeout MS] [--metrics] \
         [--events PATH] [--trace-cache|--no-trace-cache]"
    );
    std::process::exit(2);
}
