//! Runs every figure and table experiment in sequence — the full
//! evaluation of the paper (EXPERIMENTS.md records one such run).
fn main() {
    let scale = bfbp_bench::scale(1.0);
    bfbp_bench::experiments::fig02_bias(scale);
    bfbp_bench::experiments::fig08_mpki(scale);
    bfbp_bench::experiments::fig08_32kb(scale);
    bfbp_bench::experiments::fig09_ablation(scale);
    bfbp_bench::experiments::fig10_tables(scale);
    bfbp_bench::experiments::fig11_relative(scale);
    bfbp_bench::experiments::fig12_hits(scale);
    bfbp_bench::experiments::table1_storage();
    bfbp_bench::experiments::profile_assist(scale);
    bfbp_bench::experiments::design_ablations(scale);
    bfbp_bench::experiments::relearning_perturbation();
}
