//! Regenerates Figure 11 (relative improvement over 10-table TAGE).
fn main() {
    bfbp_bench::experiments::fig11_relative(bfbp_bench::scale(1.0));
}
