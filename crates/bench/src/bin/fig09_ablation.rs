//! Regenerates Figure 9 (contribution of individual optimizations).
fn main() {
    bfbp_bench::experiments::fig09_ablation(bfbp_bench::scale(1.0));
}
