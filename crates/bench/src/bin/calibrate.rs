//! Quick calibration: per-trace MPKI for the main predictor set at a
//! reduced scale. Development aid, not a paper figure.

use bfbp_bench::{banner, print_mpki_table, scale};
use bfbp_sim::engine::{sweep, SweepOptions};
use bfbp_sim::registry::PredictorSpec;
use bfbp_sim::runner::SuiteRunner;

fn main() {
    let scale = scale(0.2);
    banner("calibration", &format!("suite scale {scale}"));
    let registry = bfbp::default_registry();
    let runner = SuiteRunner::generate(scale);
    let labels = [
        "pwl",
        "snap",
        "tage15",
        "tage10",
        "bf-n(full)",
        "bf-n(fh)",
        "bf-n(bf)",
        "bf-tage10",
    ];
    let specs = [
        PredictorSpec::new("piecewise").labeled(labels[0]),
        PredictorSpec::new("oh-snap").labeled(labels[1]),
        PredictorSpec::new("isl-tage")
            .with("tables", 15usize)
            .labeled(labels[2]),
        PredictorSpec::new("isl-tage")
            .with("tables", 10usize)
            .labeled(labels[3]),
        PredictorSpec::new("bf-neural").labeled(labels[4]),
        PredictorSpec::new("bf-neural")
            .with("history-mode", "unfiltered")
            .labeled(labels[5]),
        PredictorSpec::new("bf-neural")
            .with("history-mode", "bias-filtered")
            .labeled(labels[6]),
        PredictorSpec::new("bf-isl-tage").labeled(labels[7]),
    ];
    let t0 = std::time::Instant::now();
    let report = sweep(&registry, &specs, &runner, &SweepOptions::default())
        .expect("calibration specs are registered");
    eprintln!(
        "{} jobs on {} threads in {:?} (speedup {:.2}x)",
        report.jobs().len(),
        report.threads(),
        t0.elapsed(),
        report.speedup()
    );
    let series: Vec<Vec<_>> = labels
        .iter()
        .map(|l| report.try_results(l).expect("label from our own spec list"))
        .collect();
    print_mpki_table(&labels, &series);
    if let Ok(path) = report.write_json("calibrate") {
        eprintln!("results: {}", path.display());
    }
}
