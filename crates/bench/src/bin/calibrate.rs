//! Quick calibration: per-trace MPKI for the main predictor set at a
//! reduced scale. Development aid, not a paper figure.

use bfbp_bench::{banner, print_mpki_table, scale};
use bfbp_core::bf_neural::{BfNeural, BfNeuralConfig};
use bfbp_core::bf_tage::bf_isl_tage;
use bfbp_predictors::piecewise::PiecewiseLinear;
use bfbp_predictors::snap::ScaledNeural;
use bfbp_sim::runner::SuiteRunner;
use bfbp_tage::isl::isl_tage;

fn main() {
    let scale = scale(0.2);
    banner("calibration", &format!("suite scale {scale}"));
    let runner = SuiteRunner::generate(scale);
    let t0 = std::time::Instant::now();
    let pwl = runner.run(|_| Box::new(PiecewiseLinear::conventional_64kb()));
    eprintln!("pwl done {:?}", t0.elapsed());
    let snap = runner.run(|_| Box::new(ScaledNeural::budget_64kb()));
    eprintln!("snap done {:?}", t0.elapsed());
    let tage15 = runner.run(|_| Box::new(isl_tage(15)));
    eprintln!("tage15 done {:?}", t0.elapsed());
    let tage10 = runner.run(|_| Box::new(isl_tage(10)));
    eprintln!("tage10 done {:?}", t0.elapsed());
    let bf = runner.run(|_| Box::new(BfNeural::budget_64kb()));
    eprintln!("bf-neural done {:?}", t0.elapsed());
    let bf2 = runner.run(|_| Box::new(BfNeural::new(BfNeuralConfig::ablation_fhist())));
    eprintln!("bf2 done {:?}", t0.elapsed());
    let bf3 = runner.run(|_| {
        Box::new(BfNeural::new(BfNeuralConfig::ablation_bias_free_ghist()))
    });
    eprintln!("bf3 done {:?}", t0.elapsed());
    let bftage10 = runner.run(|_| Box::new(bf_isl_tage(10)));
    eprintln!("bf-tage done {:?}", t0.elapsed());
    print_mpki_table(
        &["pwl", "snap", "tage15", "tage10", "bf-n(full)", "bf-n(fh)", "bf-n(bf)", "bf-tage10"],
        &[pwl, snap, tage15, tage10, bf, bf2, bf3, bftage10],
    );
}
