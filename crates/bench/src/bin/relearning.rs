//! Runs the §IV-B re-learning perturbation study (idealized Algorithm 1
//! vs the practical one-dimensional weight table).
fn main() {
    bfbp_bench::experiments::relearning_perturbation();
}
