//! Suite runner: generate (or fetch from cache) the 40-trace suite
//! once, then run many predictor configurations over it.
//!
//! Trace generation is cheap relative to prediction but not free; every
//! figure harness compares several predictors on the same traces, so the
//! runner materializes each trace a single time. Traces are held behind
//! `Arc` so the parallel [`engine`](crate::engine) can share them across
//! worker threads without copying.
//!
//! [`SuiteRunner::generate`] additionally routes every trace through the
//! machine-wide [`TraceCache`] (honouring `BFBP_TRACE_CACHE`), so across
//! processes the synthetic generator runs at most once per
//! `(spec, length)` pair. Each fetch is reported to the
//! `BFBP_SWEEP_EVENTS` journal (when set) as a `trace_cache` event, which
//! is how the test suite asserts that a warm cache performs *zero*
//! generation work.

use std::sync::Arc;

use bfbp_trace::cache::TraceCache;
use bfbp_trace::record::Trace;
use bfbp_trace::synth::suite::{self, TraceSpec};

use crate::obs::{Event, EventJournal};
use crate::predictor::ConditionalPredictor;
use crate::registry::{BuildError, PredictorRegistry, PredictorSpec};
use crate::simulate::{simulate, SimResult};

/// Holds the generated benchmark traces and runs predictors over them.
#[derive(Debug)]
pub struct SuiteRunner {
    specs: Vec<TraceSpec>,
    traces: Vec<Arc<Trace>>,
}

impl SuiteRunner {
    /// Materializes the full 40-trace suite, scaling every trace's
    /// default length by `scale` (e.g. `0.1` for a fast smoke run). A
    /// minimum of 1000 records per trace is enforced. Traces are served
    /// from the environment-configured [`TraceCache`] when possible, and
    /// cache activity is journaled to the `BFBP_SWEEP_EVENTS` path when
    /// that variable is set.
    pub fn generate(scale: f64) -> Self {
        let events = std::env::var("BFBP_SWEEP_EVENTS")
            .ok()
            .filter(|p| !p.is_empty())
            .and_then(|path| EventJournal::open(path).ok());
        Self::from_specs_cached(
            suite::suite(),
            scale,
            &TraceCache::from_env(),
            events.as_ref(),
        )
    }

    /// Generates traces for an explicit set of specs, always running the
    /// synthetic generator (no cache I/O). Prefer
    /// [`SuiteRunner::from_specs_cached`] for repeated runs.
    pub fn from_specs(specs: Vec<TraceSpec>, scale: f64) -> Self {
        Self::from_specs_cached(specs, scale, &TraceCache::disabled(), None)
    }

    /// Materializes traces for `specs`, serving each from `cache` when a
    /// valid entry exists and generating (then storing) otherwise. Every
    /// fetch emits a `trace_cache` event to `events` recording the trace
    /// name, record count, and [`CacheStatus`](bfbp_trace::CacheStatus)
    /// keyword, so journals make cache behaviour auditable.
    pub fn from_specs_cached(
        specs: Vec<TraceSpec>,
        scale: f64,
        cache: &TraceCache,
        events: Option<&EventJournal>,
    ) -> Self {
        let traces = specs
            .iter()
            .map(|spec| {
                let len = scaled_len(spec, scale);
                let (trace, status) = cache.fetch(spec, len);
                if let Some(journal) = events {
                    journal.emit(
                        Event::new("trace_cache")
                            .str("trace", spec.name())
                            .num("records", len as u64)
                            .str("status", status.name())
                            .num("generated", u64::from(status.generated())),
                    );
                }
                Arc::new(trace)
            })
            .collect();
        Self { specs, traces }
    }

    /// The specs in suite order.
    pub fn specs(&self) -> &[TraceSpec] {
        &self.specs
    }

    /// The generated traces, parallel to [`SuiteRunner::specs`]. Shared
    /// (`Arc`) so sweep workers can borrow them across threads.
    pub fn traces(&self) -> &[Arc<Trace>] {
        &self.traces
    }

    /// Runs one registry-built configuration over every trace, building a
    /// fresh predictor per trace, returning per-trace results in suite
    /// order. This is the serial, single-spec slice of
    /// [`engine::sweep`](crate::engine::sweep).
    pub fn run_spec(
        &self,
        registry: &PredictorRegistry,
        spec: &PredictorSpec,
    ) -> Result<Vec<SimResult>, BuildError> {
        // Validate once up front so an error can't surface mid-suite.
        registry.build_spec(spec)?;
        Ok(self
            .traces
            .iter()
            .map(|trace| {
                let mut predictor = registry
                    .build_spec(spec)
                    .expect("spec validated before the suite run");
                simulate(predictor.as_mut(), trace.as_ref())
            })
            .collect())
    }

    /// Runs a predictor over a single named trace; returns `None` if the
    /// name is not in the suite.
    pub fn run_one<P: ConditionalPredictor>(
        &self,
        name: &str,
        predictor: &mut P,
    ) -> Option<SimResult> {
        let idx = self.specs.iter().position(|s| s.name() == name)?;
        Some(simulate(predictor, &self.traces[idx]))
    }
}

/// The record count a spec materializes at scale `scale`: the default
/// length scaled, floored at 1000 records. This is the shared sizing rule
/// for the runner, streamed sweep inputs, and the trace cache — all three
/// must agree or cache keys diverge from sweep contents.
pub fn scaled_len(spec: &TraceSpec, scale: f64) -> usize {
    ((spec.default_len() as f64 * scale) as usize).max(1000)
}

/// Reads the `BFBP_TRACE_SCALE` environment variable as a scale factor
/// for suite generation; defaults to `default` when unset or malformed.
/// Figure harnesses use this so a quick smoke run (`BFBP_TRACE_SCALE=0.05`)
/// needs no code change.
pub fn env_scale(default: f64) -> f64 {
    env_scale_with(default, |name| std::env::var(name).ok())
}

/// [`env_scale`] with an injectable variable lookup, so tests can pin the
/// environment instead of mutating the real (process-global, racy) one.
pub fn env_scale_with<F>(default: f64, lookup: F) -> f64
where
    F: Fn(&str) -> Option<String>,
{
    lookup("BFBP_TRACE_SCALE")
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::StaticPredictor;
    use bfbp_trace::cache::CacheStatus;

    #[test]
    fn generates_all_forty_traces() {
        let runner = SuiteRunner::generate(0.01);
        assert_eq!(runner.traces().len(), 40);
        assert_eq!(runner.specs().len(), 40);
        // Scale 0.01 of 300k = 3000 records for long traces.
        assert_eq!(runner.traces()[0].len(), 3000);
        assert_eq!(runner.traces()[20].len(), 1000);
    }

    #[test]
    fn minimum_length_is_enforced() {
        let runner = SuiteRunner::from_specs(vec![suite::find("FP1").unwrap()], 1e-9);
        assert_eq!(runner.traces()[0].len(), 1000);
        assert_eq!(scaled_len(&suite::find("FP1").unwrap(), 1e-9), 1000);
    }

    #[test]
    fn cached_from_specs_matches_uncached() {
        let dir = std::env::temp_dir().join(format!("bfbp-runner-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = TraceCache::at(&dir);
        let specs = vec![suite::find("SPEC00").unwrap(), suite::find("MM2").unwrap()];
        let plain = SuiteRunner::from_specs(specs.clone(), 0.01);
        let cold = SuiteRunner::from_specs_cached(specs.clone(), 0.01, &cache, None);
        let warm = SuiteRunner::from_specs_cached(specs.clone(), 0.01, &cache, None);
        for i in 0..specs.len() {
            assert_eq!(plain.traces()[i], cold.traces()[i]);
            assert_eq!(plain.traces()[i], warm.traces()[i]);
        }
        // The warm pass is really served from disk.
        let len = scaled_len(&specs[0], 0.01);
        assert_eq!(cache.fetch(&specs[0], len).1, CacheStatus::Hit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_spec_produces_one_result_per_trace() {
        let specs = vec![suite::find("SPEC00").unwrap(), suite::find("MM2").unwrap()];
        let runner = SuiteRunner::from_specs(specs, 0.01);
        let registry = PredictorRegistry::with_builtins();
        let results = runner
            .run_spec(&registry, &PredictorSpec::new("static-taken"))
            .unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].trace_name(), "SPEC00");
        assert_eq!(results[1].trace_name(), "MM2");
        assert!(results.iter().all(|r| r.conditional_branches() > 0));
    }

    #[test]
    fn run_spec_rejects_unknown_names() {
        let runner = SuiteRunner::from_specs(vec![suite::find("MM2").unwrap()], 0.01);
        let registry = PredictorRegistry::with_builtins();
        assert!(matches!(
            runner.run_spec(&registry, &PredictorSpec::new("nope")),
            Err(BuildError::UnknownPredictor { .. })
        ));
    }

    #[test]
    fn run_one_finds_named_trace() {
        let runner = SuiteRunner::from_specs(vec![suite::find("INT3").unwrap()], 0.01);
        let mut p = StaticPredictor::always_taken();
        assert!(runner.run_one("INT3", &mut p).is_some());
        assert!(runner.run_one("INT4", &mut p).is_none());
    }

    #[test]
    fn env_scale_with_injected_lookup() {
        // Unset → default.
        assert_eq!(env_scale_with(0.5, |_| None), 0.5);
        // Set → parsed.
        assert_eq!(
            env_scale_with(0.5, |name| {
                assert_eq!(name, "BFBP_TRACE_SCALE");
                Some("0.25".to_owned())
            }),
            0.25
        );
        // Malformed or non-positive → default.
        assert_eq!(env_scale_with(0.5, |_| Some("zoom".to_owned())), 0.5);
        assert_eq!(env_scale_with(0.5, |_| Some("-1".to_owned())), 0.5);
        assert_eq!(env_scale_with(0.5, |_| Some("0".to_owned())), 0.5);
    }
}
