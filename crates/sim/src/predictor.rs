//! The predictor interface, mirroring the CBP-4 simulation contract.
//!
//! A conditional-branch predictor sees three events, in commit order:
//!
//! 1. [`ConditionalPredictor::predict`] — asked for a direction guess for
//!    a conditional branch about to be counted;
//! 2. [`ConditionalPredictor::update`] — told the resolved direction of
//!    that same branch immediately afterwards (trace-driven simulation
//!    commits in order, so there is no in-flight window);
//! 3. [`ConditionalPredictor::track_other`] — notified of non-conditional
//!    control transfers (calls, returns, jumps) so it can fold them into
//!    path history, exactly as CBP's `TrackOtherInst` does.

use std::borrow::Cow;

use bfbp_trace::record::BranchRecord;
use bfbp_trace::source::TraceChunk;

use crate::ckpt::{CodecError, Restorable, StateReader, StateWriter};
use crate::obs::PredictorIntrospect;
use crate::storage::StorageBreakdown;

/// Where a prediction came from: the forensic record a predictor can
/// expose for its most recent [`ConditionalPredictor::predict`] call.
///
/// Every field beyond `component` and `prediction` is optional because
/// the vocabulary differs per predictor family: TAGE variants report the
/// providing table, its counter, and the history length it indexes;
/// neural predictors report the perceptron margin; table predictors
/// report the counter alone. Absent fields render as `null` in
/// postmortem dumps rather than fabricated zeros.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Provenance {
    /// The component that provided the final direction (`"tage"`,
    /// `"base"`, `"loop"`, `"sc"`, `"perceptron"`, `"bst"`, `"pht"`,
    /// `"bimodal"`, `"static"`, …).
    pub component: &'static str,
    /// The providing tagged table, 1-based, when the component is a
    /// multi-table predictor (`None` for the base predictor).
    pub table: Option<u32>,
    /// The direction the predictor returned.
    pub prediction: bool,
    /// The alternate prediction that lost (TAGE altpred, the raw TAGE
    /// direction under an SC/loop override).
    pub alternate: Option<bool>,
    /// The provider's saturating counter value, when counter-based.
    pub counter: Option<i32>,
    /// The perceptron dot-product margin, when margin-based.
    pub margin: Option<i64>,
    /// The history length (in branches) the provider indexed with.
    pub history_len: Option<u32>,
}

impl Provenance {
    /// A minimal provenance: a component and its direction, everything
    /// else absent.
    pub fn of(component: &'static str, prediction: bool) -> Self {
        Self {
            component,
            prediction,
            ..Self::default()
        }
    }
}

/// The consolidated capability descriptor for a predictor: one value
/// answering every "does this predictor support X?" question the rest
/// of the system asks.
///
/// PRs 3–8 accreted four optional surfaces onto [`ConditionalPredictor`]
/// (`introspection`, `checkpointing`, `last_provenance`, `prefers_batch`),
/// and call sites probed them ad hoc (`prefers_batch()`,
/// `checkpointing().is_some()`, …). `PredictorCaps` replaces those
/// probes: the simulation loop, the checkpoint engine, the registry
/// listing, and the serve HELLO handshake all consult
/// [`ConditionalPredictor::capabilities`] instead, and the individual
/// hooks remain only as the *access paths* for each capability.
///
/// The descriptor is plain data so it can cross the wire: [`bits`] packs
/// it into one byte for the `bfbp-wire/1` HELLO/OPEN_ACK frames and
/// [`from_bits`] rejects unknown bits, keeping the encoding forward-safe.
///
/// [`bits`]: PredictorCaps::bits
/// [`from_bits`]: PredictorCaps::from_bits
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PredictorCaps {
    /// The batch kernels beat the per-record loop; the simulation and
    /// serving hot loops should route runs through
    /// [`ConditionalPredictor::predict_batch`] /
    /// [`ConditionalPredictor::update_batch`].
    pub batch_preferred: bool,
    /// [`ConditionalPredictor::checkpointing`] returns a live
    /// [`Restorable`]: mid-job snapshots and serve session persistence
    /// are available.
    pub checkpointable: bool,
    /// [`ConditionalPredictor::introspection`] exports internal
    /// counters.
    pub introspectable: bool,
    /// [`ConditionalPredictor::last_provenance`] attributes decisions,
    /// so flight-recorder entries carry non-null provenance.
    pub provenance: bool,
}

impl PredictorCaps {
    /// Bit assigned to `batch_preferred` in the wire encoding.
    pub const BATCH_PREFERRED: u8 = 1 << 0;
    /// Bit assigned to `checkpointable` in the wire encoding.
    pub const CHECKPOINTABLE: u8 = 1 << 1;
    /// Bit assigned to `introspectable` in the wire encoding.
    pub const INTROSPECTABLE: u8 = 1 << 2;
    /// Bit assigned to `provenance` in the wire encoding.
    pub const PROVENANCE: u8 = 1 << 3;

    /// Packs the descriptor into one byte (for `bfbp-wire/1` frames).
    pub fn bits(self) -> u8 {
        let mut bits = 0;
        if self.batch_preferred {
            bits |= Self::BATCH_PREFERRED;
        }
        if self.checkpointable {
            bits |= Self::CHECKPOINTABLE;
        }
        if self.introspectable {
            bits |= Self::INTROSPECTABLE;
        }
        if self.provenance {
            bits |= Self::PROVENANCE;
        }
        bits
    }

    /// Unpacks a wire byte; `None` when unknown bits are set (a peer
    /// speaking a newer protocol revision than we understand).
    pub fn from_bits(bits: u8) -> Option<Self> {
        const KNOWN: u8 = PredictorCaps::BATCH_PREFERRED
            | PredictorCaps::CHECKPOINTABLE
            | PredictorCaps::INTROSPECTABLE
            | PredictorCaps::PROVENANCE;
        if bits & !KNOWN != 0 {
            return None;
        }
        Some(Self {
            batch_preferred: bits & Self::BATCH_PREFERRED != 0,
            checkpointable: bits & Self::CHECKPOINTABLE != 0,
            introspectable: bits & Self::INTROSPECTABLE != 0,
            provenance: bits & Self::PROVENANCE != 0,
        })
    }

    /// Four-character flag string for table listings: `BCIP` with `-`
    /// for each absent capability (`B`atch, `C`heckpoint, `I`ntrospect,
    /// `P`rovenance), e.g. `-CIP` for bimodal.
    pub fn flags(self) -> String {
        let mut s = String::with_capacity(4);
        s.push(if self.batch_preferred { 'B' } else { '-' });
        s.push(if self.checkpointable { 'C' } else { '-' });
        s.push(if self.introspectable { 'I' } else { '-' });
        s.push(if self.provenance { 'P' } else { '-' });
        s
    }
}

/// A direction predictor for conditional branches.
///
/// The simulator guarantees that every `predict(pc)` is immediately
/// followed by `update(pc, taken, target)` for the same dynamic branch.
/// Implementations may therefore carry per-prediction scratch state
/// between the two calls.
///
/// `Send` is a supertrait: the serving layer hands live predictors
/// between connection-handler threads (each session is a
/// mutex-guarded predictor), and every implementation is plain owned
/// data, so the bound costs nothing.
pub trait ConditionalPredictor: Send {
    /// A short, stable, human-readable name (used in result tables).
    ///
    /// Returning `Cow` lets static configurations hand back a `&'static
    /// str` and parameterized ones a reference to a name cached at
    /// construction, so the hot simulation path never allocates here.
    fn name(&self) -> Cow<'_, str>;

    /// Predicts the direction of the conditional branch at `pc`:
    /// `true` = taken.
    fn predict(&mut self, pc: u64) -> bool;

    /// Informs the predictor of the resolved direction (and taken target)
    /// of the conditional branch at `pc`, immediately after `predict`.
    fn update(&mut self, pc: u64, taken: bool, target: u64);

    /// Notifies the predictor of a committed non-conditional control
    /// transfer. Default: ignored.
    fn track_other(&mut self, record: &BranchRecord) {
        let _ = record;
    }

    /// Predicts *and trains on* a run of consecutive conditional
    /// branches, writing the per-record misprediction flag into `miss`.
    ///
    /// Prediction `i + 1` observes the committed outcome of prediction
    /// `i` (trace-driven simulation updates immediately), so a batch
    /// entry point cannot separate the predict pass from the update
    /// pass: this method is the *fused* kernel. It must behave exactly
    /// as the default implementation — `predict(pc)` followed by
    /// `update(pc, taken, target)` per record, in order — and exists so
    /// implementations can amortize virtual dispatch and reuse scratch
    /// state across the run. The simulation hot loop calls this once per
    /// run of conditional records inside a [`TraceChunk`].
    ///
    /// All four slices cover the same records; `miss[i]` must be set to
    /// `predicted != takens[i]` for every `i`.
    ///
    /// # Panics
    ///
    /// May panic if the slice lengths differ.
    fn predict_batch(&mut self, pcs: &[u64], targets: &[u64], takens: &[bool], miss: &mut [bool]) {
        for i in 0..pcs.len() {
            let guess = self.predict(pcs[i]);
            miss[i] = guess != takens[i];
            self.update(pcs[i], takens[i], targets[i]);
        }
    }

    /// Notifies the predictor of a run `start..end` of consecutive
    /// non-conditional records inside `chunk` — the batched counterpart
    /// of [`ConditionalPredictor::track_other`]. Must behave exactly as
    /// the default implementation: one `track_other` per record, in
    /// order.
    fn update_batch(&mut self, chunk: &TraceChunk, start: usize, end: usize) {
        for i in start..end {
            self.track_other(&chunk.record(i));
        }
    }

    /// Reports the hardware storage this configuration requires.
    fn storage(&self) -> StorageBreakdown;

    /// The predictor's introspection surface, if it exports one.
    ///
    /// Default: `None` — predictors without internal counters opt out
    /// and cost nothing. Implementations typically implement
    /// [`PredictorIntrospect`] and return `Some(self)`.
    fn introspection(&self) -> Option<&dyn PredictorIntrospect> {
        None
    }

    /// Forensic attribution for the *most recent* [`predict`] call:
    /// which component provided the direction, at what confidence, and
    /// over what history.
    ///
    /// Only valid between a `predict` and the matching `update`; the
    /// flight recorder samples it exactly there. Default: `None` —
    /// predictors without attribution opt out and recorded entries carry
    /// a `null` provenance.
    ///
    /// [`predict`]: ConditionalPredictor::predict
    fn last_provenance(&self) -> Option<Provenance> {
        None
    }

    /// Whether this predictor's batch kernels actually beat the plain
    /// per-record loop.
    ///
    /// Default: `true`. Trivial predictors (statics, bimodal,
    /// piecewise-linear) whose per-record work is a handful of
    /// instructions return `false`: for them the chunk segmentation,
    /// miss-flag buffer, and separate accounting pass of the batched
    /// drive cost more than the virtual calls they save, so the
    /// simulation loop runs them through its single-pass per-record
    /// drive instead. The two drives produce byte-identical results by
    /// the [`predict_batch`] contract; this hook only picks the faster
    /// one.
    ///
    /// [`predict_batch`]: ConditionalPredictor::predict_batch
    fn prefers_batch(&self) -> bool {
        true
    }

    /// The predictor's snapshot/restore surface, if it supports
    /// mid-job checkpointing.
    ///
    /// Default: `None` — a predictor without the capability simply
    /// cannot be checkpointed, and jobs running it fall back to
    /// whole-job granularity. Implementations typically implement
    /// [`Restorable`] and return `Some(self)`; the single `&mut`
    /// accessor serves both saving (which only reads) and restoring.
    fn checkpointing(&mut self) -> Option<&mut dyn Restorable> {
        None
    }

    /// The consolidated capability descriptor: every optional surface
    /// of this predictor, answered in one probe.
    ///
    /// The default derives each flag from the corresponding hook —
    /// [`prefers_batch`], [`checkpointing`], [`introspection`],
    /// [`last_provenance`] — so implementations opt into capabilities
    /// exactly where they implement them and never answer the question
    /// twice. (Provenance implementations report their scratch state
    /// unconditionally, including before the first `predict`, so
    /// probing at construction is sound.)
    ///
    /// All capability *checks* outside this module go through this
    /// method; the individual hooks remain only as the access paths for
    /// capabilities the descriptor says are present.
    ///
    /// Takes `&mut self` because [`checkpointing`] — the single
    /// save/restore accessor — does.
    ///
    /// [`prefers_batch`]: ConditionalPredictor::prefers_batch
    /// [`checkpointing`]: ConditionalPredictor::checkpointing
    /// [`introspection`]: ConditionalPredictor::introspection
    /// [`last_provenance`]: ConditionalPredictor::last_provenance
    fn capabilities(&mut self) -> PredictorCaps {
        PredictorCaps {
            batch_preferred: self.prefers_batch(),
            checkpointable: self.checkpointing().is_some(),
            introspectable: self.introspection().is_some(),
            provenance: self.last_provenance().is_some(),
        }
    }
}

/// A trivially simple predictor: always predicts the same direction.
/// Useful as a baseline floor and in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticPredictor {
    taken: bool,
}

impl StaticPredictor {
    /// Creates a predictor that always predicts `taken`.
    pub fn new(taken: bool) -> Self {
        Self { taken }
    }

    /// Always-taken predictor.
    pub fn always_taken() -> Self {
        Self::new(true)
    }

    /// Always-not-taken predictor.
    pub fn always_not_taken() -> Self {
        Self::new(false)
    }
}

impl ConditionalPredictor for StaticPredictor {
    fn name(&self) -> Cow<'_, str> {
        Cow::Borrowed(if self.taken {
            "static-taken"
        } else {
            "static-not-taken"
        })
    }

    fn predict(&mut self, _pc: u64) -> bool {
        self.taken
    }

    fn update(&mut self, _pc: u64, _taken: bool, _target: u64) {}

    fn storage(&self) -> StorageBreakdown {
        StorageBreakdown::new()
    }

    fn last_provenance(&self) -> Option<Provenance> {
        Some(Provenance::of("static", self.taken))
    }

    fn prefers_batch(&self) -> bool {
        false
    }

    fn checkpointing(&mut self) -> Option<&mut dyn Restorable> {
        Some(self)
    }
}

impl Restorable for StaticPredictor {
    fn save_state(&self, w: &mut StateWriter) {
        // The direction is configuration, not mutable state, but writing
        // it lets `load_state` verify the checkpoint matches the build.
        w.bool(self.taken);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        if r.bool()? != self.taken {
            return Err(CodecError::Malformed("static direction mismatch"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_predictor_is_constant() {
        let mut p = StaticPredictor::always_taken();
        assert!(p.predict(0x10));
        p.update(0x10, false, 0x20);
        assert!(p.predict(0x10));
        assert_eq!(p.name(), "static-taken");

        let mut n = StaticPredictor::always_not_taken();
        assert!(!n.predict(0x10));
        assert_eq!(n.name(), "static-not-taken");
    }

    #[test]
    fn static_predictor_has_no_storage() {
        assert_eq!(StaticPredictor::always_taken().storage().total_bits(), 0);
    }

    #[test]
    fn trait_is_object_safe() {
        let mut boxed: Box<dyn ConditionalPredictor> = Box::new(StaticPredictor::always_taken());
        assert!(boxed.predict(0));
        assert_eq!(
            boxed.last_provenance(),
            Some(Provenance::of("static", true))
        );
        assert!(!boxed.prefers_batch());
    }

    #[test]
    fn capabilities_derive_from_hooks() {
        let mut s = StaticPredictor::always_taken();
        let caps = s.capabilities();
        assert!(!caps.batch_preferred);
        assert!(caps.checkpointable);
        assert!(!caps.introspectable);
        assert!(caps.provenance);
        assert_eq!(caps.flags(), "-C-P");
    }

    #[test]
    fn caps_bits_round_trip() {
        for bits in 0..16u8 {
            let caps = PredictorCaps::from_bits(bits).expect("known bits");
            assert_eq!(caps.bits(), bits);
        }
        assert_eq!(PredictorCaps::from_bits(0x10), None);
        assert_eq!(PredictorCaps::from_bits(0xff), None);
        assert_eq!(PredictorCaps::default().flags(), "----");
        let all = PredictorCaps::from_bits(0x0f).unwrap();
        assert_eq!(all.flags(), "BCIP");
    }

    #[test]
    fn provenance_defaults_are_absent() {
        let p = Provenance::of("unit", true);
        assert_eq!(p.component, "unit");
        assert!(p.prediction);
        assert_eq!(p.table, None);
        assert_eq!(p.alternate, None);
        assert_eq!(p.counter, None);
        assert_eq!(p.margin, None);
        assert_eq!(p.history_len, None);
    }
}
