//! `bfbp-serve`: the online prediction service.
//!
//! A [`Server`] owns live, registry-built predictors keyed by session
//! id and speaks the [`crate::wire`] protocol over TCP. Each session
//! carries the same accounting quartet as a `SimCheckpoint` (records,
//! instructions, conditional branches, mispredictions), so a served
//! trace is comparable field for field with an offline
//! `Simulation::run` of the same records.
//!
//! ## Serving loop
//!
//! Connections are handled by a bounded thread-per-connection pool:
//! an accepted connection beyond [`ServeOptions::max_connections`] is
//! load-shed with a typed `RETRY` error frame rather than queued, so
//! an overloaded server degrades by telling clients to back off
//! instead of stalling them. Inside a connection, `PREDICT_BATCH`
//! frames route through [`ConditionalPredictor::predict_batch`] — the
//! fused kernels the offline hot loop uses — and every buffer (frame,
//! batch SoA, miss flags, reply) is connection-local scratch reused
//! across frames, so the steady-state serving loop performs no
//! allocation.
//!
//! ## Session lifecycle and crash recovery
//!
//! `OPEN` creates a session or re-attaches to a live one (the ack
//! carries `resumed` plus current counters so the client can
//! fast-forward its trace cursor). With a checkpoint directory
//! configured, sessions are persisted into the `bfbp-ckpt/1`
//! container — at the [`ServeOptions::checkpoint_every`] record
//! cadence, on explicit `CHECKPOINT` frames, and on graceful
//! shutdown. On startup the server scans the directory and restores
//! every session it finds (quarantining corrupt files exactly like
//! the offline engine), so a SIGKILLed server comes back holding its
//! sessions at their last persisted record counts and clients replay
//! only the small uncheckpointed tail.
//!
//! [`ConditionalPredictor::predict_batch`]: crate::predictor::ConditionalPredictor::predict_batch

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use bfbp_trace::source::TraceChunk;

use crate::ckpt::{quarantine_ckpt, read_ckpt_file, write_ckpt_file, StateReader, StateWriter};
use crate::obs::{Event, EventJournal, Metrics};
use crate::predictor::{ConditionalPredictor, PredictorCaps};
use crate::registry::{PredictorRegistry, PredictorSpec};
use crate::wire::{
    decode_outcome_batch_into, decode_predict_batch_into, decode_predict_reply_into,
    encode_outcome_batch, encode_predict_batch, encode_predict_reply, CondBatch, ErrorCode, Frame,
    FrameKind, FrameReader, PredictorInfo, SessionStats, WireError, WIRE_PROTOCOL,
};

/// Knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bound on concurrently served connections; an accept beyond it
    /// is load-shed with a `RETRY` error frame.
    pub max_connections: usize,
    /// Persist each session every this many records (0 = only on
    /// explicit `CHECKPOINT` frames and graceful shutdown).
    pub checkpoint_every: u64,
    /// Where session `bfbp-ckpt/1` files live; `None` disables
    /// persistence entirely.
    pub checkpoint_dir: Option<PathBuf>,
    /// Write a `bfbp-events/1` journal of serve lifecycle events here.
    pub events: Option<PathBuf>,
    /// Server identification sent in `HELLO_ACK`.
    pub server: String,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            max_connections: 8,
            checkpoint_every: 0,
            checkpoint_dir: None,
            events: None,
            server: "bfbp-serve".to_owned(),
        }
    }
}

/// One live session: a predictor plus its accounting.
struct Session {
    /// The spec text the session was opened with; re-attach requires
    /// the identical text.
    spec: String,
    caps: PredictorCaps,
    predictor: Box<dyn ConditionalPredictor>,
    stats: SessionStats,
    /// Next record boundary to persist at (`u64::MAX` = cadence off).
    next_ckpt: u64,
}

/// Lock-free serving counters, folded into a [`Metrics`] snapshot on
/// demand.
#[derive(Debug, Default)]
struct ServeCounters {
    connections: AtomicU64,
    shed: AtomicU64,
    frames: AtomicU64,
    decisions: AtomicU64,
    outcomes: AtomicU64,
    ckpt_writes: AtomicU64,
    sessions_opened: AtomicU64,
    sessions_resumed: AtomicU64,
    sessions_closed: AtomicU64,
}

/// The session manager: owns every live predictor and the persistence
/// policy. Shared by reference across connection-handler threads.
struct SessionManager {
    registry: PredictorRegistry,
    sessions: Mutex<BTreeMap<u64, Arc<Mutex<Session>>>>,
    checkpoint_every: u64,
    checkpoint_dir: Option<PathBuf>,
    events: Option<EventJournal>,
    counters: ServeCounters,
}

/// Outcome of an `OPEN`.
struct Opened {
    caps: PredictorCaps,
    resumed: bool,
    stats: SessionStats,
}

impl SessionManager {
    fn next_ckpt_after(&self, records: u64) -> u64 {
        records
            .checked_div(self.checkpoint_every)
            .map_or(u64::MAX, |n| (n + 1) * self.checkpoint_every)
    }

    fn emit(&self, event: Event) {
        if let Some(journal) = &self.events {
            journal.emit(event);
        }
    }

    /// Opens `id` (or re-attaches to it). `Err` is a BAD_SPEC message.
    fn open(&self, id: u64, spec_text: &str) -> Result<Opened, String> {
        let mut sessions = self.sessions.lock().unwrap();
        if let Some(cell) = sessions.get(&id) {
            let session = cell.lock().unwrap();
            if session.spec != spec_text {
                return Err(format!(
                    "session {id} is live with spec {:?}, not {:?}",
                    session.spec, spec_text
                ));
            }
            self.counters
                .sessions_resumed
                .fetch_add(1, Ordering::Relaxed);
            self.emit(
                Event::new("session_attach")
                    .num("session", id)
                    .num("records", session.stats.records),
            );
            return Ok(Opened {
                caps: session.caps,
                resumed: true,
                stats: session.stats,
            });
        }
        let spec = PredictorSpec::parse(spec_text).map_err(|e| e.to_string())?;
        let mut predictor = self.registry.build_spec(&spec).map_err(|e| e.to_string())?;
        let caps = predictor.capabilities();
        let stats = SessionStats::default();
        sessions.insert(
            id,
            Arc::new(Mutex::new(Session {
                spec: spec_text.to_owned(),
                caps,
                predictor,
                stats,
                next_ckpt: self.next_ckpt_after(0),
            })),
        );
        self.counters
            .sessions_opened
            .fetch_add(1, Ordering::Relaxed);
        self.emit(
            Event::new("session_open")
                .num("session", id)
                .str("spec", spec_text),
        );
        Ok(Opened {
            caps,
            resumed: false,
            stats,
        })
    }

    fn session(&self, id: u64) -> Option<Arc<Mutex<Session>>> {
        self.sessions.lock().unwrap().get(&id).cloned()
    }

    fn ckpt_path(&self, id: u64) -> Option<PathBuf> {
        self.checkpoint_dir
            .as_ref()
            .map(|dir| dir.join(format!("session-{id}.ckpt")))
    }

    /// Persists one session into its `bfbp-ckpt/1` file. `Ok(false)`
    /// when persistence is off or the predictor is not checkpointable.
    fn persist(&self, id: u64, session: &mut Session) -> io::Result<bool> {
        let Some(path) = self.ckpt_path(id) else {
            return Ok(false);
        };
        if !session.caps.checkpointable {
            return Ok(false);
        }
        let mut state = StateWriter::new();
        session
            .predictor
            .checkpointing()
            .expect("capability descriptor said checkpointable")
            .save_state(&mut state);
        let mut w = StateWriter::new();
        w.u64(id);
        w.str(&session.spec);
        w.u64(session.stats.records);
        w.u64(session.stats.instructions);
        w.u64(session.stats.conditional_branches);
        w.u64(session.stats.mispredictions);
        w.bytes(&state.into_bytes());
        write_ckpt_file(&path, &w.into_bytes())?;
        self.counters.ckpt_writes.fetch_add(1, Ordering::Relaxed);
        self.emit(
            Event::new("session_ckpt")
                .num("session", id)
                .num("records", session.stats.records),
        );
        Ok(true)
    }

    /// Cadence persistence inside the hot loop: writes a checkpoint
    /// when the session crossed its next boundary. I/O failures are
    /// reported as events, not connection errors — the session stays
    /// servable, durability just lags.
    fn maybe_persist(&self, id: u64, session: &mut Session) {
        if session.stats.records < session.next_ckpt {
            return;
        }
        session.next_ckpt = self.next_ckpt_after(session.stats.records);
        if let Err(e) = self.persist(id, session) {
            self.emit(
                Event::new("session_ckpt_error")
                    .num("session", id)
                    .str("error", &e.to_string()),
            );
        }
    }

    /// Persists every live session (graceful shutdown); returns how
    /// many files were written.
    fn persist_all(&self) -> u64 {
        let cells: Vec<(u64, Arc<Mutex<Session>>)> = self
            .sessions
            .lock()
            .unwrap()
            .iter()
            .map(|(&id, cell)| (id, Arc::clone(cell)))
            .collect();
        let mut persisted = 0;
        for (id, cell) in cells {
            let mut session = cell.lock().unwrap();
            match self.persist(id, &mut session) {
                Ok(true) => persisted += 1,
                Ok(false) => {}
                Err(e) => self.emit(
                    Event::new("session_ckpt_error")
                        .num("session", id)
                        .str("error", &e.to_string()),
                ),
            }
        }
        persisted
    }

    /// Restores every `session-*.ckpt` in the checkpoint directory;
    /// corrupt or unbuildable files are quarantined, exactly like the
    /// offline engine's resume path. Returns how many sessions came
    /// back.
    fn restore_all(&self) -> u64 {
        let Some(dir) = self.checkpoint_dir.clone() else {
            return 0;
        };
        let Ok(entries) = std::fs::read_dir(&dir) else {
            return 0;
        };
        let mut restored = 0;
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if !name.starts_with("session-") || !name.ends_with(".ckpt") {
                continue;
            }
            match self.restore_one(&path) {
                Ok(id) => {
                    restored += 1;
                    self.emit(Event::new("session_restore").num("session", id));
                }
                Err(e) => {
                    let quarantined = quarantine_ckpt(&path);
                    self.emit(
                        Event::new("session_restore_error")
                            .str("path", &path.display().to_string())
                            .str("error", &e)
                            .str(
                                "quarantined",
                                &quarantined
                                    .map(|p| p.display().to_string())
                                    .unwrap_or_default(),
                            ),
                    );
                }
            }
        }
        restored
    }

    fn restore_one(&self, path: &std::path::Path) -> Result<u64, String> {
        let payload = read_ckpt_file(path).map_err(|e| e.to_string())?;
        let mut r = StateReader::new(&payload);
        let mut decode = || -> Result<(u64, String, SessionStats, Vec<u8>), String> {
            let id = r.u64().map_err(|e| e.to_string())?;
            let spec = r.str().map_err(|e| e.to_string())?.to_owned();
            let stats = SessionStats {
                records: r.u64().map_err(|e| e.to_string())?,
                instructions: r.u64().map_err(|e| e.to_string())?,
                conditional_branches: r.u64().map_err(|e| e.to_string())?,
                mispredictions: r.u64().map_err(|e| e.to_string())?,
            };
            let state = r.bytes().map_err(|e| e.to_string())?.to_vec();
            r.finish().map_err(|e| e.to_string())?;
            Ok((id, spec, stats, state))
        };
        let (id, spec_text, stats, state) = decode()?;
        let spec = PredictorSpec::parse(&spec_text).map_err(|e| e.to_string())?;
        let mut predictor = self.registry.build_spec(&spec).map_err(|e| e.to_string())?;
        let caps = predictor.capabilities();
        let mut reader = StateReader::new(&state);
        predictor
            .checkpointing()
            .ok_or("checkpointed predictor is not checkpointable")?
            .load_state(&mut reader)
            .map_err(|e| e.to_string())?;
        reader.finish().map_err(|e| e.to_string())?;
        self.sessions.lock().unwrap().insert(
            id,
            Arc::new(Mutex::new(Session {
                spec: spec_text,
                caps,
                predictor,
                stats,
                next_ckpt: self.next_ckpt_after(stats.records),
            })),
        );
        Ok(id)
    }

    /// Closes a session: removes it and deletes its checkpoint file.
    fn close(&self, id: u64) -> Option<SessionStats> {
        let cell = self.sessions.lock().unwrap().remove(&id)?;
        let stats = cell.lock().unwrap().stats;
        if let Some(path) = self.ckpt_path(id) {
            let _ = std::fs::remove_file(path);
        }
        self.counters
            .sessions_closed
            .fetch_add(1, Ordering::Relaxed);
        self.emit(
            Event::new("session_close")
                .num("session", id)
                .num("records", stats.records)
                .num("mispredictions", stats.mispredictions),
        );
        Some(stats)
    }

    /// Snapshot of the serving counters as a [`Metrics`] registry.
    fn metrics(&self) -> Metrics {
        let c = &self.counters;
        let mut m = Metrics::new();
        m.counter("serve_connections", c.connections.load(Ordering::Relaxed));
        m.counter("serve_shed", c.shed.load(Ordering::Relaxed));
        m.counter("serve_frames", c.frames.load(Ordering::Relaxed));
        m.counter("serve_decisions", c.decisions.load(Ordering::Relaxed));
        m.counter("serve_outcomes", c.outcomes.load(Ordering::Relaxed));
        m.counter("serve_ckpt_writes", c.ckpt_writes.load(Ordering::Relaxed));
        m.counter(
            "serve_sessions_opened",
            c.sessions_opened.load(Ordering::Relaxed),
        );
        m.counter(
            "serve_sessions_resumed",
            c.sessions_resumed.load(Ordering::Relaxed),
        );
        m.counter(
            "serve_sessions_closed",
            c.sessions_closed.load(Ordering::Relaxed),
        );
        m.gauge(
            "serve_sessions_live",
            self.sessions.lock().unwrap().len() as f64,
        );
        m
    }
}

/// Shared stop state between a [`Server`] and its [`ServerHandle`]s.
#[derive(Debug)]
struct Stop {
    shutdown: AtomicBool,
    /// SIGKILL-equivalent: stop *without* persisting sessions. Tests
    /// use this to model a hard crash in-process.
    kill: AtomicBool,
    /// Sessions already persisted by a `SHUTDOWN` frame handler (which
    /// takes the kill path so they are not persisted twice); folded
    /// into [`Server::serve`]'s return value.
    persisted: AtomicU64,
    addr: SocketAddr,
    /// Live connection streams, force-closed on shutdown so handler
    /// threads blocked in `read` wake up.
    conns: Mutex<Vec<Option<TcpStream>>>,
}

impl Stop {
    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || self.kill.load(Ordering::SeqCst)
    }

    fn trigger(&self, kill: bool) {
        if kill {
            self.kill.store(true, Ordering::SeqCst);
        } else {
            self.shutdown.store(true, Ordering::SeqCst);
        }
        // Wake the acceptor with a throwaway connection, then yank
        // every live connection out from under its blocked read.
        let _ = TcpStream::connect(self.addr);
        for slot in self.conns.lock().unwrap().iter().flatten() {
            let _ = slot.shutdown(Shutdown::Both);
        }
    }

    fn register(&self, stream: &TcpStream) -> Option<usize> {
        let clone = stream.try_clone().ok()?;
        let mut conns = self.conns.lock().unwrap();
        if let Some(idx) = conns.iter().position(Option::is_none) {
            conns[idx] = Some(clone);
            Some(idx)
        } else {
            conns.push(Some(clone));
            Some(conns.len() - 1)
        }
    }

    fn unregister(&self, idx: usize) {
        self.conns.lock().unwrap()[idx] = None;
    }
}

/// Remote control for a running [`Server`]: stop it gracefully (with
/// session persistence) or hard (without), from any thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    stop: Arc<Stop>,
}

impl ServerHandle {
    /// Graceful stop: the accept loop exits, live connections are
    /// closed, and every session is persisted before
    /// [`Server::serve`] returns.
    pub fn shutdown(&self) {
        self.stop.trigger(false);
    }

    /// Hard stop: like [`shutdown`] but *skips* persistence — the
    /// in-process equivalent of SIGKILL, so tests can assert crash
    /// recovery runs purely off cadence checkpoints.
    ///
    /// [`shutdown`]: ServerHandle::shutdown
    pub fn kill(&self) {
        self.stop.trigger(true);
    }
}

/// The TCP prediction server. See the module docs for the protocol
/// and lifecycle; construct with [`Server::bind`], run with
/// [`Server::serve`].
pub struct Server {
    listener: TcpListener,
    manager: SessionManager,
    catalogue: Vec<PredictorInfo>,
    options: ServeOptions,
    stop: Arc<Stop>,
    restored: u64,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.stop.addr)
            .field("options", &self.options)
            .field("restored", &self.restored)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), restores any
    /// persisted sessions from the checkpoint directory, and probes
    /// the registry catalogue for the HELLO handshake.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: PredictorRegistry,
        options: ServeOptions,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let events = match &options.events {
            Some(path) => Some(EventJournal::create(path)?),
            None => None,
        };
        if let Some(dir) = &options.checkpoint_dir {
            std::fs::create_dir_all(dir)?;
        }
        let catalogue = registry
            .names()
            .iter()
            .filter_map(|name| {
                registry.capabilities(name).ok().map(|caps| PredictorInfo {
                    name: (*name).to_owned(),
                    caps,
                })
            })
            .collect();
        let manager = SessionManager {
            registry,
            sessions: Mutex::new(BTreeMap::new()),
            checkpoint_every: options.checkpoint_every,
            checkpoint_dir: options.checkpoint_dir.clone(),
            events,
            counters: ServeCounters::default(),
        };
        let restored = manager.restore_all();
        manager.emit(
            Event::new("serve_start")
                .str("addr", &local.to_string())
                .num("restored", restored),
        );
        Ok(Server {
            listener,
            manager,
            catalogue,
            options,
            stop: Arc::new(Stop {
                shutdown: AtomicBool::new(false),
                kill: AtomicBool::new(false),
                persisted: AtomicU64::new(0),
                addr: local,
                conns: Mutex::new(Vec::new()),
            }),
            restored,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.stop.addr
    }

    /// Sessions restored from checkpoints at startup.
    pub fn restored_sessions(&self) -> u64 {
        self.restored
    }

    /// A clonable remote control for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: Arc::clone(&self.stop),
        }
    }

    /// Snapshot of the serving counters.
    pub fn metrics(&self) -> Metrics {
        self.manager.metrics()
    }

    /// Serves until [`ServerHandle::shutdown`] / [`ServerHandle::kill`]
    /// (or a `SHUTDOWN` frame). Returns the number of sessions
    /// persisted on the way down (0 after `kill`).
    pub fn serve(&self) -> io::Result<u64> {
        let active = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            loop {
                let (stream, _) = match self.listener.accept() {
                    Ok(accepted) => accepted,
                    Err(_) if self.stop.stopping() => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                };
                if self.stop.stopping() {
                    break;
                }
                if active.load(Ordering::SeqCst) >= self.options.max_connections {
                    self.manager.counters.shed.fetch_add(1, Ordering::Relaxed);
                    self.manager.emit(Event::new("serve_shed"));
                    shed(stream);
                    continue;
                }
                self.manager
                    .counters
                    .connections
                    .fetch_add(1, Ordering::Relaxed);
                active.fetch_add(1, Ordering::SeqCst);
                let slot = self.stop.register(&stream);
                let active = &active;
                scope.spawn(move || {
                    Connection::new(self, stream).run();
                    if let Some(idx) = slot {
                        self.stop.unregister(idx);
                    }
                    active.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Ok(())
        })?;
        let persisted = if self.stop.kill.load(Ordering::SeqCst) {
            // A SHUTDOWN frame handler already persisted (and counted)
            // everything; a real kill leaves this at zero.
            self.stop.persisted.load(Ordering::SeqCst)
        } else {
            self.manager.persist_all()
        };
        let metrics = self.manager.metrics();
        self.manager.emit(
            Event::new("serve_stop")
                .num("persisted", persisted)
                .num(
                    "decisions",
                    metrics.counter_value("serve_decisions").unwrap_or(0),
                )
                .num("frames", metrics.counter_value("serve_frames").unwrap_or(0)),
        );
        Ok(persisted)
    }
}

/// Writes the load-shed `RETRY` error frame and drops the connection.
fn shed(mut stream: TcpStream) {
    let mut out = Vec::new();
    Frame::Error {
        code: ErrorCode::Retry,
        session: 0,
        message: "server at connection capacity, retry later".to_owned(),
    }
    .encode_into(&mut out);
    let _ = stream.write_all(&out);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Per-connection state: the stream pair plus every reusable scratch
/// buffer of the serving hot loop.
struct Connection<'s> {
    server: &'s Server,
    stream: TcpStream,
    reader: FrameReader,
    /// Read side (buffered clone of `stream`).
    rd: Option<BufReader<TcpStream>>,
    out: Vec<u8>,
    batch: CondBatch,
    chunk: TraceChunk,
    miss: Vec<bool>,
}

impl<'s> Connection<'s> {
    fn new(server: &'s Server, stream: TcpStream) -> Self {
        let _ = stream.set_nodelay(true);
        let rd = stream
            .try_clone()
            .ok()
            .map(|clone| BufReader::with_capacity(64 * 1024, clone));
        Self {
            server,
            stream,
            reader: FrameReader::new(),
            rd,
            out: Vec::new(),
            batch: CondBatch::default(),
            chunk: TraceChunk::new(),
            miss: Vec::new(),
        }
    }

    /// Sends an already-encoded frame; false = connection dead.
    fn send(&mut self) -> bool {
        self.stream.write_all(&self.out).is_ok()
    }

    fn send_frame(&mut self, frame: &Frame) -> bool {
        frame.encode_into(&mut self.out);
        self.send()
    }

    fn send_error(&mut self, code: ErrorCode, session: u64, message: &str) -> bool {
        self.send_frame(&Frame::Error {
            code,
            session,
            message: message.to_owned(),
        })
    }

    fn run(mut self) {
        let Some(mut rd) = self.rd.take() else {
            return;
        };
        let manager = &self.server.manager;
        loop {
            let (kind, payload) = match self.reader.read_from(&mut rd) {
                Ok(Some(frame)) => frame,
                Ok(None) => return,
                Err(e) => {
                    // Stream-level corruption (torn frame, checksum,
                    // absurd length): the byte stream cannot be
                    // trusted any further, so drop the connection.
                    manager.emit(Event::new("conn_error").str("error", &e.to_string()));
                    return;
                }
            };
            manager.counters.frames.fetch_add(1, Ordering::Relaxed);
            let ok = match kind {
                FrameKind::PredictBatch => {
                    // Hot path: decode into scratch, drive the fused
                    // kernel, reply — no allocation past warmup.
                    let session = match decode_predict_batch_into(payload, &mut self.batch) {
                        Ok(session) => session,
                        Err(_) => {
                            self.send_error(ErrorCode::Protocol, 0, "bad PREDICT_BATCH");
                            return;
                        }
                    };
                    self.predict(session)
                }
                FrameKind::OutcomeBatch => {
                    let session = match decode_outcome_batch_into(payload, &mut self.chunk) {
                        Ok(session) => session,
                        Err(_) => {
                            self.send_error(ErrorCode::Protocol, 0, "bad OUTCOME_BATCH");
                            return;
                        }
                    };
                    self.outcome(session)
                }
                _ => {
                    let frame = match Frame::decode(kind, payload) {
                        Ok(frame) => frame,
                        Err(e) => {
                            self.send_error(ErrorCode::Protocol, 0, &e.to_string());
                            return;
                        }
                    };
                    match self.control(frame) {
                        Flow::Continue(ok) => ok,
                        Flow::Stop => return,
                    }
                }
            };
            if !ok {
                return;
            }
        }
    }

    /// Drives a decoded `PREDICT_BATCH` through the session predictor.
    fn predict(&mut self, session_id: u64) -> bool {
        let manager = &self.server.manager;
        let Some(cell) = manager.session(session_id) else {
            return self.send_error(
                ErrorCode::UnknownSession,
                session_id,
                "no such session; OPEN it first",
            );
        };
        let n = self.batch.len();
        self.miss.resize(n, false);
        {
            let mut session = cell.lock().unwrap();
            session.predictor.predict_batch(
                &self.batch.pcs,
                &self.batch.targets,
                &self.batch.takens,
                &mut self.miss,
            );
            let mut wrong = 0u64;
            for &flag in &self.miss {
                wrong += u64::from(flag);
            }
            let mut instructions = 0u64;
            for &gap in &self.batch.gaps {
                instructions += u64::from(gap) + 1;
            }
            session.stats.records += n as u64;
            session.stats.instructions += instructions;
            session.stats.conditional_branches += n as u64;
            session.stats.mispredictions += wrong;
            manager.maybe_persist(session_id, &mut session);
        }
        manager
            .counters
            .decisions
            .fetch_add(n as u64, Ordering::Relaxed);
        encode_predict_reply(session_id, &self.miss, &mut self.out);
        self.send()
    }

    /// Drives a decoded `OUTCOME_BATCH` through the session predictor.
    fn outcome(&mut self, session_id: u64) -> bool {
        let manager = &self.server.manager;
        let Some(cell) = manager.session(session_id) else {
            return self.send_error(
                ErrorCode::UnknownSession,
                session_id,
                "no such session; OPEN it first",
            );
        };
        let n = self.chunk.len();
        {
            let mut session = cell.lock().unwrap();
            session.predictor.update_batch(&self.chunk, 0, n);
            let mut instructions = 0u64;
            for &gap in self.chunk.inst_gaps() {
                instructions += u64::from(gap) + 1;
            }
            session.stats.records += n as u64;
            session.stats.instructions += instructions;
            manager.maybe_persist(session_id, &mut session);
        }
        manager
            .counters
            .outcomes
            .fetch_add(n as u64, Ordering::Relaxed);
        self.send_frame(&Frame::OutcomeAck {
            session: session_id,
        })
    }

    /// Handles every non-batched frame.
    fn control(&mut self, frame: Frame) -> Flow {
        let manager = &self.server.manager;
        match frame {
            Frame::Hello { protocol, .. } => {
                if protocol != WIRE_PROTOCOL {
                    self.send_error(
                        ErrorCode::Protocol,
                        0,
                        &format!("protocol {protocol:?}, expected {WIRE_PROTOCOL:?}"),
                    );
                    return Flow::Stop;
                }
                Flow::Continue(self.send_frame(&Frame::HelloAck {
                    protocol: WIRE_PROTOCOL.to_owned(),
                    server: self.server.options.server.clone(),
                    predictors: self.server.catalogue.clone(),
                }))
            }
            Frame::Open { session, spec } => match manager.open(session, &spec) {
                Ok(opened) => Flow::Continue(self.send_frame(&Frame::OpenAck {
                    session,
                    caps: opened.caps,
                    resumed: opened.resumed,
                    stats: opened.stats,
                })),
                Err(message) => {
                    Flow::Continue(self.send_error(ErrorCode::BadSpec, session, &message))
                }
            },
            Frame::Stats { session } => match manager.session(session) {
                Some(cell) => {
                    let stats = cell.lock().unwrap().stats;
                    Flow::Continue(self.send_frame(&Frame::StatsReply { session, stats }))
                }
                None => Flow::Continue(self.send_error(
                    ErrorCode::UnknownSession,
                    session,
                    "no such session",
                )),
            },
            Frame::Checkpoint { session } => match manager.session(session) {
                Some(cell) => {
                    let result = {
                        let mut locked = cell.lock().unwrap();
                        manager.persist(session, &mut locked)
                    };
                    match result {
                        Ok(persisted) => Flow::Continue(
                            self.send_frame(&Frame::CheckpointAck { session, persisted }),
                        ),
                        Err(e) => Flow::Continue(self.send_error(
                            ErrorCode::Internal,
                            session,
                            &e.to_string(),
                        )),
                    }
                }
                None => Flow::Continue(self.send_error(
                    ErrorCode::UnknownSession,
                    session,
                    "no such session",
                )),
            },
            Frame::Close { session } => match manager.close(session) {
                Some(stats) => Flow::Continue(self.send_frame(&Frame::CloseAck { session, stats })),
                None => Flow::Continue(self.send_error(
                    ErrorCode::UnknownSession,
                    session,
                    "no such session",
                )),
            },
            Frame::Shutdown => {
                let sessions = manager.persist_all();
                self.send_frame(&Frame::ShutdownAck { sessions });
                // Sessions are already on disk; take the hard-stop
                // path so they are not persisted twice, but credit the
                // count so `serve()` still reports it.
                self.server.stop.persisted.store(sessions, Ordering::SeqCst);
                self.server.stop.trigger(true);
                Flow::Stop
            }
            _ => {
                self.send_error(
                    ErrorCode::Protocol,
                    0,
                    &format!("unexpected {:?} frame from a client", frame.kind()),
                );
                Flow::Stop
            }
        }
    }
}

/// Whether a control frame leaves the connection open.
enum Flow {
    Continue(bool),
    Stop,
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// What the client sees when a request fails.
#[derive(Debug)]
pub enum ServeError {
    /// Transport or framing failure.
    Wire(WireError),
    /// The server replied with a typed error frame.
    Remote {
        /// Error class.
        code: ErrorCode,
        /// Session the error concerns.
        session: u64,
        /// Human-readable detail.
        message: String,
    },
    /// The server replied with a frame the request does not expect.
    Unexpected(FrameKind),
    /// The server closed the connection at a frame boundary.
    Closed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Wire(e) => write!(f, "wire: {e}"),
            ServeError::Remote {
                code,
                session,
                message,
            } => write!(f, "server error [{code}] (session {session}): {message}"),
            ServeError::Unexpected(kind) => write!(f, "unexpected {kind:?} reply"),
            ServeError::Closed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

impl ServeError {
    /// True when the failure is worth a reconnect-and-retry: the
    /// transport died (server restart) or the server shed us with
    /// `RETRY`.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServeError::Wire(WireError::Io(_) | WireError::Torn)
                | ServeError::Closed
                | ServeError::Remote {
                    code: ErrorCode::Retry,
                    ..
                }
        )
    }
}

/// Result of [`ServeClient::open`].
#[derive(Debug, Clone, Copy)]
pub struct OpenedSession {
    /// The live predictor's capability descriptor.
    pub caps: PredictorCaps,
    /// True when the session already existed server-side.
    pub resumed: bool,
    /// Counters at attach time — a resuming client fast-forwards its
    /// trace cursor to `stats.records`.
    pub stats: SessionStats,
}

/// A synchronous `bfbp-wire/1` client: one request/response at a time
/// over one TCP connection, with all frame buffers reused across
/// calls. Shared by `loadgen`, the integration tests, and anything
/// else that wants to drive a served predictor.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    rd: BufReader<TcpStream>,
    reader: FrameReader,
    out: Vec<u8>,
    miss: Vec<bool>,
}

impl ServeClient {
    /// Connects (without sending anything; call [`hello`] next).
    ///
    /// [`hello`]: ServeClient::hello
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let rd = BufReader::with_capacity(64 * 1024, stream.try_clone()?);
        Ok(ServeClient {
            stream,
            rd,
            reader: FrameReader::new(),
            out: Vec::new(),
            miss: Vec::new(),
        })
    }

    fn send(&mut self) -> Result<(), ServeError> {
        self.stream
            .write_all(&self.out)
            .map_err(|e| ServeError::Wire(WireError::Io(e)))
    }

    fn read_reply(&mut self) -> Result<Frame, ServeError> {
        match self.reader.read_frame(&mut self.rd)? {
            None => Err(ServeError::Closed),
            Some(Frame::Error {
                code,
                session,
                message,
            }) => Err(ServeError::Remote {
                code,
                session,
                message,
            }),
            Some(frame) => Ok(frame),
        }
    }

    fn request(&mut self, frame: &Frame) -> Result<Frame, ServeError> {
        frame.encode_into(&mut self.out);
        self.send()?;
        self.read_reply()
    }

    /// HELLO handshake; returns the server's predictor catalogue.
    pub fn hello(&mut self, client: &str) -> Result<Vec<PredictorInfo>, ServeError> {
        let reply = self.request(&Frame::Hello {
            protocol: WIRE_PROTOCOL.to_owned(),
            client: client.to_owned(),
        })?;
        match reply {
            Frame::HelloAck {
                protocol,
                predictors,
                ..
            } if protocol == WIRE_PROTOCOL => Ok(predictors),
            Frame::HelloAck { .. } => Err(ServeError::Wire(WireError::Malformed(
                "server speaks a different protocol",
            ))),
            other => Err(ServeError::Unexpected(other.kind())),
        }
    }

    /// Opens (or re-attaches to) session `session` running `spec`.
    pub fn open(&mut self, session: u64, spec: &str) -> Result<OpenedSession, ServeError> {
        let reply = self.request(&Frame::Open {
            session,
            spec: spec.to_owned(),
        })?;
        match reply {
            Frame::OpenAck {
                session: echoed,
                caps,
                resumed,
                stats,
            } if echoed == session => Ok(OpenedSession {
                caps,
                resumed,
                stats,
            }),
            other => Err(ServeError::Unexpected(other.kind())),
        }
    }

    /// Streams a run of conditional branches through the session and
    /// returns the per-record misprediction flags. The hot call: both
    /// directions reuse this client's scratch buffers.
    pub fn predict_batch(
        &mut self,
        session: u64,
        pcs: &[u64],
        targets: &[u64],
        gaps: &[u32],
        takens: &[bool],
    ) -> Result<&[bool], ServeError> {
        encode_predict_batch(session, pcs, targets, gaps, takens, &mut self.out);
        self.send()?;
        match self.reader.read_from(&mut self.rd)? {
            None => Err(ServeError::Closed),
            Some((FrameKind::PredictReply, payload)) => {
                let echoed = decode_predict_reply_into(payload, &mut self.miss)?;
                if echoed != session {
                    return Err(ServeError::Wire(WireError::Malformed(
                        "reply for a different session",
                    )));
                }
                Ok(&self.miss)
            }
            Some((FrameKind::Error, payload)) => match Frame::decode(FrameKind::Error, payload)? {
                Frame::Error {
                    code,
                    session,
                    message,
                } => Err(ServeError::Remote {
                    code,
                    session,
                    message,
                }),
                _ => unreachable!("decode returned a non-Error for FrameKind::Error"),
            },
            Some((kind, _)) => Err(ServeError::Unexpected(kind)),
        }
    }

    /// Streams a run `start..end` of non-conditional records (from a
    /// [`TraceChunk`]) through the session.
    pub fn outcome_batch(
        &mut self,
        session: u64,
        chunk: &TraceChunk,
        start: usize,
        end: usize,
    ) -> Result<(), ServeError> {
        encode_outcome_batch(session, chunk, start, end, &mut self.out);
        self.send()?;
        match self.read_reply()? {
            Frame::OutcomeAck { session: echoed } if echoed == session => Ok(()),
            other => Err(ServeError::Unexpected(other.kind())),
        }
    }

    /// Fetches the session's current counters.
    pub fn stats(&mut self, session: u64) -> Result<SessionStats, ServeError> {
        match self.request(&Frame::Stats { session })? {
            Frame::StatsReply {
                session: echoed,
                stats,
            } if echoed == session => Ok(stats),
            other => Err(ServeError::Unexpected(other.kind())),
        }
    }

    /// Asks the server to persist the session now; returns whether a
    /// checkpoint file was written.
    pub fn checkpoint(&mut self, session: u64) -> Result<bool, ServeError> {
        match self.request(&Frame::Checkpoint { session })? {
            Frame::CheckpointAck {
                session: echoed,
                persisted,
            } if echoed == session => Ok(persisted),
            other => Err(ServeError::Unexpected(other.kind())),
        }
    }

    /// Closes the session; returns its final counters.
    pub fn close_session(&mut self, session: u64) -> Result<SessionStats, ServeError> {
        match self.request(&Frame::Close { session })? {
            Frame::CloseAck {
                session: echoed,
                stats,
            } if echoed == session => Ok(stats),
            other => Err(ServeError::Unexpected(other.kind())),
        }
    }

    /// Asks the server to persist everything and stop; returns the
    /// persisted-session count.
    pub fn shutdown_server(&mut self) -> Result<u64, ServeError> {
        match self.request(&Frame::Shutdown)? {
            Frame::ShutdownAck { sessions } => Ok(sessions),
            other => Err(ServeError::Unexpected(other.kind())),
        }
    }
}
