//! Hardware storage accounting.
//!
//! Every predictor reports a [`StorageBreakdown`] — a list of labelled bit
//! counts for its memory arrays — so the harness can verify that compared
//! configurations sit in the same budget, and so Table I of the paper can
//! be regenerated from the actual configuration rather than hand-added
//! numbers.

use std::fmt;

/// One labelled memory array (or register group) and its size in bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageItem {
    label: String,
    bits: u64,
}

impl StorageItem {
    /// Creates an item.
    pub fn new(label: impl Into<String>, bits: u64) -> Self {
        Self {
            label: label.into(),
            bits,
        }
    }

    /// The item's label, e.g. `"tagged table T3"`.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Size in bits.
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Size in bytes, rounded up.
    pub fn bytes(&self) -> u64 {
        self.bits.div_ceil(8)
    }
}

impl fmt::Display for StorageItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} bits ({} bytes)",
            self.label,
            self.bits,
            self.bytes()
        )
    }
}

/// A predictor's complete storage inventory.
///
/// # Examples
///
/// ```
/// use bfbp_sim::storage::StorageBreakdown;
///
/// let mut s = StorageBreakdown::new();
/// s.push("bimodal table", 16_384 * 2);
/// s.push("history register", 64);
/// assert_eq!(s.total_bits(), 32_832);
/// assert!(s.total_kib() < 64.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StorageBreakdown {
    items: Vec<StorageItem>,
}

impl StorageBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a labelled array.
    pub fn push(&mut self, label: impl Into<String>, bits: u64) {
        self.items.push(StorageItem::new(label, bits));
    }

    /// Merges all items of `other`, prefixing their labels.
    pub fn push_nested(&mut self, prefix: &str, other: &StorageBreakdown) {
        for item in &other.items {
            self.items.push(StorageItem::new(
                format!("{prefix}/{}", item.label()),
                item.bits(),
            ));
        }
    }

    /// The items, in insertion order.
    pub fn items(&self) -> &[StorageItem] {
        &self.items
    }

    /// Total size in bits.
    pub fn total_bits(&self) -> u64 {
        self.items.iter().map(StorageItem::bits).sum()
    }

    /// Total size in bytes (bit total rounded up once).
    pub fn total_bytes(&self) -> u64 {
        self.total_bits().div_ceil(8)
    }

    /// Total size in KiB as a float.
    pub fn total_kib(&self) -> f64 {
        self.total_bits() as f64 / 8192.0
    }
}

impl fmt::Display for StorageBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for item in &self.items {
            writeln!(f, "{item}")?;
        }
        write!(
            f,
            "total: {} bits ({} bytes, {:.2} KiB)",
            self.total_bits(),
            self.total_bytes(),
            self.total_kib()
        )
    }
}

impl FromIterator<StorageItem> for StorageBreakdown {
    fn from_iter<T: IntoIterator<Item = StorageItem>>(iter: T) -> Self {
        Self {
            items: iter.into_iter().collect(),
        }
    }
}

impl Extend<StorageItem> for StorageBreakdown {
    fn extend<T: IntoIterator<Item = StorageItem>>(&mut self, iter: T) {
        self.items.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_breakdown_is_zero() {
        let s = StorageBreakdown::new();
        assert_eq!(s.total_bits(), 0);
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.total_kib(), 0.0);
        assert!(s.items().is_empty());
    }

    #[test]
    fn totals_accumulate() {
        let mut s = StorageBreakdown::new();
        s.push("a", 10);
        s.push("b", 7);
        assert_eq!(s.total_bits(), 17);
        assert_eq!(s.total_bytes(), 3); // ceil(17/8)
    }

    #[test]
    fn item_bytes_round_up() {
        assert_eq!(StorageItem::new("x", 1).bytes(), 1);
        assert_eq!(StorageItem::new("x", 8).bytes(), 1);
        assert_eq!(StorageItem::new("x", 9).bytes(), 2);
        assert_eq!(StorageItem::new("x", 0).bytes(), 0);
    }

    #[test]
    fn nested_prefixes_labels() {
        let mut inner = StorageBreakdown::new();
        inner.push("table", 100);
        let mut outer = StorageBreakdown::new();
        outer.push_nested("loop", &inner);
        assert_eq!(outer.items()[0].label(), "loop/table");
        assert_eq!(outer.total_bits(), 100);
    }

    #[test]
    fn kib_matches_bits() {
        let mut s = StorageBreakdown::new();
        s.push("a", 8192 * 64);
        assert!((s.total_kib() - 64.0).abs() < 1e-12);
    }

    #[test]
    fn display_contains_total() {
        let mut s = StorageBreakdown::new();
        s.push("weights", 4096);
        let text = format!("{s}");
        assert!(text.contains("weights"));
        assert!(text.contains("total:"));
    }

    #[test]
    fn collect_and_extend() {
        let s: StorageBreakdown = vec![StorageItem::new("a", 1), StorageItem::new("b", 2)]
            .into_iter()
            .collect();
        assert_eq!(s.total_bits(), 3);
        let mut s2 = StorageBreakdown::new();
        s2.extend(s.items().to_vec());
        assert_eq!(s2.total_bits(), 3);
    }
}
