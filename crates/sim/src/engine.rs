//! The parallel suite-sweep engine.
//!
//! Every figure of the paper is a (predictor-configuration × trace)
//! cross-product. [`sweep`] schedules that whole matrix as independent
//! jobs over a work queue serviced by scoped worker threads: each job
//! builds a fresh predictor through the [`PredictorRegistry`], runs it
//! over one shared trace (held behind `Arc<Trace>`, generated once by
//! the [`SuiteRunner`]), and records the [`SimResult`] plus per-job wall
//! time and windowed (interval) MPKI.
//!
//! Determinism: jobs are completely independent (fresh predictor, shared
//! immutable trace) and results are reassembled in job-index order, so a
//! parallel sweep produces **byte-identical** result documents to a
//! serial one — [`SweepReport::results_json`] is independent of thread
//! count and scheduling. Timing lives in a separate JSON section that
//! [`SweepReport::to_json`] appends.
//!
//! ```
//! use bfbp_sim::engine::{self, SweepOptions};
//! use bfbp_sim::registry::{PredictorRegistry, PredictorSpec};
//! use bfbp_sim::runner::SuiteRunner;
//! use bfbp_trace::synth::suite;
//!
//! let registry = PredictorRegistry::with_builtins();
//! let runner = SuiteRunner::from_specs(vec![suite::find("INT1").unwrap()], 0.01);
//! let specs = [PredictorSpec::new("static-taken")];
//! let report = engine::sweep(&registry, &specs, &runner, &SweepOptions::default()).unwrap();
//! assert_eq!(report.results("static-taken").len(), 1);
//! ```

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::registry::{BuildError, Params, PredictorRegistry, PredictorSpec};
use crate::runner::SuiteRunner;
use crate::simulate::{mean_mpki, simulate_with_intervals, IntervalPoint, SimResult};

/// Tuning knobs for a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOptions {
    /// Worker threads; `0` means all available cores.
    pub threads: usize,
    /// Window size (in committed instructions) for interval MPKI
    /// collection; `0` disables interval collection.
    pub interval_insts: u64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            threads: 0,
            interval_insts: 100_000,
        }
    }
}

impl SweepOptions {
    /// A single-threaded sweep (the reference serial schedule).
    pub fn serial() -> Self {
        Self {
            threads: 1,
            ..Self::default()
        }
    }

    /// Overrides the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// One (predictor-config × trace) cell of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The simulation outcome.
    pub result: SimResult,
    /// Windowed MPKI samples (empty when interval collection is off).
    pub intervals: Vec<IntervalPoint>,
    /// Wall time for this job (predictor construction + simulation).
    pub wall: Duration,
}

/// Per-series metadata recorded once per predictor spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesInfo {
    /// Display label (spec label).
    pub label: String,
    /// Registered predictor name the series was built from.
    pub predictor: String,
    /// Effective parameters (registry defaults + overrides).
    pub params: Params,
    /// The predictor's self-reported name.
    pub predictor_name: String,
    /// Hardware budget of the configuration, in bytes.
    pub storage_bytes: u64,
}

/// The complete outcome of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    series: Vec<SeriesInfo>,
    trace_names: Vec<String>,
    /// Series-major: `jobs[s * n_traces + t]`.
    jobs: Vec<JobRecord>,
    threads: usize,
    wall: Duration,
}

impl SweepReport {
    /// Series metadata in spec order.
    pub fn series(&self) -> &[SeriesInfo] {
        &self.series
    }

    /// Trace names in suite order.
    pub fn trace_names(&self) -> &[String] {
        &self.trace_names
    }

    /// All jobs, series-major then trace order.
    pub fn jobs(&self) -> &[JobRecord] {
        &self.jobs
    }

    /// Per-trace results for the series with the given label (panics if
    /// the label is unknown — labels come from the caller's own specs).
    pub fn results(&self, label: &str) -> Vec<SimResult> {
        let s = self
            .series
            .iter()
            .position(|info| info.label == label)
            .unwrap_or_else(|| panic!("no sweep series labeled {label:?}"));
        let t = self.trace_names.len();
        self.jobs[s * t..(s + 1) * t]
            .iter()
            .map(|j| j.result.clone())
            .collect()
    }

    /// `(label, per-trace results)` for every series, in spec order.
    pub fn all_results(&self) -> Vec<(String, Vec<SimResult>)> {
        self.series
            .iter()
            .map(|info| (info.label.clone(), self.results(&info.label)))
            .collect()
    }

    /// Arithmetic-mean MPKI of one series.
    pub fn mean_mpki(&self, label: &str) -> f64 {
        mean_mpki(&self.results(label))
    }

    /// Worker threads the sweep ran with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// End-to-end wall time of the sweep.
    pub fn wall(&self) -> Duration {
        self.wall
    }

    /// Sum of per-job wall times — the work a serial run would do.
    pub fn cpu(&self) -> Duration {
        self.jobs.iter().map(|j| j.wall).sum()
    }

    /// Observed parallel speedup: total job time over wall time.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            return 1.0;
        }
        self.cpu().as_secs_f64() / wall
    }

    fn render_json(&self, with_timing: bool) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"bfbp-sweep/1\",\n  \"traces\": [");
        for (i, name) in self.trace_names.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(name));
        }
        out.push_str("],\n  \"series\": [\n");
        let t = self.trace_names.len();
        for (s, info) in self.series.iter().enumerate() {
            let rows = &self.jobs[s * t..(s + 1) * t];
            out.push_str("    {\"label\": ");
            out.push_str(&json_string(&info.label));
            out.push_str(", \"predictor\": ");
            out.push_str(&json_string(&info.predictor));
            out.push_str(", \"predictor_name\": ");
            out.push_str(&json_string(&info.predictor_name));
            out.push_str(&format!(", \"storage_bytes\": {}", info.storage_bytes));
            out.push_str(", \"params\": {");
            for (i, (key, value)) in info.params.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_string(key));
                out.push_str(": ");
                out.push_str(&value.to_json());
            }
            out.push_str("},\n");
            let results: Vec<SimResult> = rows.iter().map(|j| j.result.clone()).collect();
            out.push_str(&format!(
                "     \"mean_mpki\": {},\n     \"results\": [\n",
                json_f64(mean_mpki(&results))
            ));
            for (i, job) in rows.iter().enumerate() {
                let r = &job.result;
                out.push_str(&format!(
                    "      {{\"trace\": {}, \"conditional_branches\": {}, \"mispredictions\": {}, \"instructions\": {}, \"mpki\": {}, \"intervals\": [",
                    json_string(r.trace_name()),
                    r.conditional_branches(),
                    r.mispredictions(),
                    r.instructions(),
                    json_f64(r.mpki()),
                ));
                for (k, iv) in job.intervals.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!(
                        "[{}, {}, {}]",
                        iv.instructions, iv.mispredictions,
                        json_f64(iv.mpki())
                    ));
                }
                out.push_str("]}");
                out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
            }
            out.push_str("     ]}");
            out.push_str(if s + 1 < self.series.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]");
        if with_timing {
            out.push_str(&format!(",\n  \"threads\": {}", self.threads));
            out.push_str(&format!(
                ",\n  \"timing\": {{\"wall_ms\": {}, \"cpu_ms\": {}, \"parallel_speedup\": {}, \"jobs_ms\": [",
                json_f64(self.wall.as_secs_f64() * 1e3),
                json_f64(self.cpu().as_secs_f64() * 1e3),
                json_f64(self.speedup()),
            ));
            for s in 0..self.series.len() {
                if s > 0 {
                    out.push_str(", ");
                }
                out.push('[');
                for (i, job) in self.jobs[s * t..(s + 1) * t].iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&json_f64(job.wall.as_secs_f64() * 1e3));
                }
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("\n}\n");
        out
    }

    /// The deterministic results document: independent of thread count
    /// and scheduling (no timing fields). A parallel sweep and a serial
    /// sweep of the same matrix produce byte-identical output.
    pub fn results_json(&self) -> String {
        self.render_json(false)
    }

    /// The full machine-readable document: results plus the timing
    /// section (`wall_ms`, `cpu_ms`, `parallel_speedup`, per-job times).
    pub fn to_json(&self) -> String {
        self.render_json(true)
    }

    /// Writes [`SweepReport::to_json`] to `<results-dir>/<run>.json`,
    /// creating the directory. The directory is `$BFBP_RESULTS_DIR` when
    /// set, else `target/results`. Returns the written path.
    pub fn write_json(&self, run: &str) -> io::Result<PathBuf> {
        let dir = std::env::var("BFBP_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target").join("results"));
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{run}.json"));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Runs the full (spec × trace) matrix in parallel and reassembles
/// deterministic per-series results.
///
/// All specs are validated (built once) up front, so an unknown
/// predictor or bad parameter fails before any simulation starts.
pub fn sweep(
    registry: &PredictorRegistry,
    specs: &[PredictorSpec],
    runner: &SuiteRunner,
    options: &SweepOptions,
) -> Result<SweepReport, BuildError> {
    let start = Instant::now();
    let mut series = Vec::with_capacity(specs.len());
    for spec in specs {
        let probe = registry.build_spec(spec)?;
        series.push(SeriesInfo {
            label: spec.label(),
            predictor: spec.predictor().to_owned(),
            params: registry.effective_params(spec)?,
            predictor_name: probe.name().into_owned(),
            storage_bytes: probe.storage().total_bytes(),
        });
    }

    let traces = runner.traces();
    let trace_names: Vec<String> = traces.iter().map(|t| t.name().to_owned()).collect();
    let n_traces = traces.len();
    let n_jobs = specs.len() * n_traces;

    let threads = if options.threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        options.threads
    }
    .min(n_jobs.max(1));

    let run_job = |job: usize| -> JobRecord {
        let spec = &specs[job / n_traces];
        let trace = traces[job % n_traces].clone(); // Arc clone, trace shared
        let job_start = Instant::now();
        let mut predictor = registry
            .build_spec(spec)
            .expect("spec validated before sweep started");
        let (result, intervals) =
            simulate_with_intervals(predictor.as_mut(), &trace, options.interval_insts);
        JobRecord {
            result,
            intervals,
            wall: job_start.elapsed(),
        }
    };

    let jobs: Vec<JobRecord> = if threads <= 1 {
        (0..n_jobs).map(run_job).collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<JobRecord>>> = Mutex::new(vec![None; n_jobs]);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let job = next.fetch_add(1, Ordering::Relaxed);
                    if job >= n_jobs {
                        break;
                    }
                    let record = run_job(job);
                    slots.lock().expect("no poisoned sweep worker")[job] = Some(record);
                });
            }
        });
        slots
            .into_inner()
            .expect("no poisoned sweep worker")
            .into_iter()
            .map(|slot| slot.expect("every job index claimed exactly once"))
            .collect()
    };

    Ok(SweepReport {
        series,
        trace_names,
        jobs,
        threads,
        wall: start.elapsed(),
    })
}

/// [`sweep`] pinned to one worker thread — the reference schedule.
pub fn sweep_serial(
    registry: &PredictorRegistry,
    specs: &[PredictorSpec],
    runner: &SuiteRunner,
) -> Result<SweepReport, BuildError> {
    sweep(registry, specs, runner, &SweepOptions::serial())
}

/// Renders a JSON string literal (quoted, escaped).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` as a JSON number (`null` for non-finite values).
/// Rust's shortest-roundtrip `Display` never uses exponent notation, so
/// the output is always a valid JSON literal and deterministic.
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        let mut s = x.to_string();
        if !s.contains('.') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfbp_trace::synth::suite;

    fn tiny_runner() -> SuiteRunner {
        SuiteRunner::from_specs(
            vec![suite::find("INT1").unwrap(), suite::find("MM2").unwrap()],
            0.005,
        )
    }

    fn two_specs() -> Vec<PredictorSpec> {
        vec![
            PredictorSpec::new("static-taken").labeled("T"),
            PredictorSpec::new("static-not-taken").labeled("NT"),
        ]
    }

    #[test]
    fn sweep_covers_the_matrix_in_order() {
        let registry = PredictorRegistry::with_builtins();
        let runner = tiny_runner();
        let report =
            sweep(&registry, &two_specs(), &runner, &SweepOptions::default()).unwrap();
        assert_eq!(report.jobs().len(), 4);
        assert_eq!(report.trace_names(), &["INT1".to_owned(), "MM2".to_owned()]);
        let t = report.results("T");
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].trace_name(), "INT1");
        assert_eq!(t[1].trace_name(), "MM2");
        // Complementary predictors partition the mispredictions.
        let nt = report.results("NT");
        for (a, b) in t.iter().zip(&nt) {
            assert_eq!(
                a.mispredictions() + b.mispredictions(),
                a.conditional_branches()
            );
        }
    }

    #[test]
    fn parallel_results_json_is_byte_identical_to_serial() {
        let registry = PredictorRegistry::with_builtins();
        let runner = tiny_runner();
        let specs = two_specs();
        let serial = sweep_serial(&registry, &specs, &runner).unwrap();
        let parallel = sweep(
            &registry,
            &specs,
            &runner,
            &SweepOptions::default().with_threads(4),
        )
        .unwrap();
        assert_eq!(serial.threads(), 1);
        assert_eq!(parallel.threads(), 4);
        assert_eq!(serial.results_json(), parallel.results_json());
    }

    #[test]
    fn unknown_spec_fails_before_simulating() {
        let registry = PredictorRegistry::with_builtins();
        let runner = tiny_runner();
        let specs = [PredictorSpec::new("no-such-predictor")];
        assert!(matches!(
            sweep(&registry, &specs, &runner, &SweepOptions::default()),
            Err(BuildError::UnknownPredictor { .. })
        ));
    }

    #[test]
    fn timing_fields_present_only_in_full_json() {
        let registry = PredictorRegistry::with_builtins();
        let runner = tiny_runner();
        let report = sweep_serial(&registry, &two_specs(), &runner).unwrap();
        let results = report.results_json();
        let full = report.to_json();
        assert!(!results.contains("\"timing\""));
        assert!(full.contains("\"timing\""));
        assert!(full.contains("\"parallel_speedup\""));
        assert!(full.contains("\"wall_ms\""));
        assert!(report.speedup() > 0.0);
    }

    #[test]
    fn intervals_cover_the_whole_trace() {
        let registry = PredictorRegistry::with_builtins();
        let runner = tiny_runner();
        let options = SweepOptions {
            threads: 1,
            interval_insts: 1000,
        };
        let report = sweep(&registry, &two_specs(), &runner, &options).unwrap();
        for job in report.jobs() {
            let total: u64 = job.intervals.iter().map(|iv| iv.instructions).sum();
            assert_eq!(total, job.result.instructions());
            let misp: u64 = job.intervals.iter().map(|iv| iv.mispredictions).sum();
            assert_eq!(misp, job.result.mispredictions());
        }
    }

    #[test]
    fn json_helpers_escape_and_format() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(2.5), "2.5");
        assert_eq!(json_f64(3.0), "3.0");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
