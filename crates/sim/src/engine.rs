//! The parallel, fault-tolerant suite-sweep engine.
//!
//! Every figure of the paper is a (predictor-configuration × trace)
//! cross-product. [`sweep`] schedules that whole matrix as independent
//! jobs over a work queue serviced by scoped worker threads: each job
//! builds a fresh predictor through the [`PredictorRegistry`], runs it
//! over one shared trace (held behind `Arc<Trace>`, generated once by
//! the [`SuiteRunner`]), and records the [`SimResult`] plus per-job wall
//! time and windowed (interval) MPKI.
//!
//! # Fault tolerance
//!
//! Long campaigns only work at scale if a single bad job degrades
//! gracefully instead of aborting the matrix, so every job runs inside
//! an isolation boundary:
//!
//! * a panicking predictor (or trace) is caught with `catch_unwind` and
//!   becomes a structured [`JobStatus::Failed`] for that one job;
//! * a [`RetryPolicy`] re-attempts failed jobs with a fixed backoff;
//! * an optional per-job wall-clock timeout is enforced by a watchdog
//!   thread that raises a cancellation flag; the simulation loop polls
//!   it at [`crate::simulate::CANCEL_CHECK_RECORDS`]-record boundaries
//!   and the job reports [`JobStatus::TimedOut`] while the pool moves
//!   on;
//! * a trace that fails validation on load ([`TraceInput::Unavailable`])
//!   quarantines exactly the jobs that needed it;
//! * completed jobs can be checkpointed to a [`journal`](crate::journal)
//!   file as they finish, and a later sweep with
//!   [`SweepOptions::resume_from`] restores them and re-runs only the
//!   missing or failed jobs;
//! * with [`SweepOptions::with_checkpoints`], every in-flight job
//!   additionally snapshots its full predictor + accounting state to a
//!   `bfbp-ckpt/1` file every N records, so a crash (or an injected
//!   [`Fault::Kill`]) mid-job loses at most one checkpoint interval:
//!   the next run restores the snapshot, replays only the tail, and
//!   produces **byte-identical** result documents to an uninterrupted
//!   run, while a torn, stale, or mismatched checkpoint is quarantined
//!   and the job simply re-runs from zero;
//! * a deterministic [`FaultPlan`] injects panics, delays, kills, and
//!   trace-format failures into chosen jobs so every one of these paths
//!   is exercised by tests.
//!
//! Determinism: jobs are completely independent (fresh predictor, shared
//! immutable trace) and results are reassembled in job-index order, so a
//! parallel sweep produces **byte-identical** result documents to a
//! serial one — [`SweepReport::results_json`] is independent of thread
//! count and scheduling. Timing lives in a separate JSON section that
//! [`SweepReport::to_json`] appends.
//!
//! ```
//! use bfbp_sim::engine::{self, SweepOptions};
//! use bfbp_sim::registry::{PredictorRegistry, PredictorSpec};
//! use bfbp_sim::runner::SuiteRunner;
//! use bfbp_trace::synth::suite;
//!
//! let registry = PredictorRegistry::with_builtins();
//! let runner = SuiteRunner::from_specs(vec![suite::find("INT1").unwrap()], 0.01);
//! let specs = [PredictorSpec::new("static-taken")];
//! let report = engine::sweep(&registry, &specs, &runner, &SweepOptions::default()).unwrap();
//! assert_eq!(report.try_results("static-taken").unwrap().len(), 1);
//! assert!(report.is_fully_ok());
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use bfbp_trace::cache::CacheStatus;
use bfbp_trace::format::{corrupt, read_trace, read_trace_file};
use bfbp_trace::record::{BranchRecord, Trace};
use bfbp_trace::source::{FileSource, TraceChunk, TraceSource};
use bfbp_trace::synth::suite::TraceSpec;

use crate::ckpt::{self, JobCheckpoint, Restorable, SimCheckpoint, StateReader, StateWriter};
use crate::fault::{Fault, FaultPlan};
use crate::journal::{self, Journal, JournalError};
use crate::obs::{self, Event, EventJournal, FlightRecorder, H2pTable, JobObs, Progress};
use crate::predictor::ConditionalPredictor;
use crate::registry::{BuildError, Params, PredictorRegistry, PredictorSpec};
use crate::runner::SuiteRunner;
use crate::simulate::{mean_mpki, IntervalPoint, SimResult, Simulation, SimulationError};

/// Schema identifier of the sweep result document.
pub const SWEEP_SCHEMA: &str = "bfbp-sweep/2";

/// How failed job attempts are retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job (minimum 1 — the first try counts).
    pub max_attempts: u32,
    /// Fixed pause between attempts.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 1,
            backoff: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `retries` re-attempts after the first try.
    pub fn retries(retries: u32, backoff: Duration) -> Self {
        Self {
            max_attempts: retries.saturating_add(1),
            backoff,
        }
    }
}

/// Tuning knobs for a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOptions {
    /// Worker threads; `0` means all available cores.
    pub threads: usize,
    /// Window size (in committed instructions) for interval MPKI
    /// collection; `0` disables interval collection.
    pub interval_insts: u64,
    /// Per-job retry policy for failed (not timed-out) attempts.
    pub retry: RetryPolicy,
    /// Per-job wall-clock budget covering all attempts and backoff; the
    /// watchdog marks overrunning jobs [`JobStatus::TimedOut`]. `None`
    /// disables the watchdog.
    pub timeout: Option<Duration>,
    /// Deterministic fault injection (tests and chaos drills).
    pub fault_plan: Option<FaultPlan>,
    /// Checkpoint journal to append completed jobs to.
    pub journal: Option<PathBuf>,
    /// Journal to restore completed jobs from; only missing or failed
    /// jobs are re-run. Point [`SweepOptions::journal`] at the same file
    /// to keep checkpointing the resumed run.
    pub resume_from: Option<PathBuf>,
    /// Mid-job checkpoint cadence in trace records; `0` disables
    /// mid-job checkpointing. Takes effect only together with
    /// [`SweepOptions::checkpoint_dir`].
    pub checkpoint_every: u64,
    /// Directory mid-job `bfbp-ckpt/1` snapshots are written to (one
    /// `job-<index>.ckpt` per in-flight job, deleted on success). A
    /// later sweep of the same matrix pointed at the same directory
    /// resumes each interrupted job from its snapshot.
    pub checkpoint_dir: Option<PathBuf>,
    /// Collect per-job observability: predictor introspection metrics
    /// and the per-branch H2P attribution table. Never perturbs the
    /// `bfbp-sweep/2` results document.
    pub metrics: bool,
    /// Span/event journal (`bfbp-events/1` JSONL) to append sweep → job
    /// → interval spans to; `None` disables event emission.
    pub events: Option<PathBuf>,
    /// Draw a live stderr progress line (jobs done/failed/ETA).
    pub progress: bool,
    /// Flight-recorder ring capacity in records; `0` disables the
    /// recorder. Takes effect only together with
    /// [`SweepOptions::postmortem_dir`]. Never perturbs the
    /// `bfbp-sweep/2` or `bfbp-metrics/1` documents.
    pub flight_recorder: usize,
    /// Directory `bfbp-postmortem/1` dumps are written to (one
    /// `job-<index>.postmortem.json` per dead attempt) when a job
    /// fails, times out, panics, or is killed.
    pub postmortem_dir: Option<PathBuf>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepOptions {
    /// The defaults: all cores, 100k-instruction intervals, one attempt,
    /// no timeout, no faults, no journal, no observability.
    pub fn new() -> Self {
        Self {
            threads: 0,
            interval_insts: 100_000,
            retry: RetryPolicy::default(),
            timeout: None,
            fault_plan: None,
            journal: None,
            resume_from: None,
            checkpoint_every: 0,
            checkpoint_dir: None,
            metrics: false,
            events: None,
            progress: false,
            flight_recorder: 0,
            postmortem_dir: None,
        }
    }

    /// A single-threaded sweep (the reference serial schedule).
    pub fn serial() -> Self {
        Self {
            threads: 1,
            ..Self::new()
        }
    }

    /// Overrides the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the per-job wall-clock timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Installs a fault-injection plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Appends completed jobs to a checkpoint journal at `path`.
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// Resumes from the journal at `path` *and* keeps appending new
    /// completions to it — the `sweep --resume` workflow.
    pub fn resuming(mut self, path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        self.resume_from = Some(path.clone());
        self.journal = Some(path);
        self
    }

    /// Enables mid-job checkpointing: every `every` records each
    /// in-flight job snapshots its predictor, accounting, and observer
    /// state to `<dir>/job-<index>.ckpt`, and a later sweep of the same
    /// matrix with the same directory resumes from the snapshot instead
    /// of starting the job over.
    pub fn with_checkpoints(mut self, every: u64, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_every = every;
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Enables per-job metrics/H2P collection.
    pub fn with_metrics(mut self) -> Self {
        self.metrics = true;
        self
    }

    /// Appends span/event lines to the `bfbp-events/1` journal at `path`.
    pub fn with_events(mut self, path: impl Into<PathBuf>) -> Self {
        self.events = Some(path.into());
        self
    }

    /// Enables the live stderr progress line.
    pub fn with_progress(mut self) -> Self {
        self.progress = true;
        self
    }

    /// Enables the misprediction flight recorder: every in-flight job
    /// keeps its last `capacity` decisions (PC, kind, prediction,
    /// outcome, provenance) in a ring, and any attempt that fails,
    /// times out, panics, or is killed dumps the ring as a
    /// `bfbp-postmortem/1` document to `<dir>/job-<index>.postmortem.json`.
    pub fn with_flight_recorder(mut self, capacity: usize, dir: impl Into<PathBuf>) -> Self {
        self.flight_recorder = capacity;
        self.postmortem_dir = Some(dir.into());
        self
    }

    /// Overlays environment-driven knobs on the defaults:
    /// `BFBP_SWEEP_RETRIES` (extra attempts after the first),
    /// `BFBP_SWEEP_BACKOFF_MS`, `BFBP_SWEEP_TIMEOUT_MS`,
    /// `BFBP_SWEEP_METRICS` (any value except `0`/empty enables
    /// metrics/H2P collection), `BFBP_SWEEP_EVENTS` (event-journal
    /// path), `BFBP_SWEEP_CKPT_EVERY` / `BFBP_SWEEP_CKPT_DIR`
    /// (mid-job checkpoint cadence and directory), and
    /// `BFBP_SWEEP_FLIGHT` / `BFBP_SWEEP_FLIGHT_DIR` (flight-recorder
    /// capacity and postmortem directory). Unset or malformed
    /// variables leave the defaults untouched.
    pub fn from_env() -> Self {
        Self::from_env_with(|name| std::env::var(name).ok())
    }

    /// [`SweepOptions::from_env`] with an injectable lookup, so tests can
    /// pin the environment instead of mutating the process-global one.
    pub fn from_env_with<F>(lookup: F) -> Self
    where
        F: Fn(&str) -> Option<String>,
    {
        let mut options = Self::new();
        let num = |name: &str| lookup(name).and_then(|v| v.parse::<u64>().ok());
        if let Some(retries) = num("BFBP_SWEEP_RETRIES") {
            options.retry.max_attempts = (retries as u32).saturating_add(1);
        }
        if let Some(ms) = num("BFBP_SWEEP_BACKOFF_MS") {
            options.retry.backoff = Duration::from_millis(ms);
        }
        if let Some(ms) = num("BFBP_SWEEP_TIMEOUT_MS").filter(|ms| *ms > 0) {
            options.timeout = Some(Duration::from_millis(ms));
        }
        if let Some(v) = lookup("BFBP_SWEEP_METRICS") {
            options.metrics = !v.is_empty() && v != "0";
        }
        if let Some(path) = lookup("BFBP_SWEEP_EVENTS").filter(|p| !p.is_empty()) {
            options.events = Some(PathBuf::from(path));
        }
        if let Some(every) = num("BFBP_SWEEP_CKPT_EVERY") {
            options.checkpoint_every = every;
        }
        if let Some(dir) = lookup("BFBP_SWEEP_CKPT_DIR").filter(|p| !p.is_empty()) {
            options.checkpoint_dir = Some(PathBuf::from(dir));
        }
        if let Some(capacity) = num("BFBP_SWEEP_FLIGHT") {
            options.flight_recorder = capacity as usize;
        }
        if let Some(dir) = lookup("BFBP_SWEEP_FLIGHT_DIR").filter(|p| !p.is_empty()) {
            options.postmortem_dir = Some(PathBuf::from(dir));
        }
        options
    }
}

/// Why a sweep could not run at all (individual job failures never
/// surface here — they are per-job statuses in the report).
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// A spec failed validation before any simulation started.
    Build(BuildError),
    /// The checkpoint journal could not be created, read, or matched.
    Journal(JournalError),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Build(e) => write!(f, "{e}"),
            SweepError::Journal(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Build(e) => Some(e),
            SweepError::Journal(e) => Some(e),
        }
    }
}

impl From<BuildError> for SweepError {
    fn from(e: BuildError) -> Self {
        SweepError::Build(e)
    }
}

impl From<JournalError> for SweepError {
    fn from(e: JournalError) -> Self {
        SweepError::Journal(e)
    }
}

/// One (predictor-config × trace) cell of a sweep that completed.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The simulation outcome.
    pub result: SimResult,
    /// Windowed MPKI samples (empty when interval collection is off).
    pub intervals: Vec<IntervalPoint>,
    /// Wall time of the successful attempt (predictor construction +
    /// simulation).
    pub wall: Duration,
}

/// Terminal state of one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// The job completed and produced a result.
    Ok(JobRecord),
    /// Every permitted attempt failed (panic, build error, or trace
    /// fault); `error` is the last attempt's message.
    Failed {
        /// Human-readable failure description.
        error: String,
    },
    /// The watchdog cancelled the job after its wall-clock budget.
    TimedOut,
    /// The job was never attempted (fault plan or operator decision).
    Skipped,
    /// An injected [`Fault::Kill`] cut the job off mid-run, modeling a
    /// process death (SIGKILL, OOM, power loss). Never retried and
    /// never journaled — like a real crash, the only thing a resumed
    /// sweep can see is the mid-job checkpoint left on disk.
    Killed,
}

impl JobStatus {
    /// The status keyword used in the JSON document and the journal.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Ok(_) => "ok",
            JobStatus::Failed { .. } => "failed",
            JobStatus::TimedOut => "timed_out",
            JobStatus::Skipped => "skipped",
            JobStatus::Killed => "killed",
        }
    }
}

/// The per-job envelope: terminal status plus attempt accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Terminal status (carries the [`JobRecord`] when successful).
    pub status: JobStatus,
    /// Attempts consumed (0 when the job never ran).
    pub attempts: u32,
    /// Wall time across all attempts, including backoff.
    pub wall: Duration,
}

impl JobOutcome {
    /// The completed record, if the job succeeded.
    pub fn record(&self) -> Option<&JobRecord> {
        match &self.status {
            JobStatus::Ok(record) => Some(record),
            _ => None,
        }
    }

    /// Whether the job completed successfully.
    pub fn is_ok(&self) -> bool {
        matches!(self.status, JobStatus::Ok(_))
    }
}

/// Per-series metadata recorded once per predictor spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesInfo {
    /// Display label (spec label).
    pub label: String,
    /// Registered predictor name the series was built from.
    pub predictor: String,
    /// Effective parameters (registry defaults + overrides).
    pub params: Params,
    /// The predictor's self-reported name.
    pub predictor_name: String,
    /// Hardware budget of the configuration, in bytes.
    pub storage_bytes: u64,
}

/// Run-level health counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunSummary {
    /// Total jobs in the matrix.
    pub jobs: usize,
    /// Jobs that completed successfully.
    pub ok: usize,
    /// Jobs that exhausted their attempts.
    pub failed: usize,
    /// Jobs cancelled by the watchdog.
    pub timed_out: usize,
    /// Jobs never attempted.
    pub skipped: usize,
    /// Jobs cut off mid-run by an injected kill fault.
    pub killed: usize,
    /// Of the ok jobs, how many were restored from a resume journal.
    pub resumed: usize,
}

/// One trace column of a sweep matrix: a materialized trace, a
/// streaming recipe, or a placeholder for a trace that failed
/// validation on load, which quarantines exactly the jobs needing it
/// instead of the whole run.
#[derive(Debug, Clone)]
pub enum TraceInput {
    /// A healthy, shared trace.
    Ready(Arc<Trace>),
    /// A recipe for constructing a fresh per-job streaming source, so a
    /// job's memory is O(chunk) instead of O(trace). Boxed: the recipe
    /// (spec + knobs) is much larger than the other variants.
    Streamed(Box<StreamedTrace>),
    /// A trace that could not be loaded; its jobs report
    /// [`JobStatus::Failed`] without being attempted.
    Unavailable {
        /// Display name for the trace column.
        name: String,
        /// Why the load failed.
        error: String,
    },
}

/// Recipe behind [`TraceInput::Streamed`]: a suite spec plus record
/// count, and optionally a cached BFBT file to decode in preference to
/// regenerating. Each job opens its own source, so workers never share
/// mutable trace state.
#[derive(Debug, Clone)]
pub struct StreamedTrace {
    spec: TraceSpec,
    n_records: usize,
    file: Option<PathBuf>,
}

impl StreamedTrace {
    /// A recipe that synthesizes `n_records` records of `spec` on the
    /// fly for every job.
    pub fn new(spec: TraceSpec, n_records: usize) -> Self {
        Self {
            spec,
            n_records,
            file: None,
        }
    }

    /// Prefer chunk-decoding this BFBT file (typically a
    /// [`bfbp_trace::cache::TraceCache`] entry) over regenerating; a
    /// missing file falls back to synthesis reported as a
    /// [`CacheStatus::Generated`] fetch, a present-but-corrupt one as
    /// [`CacheStatus::Regenerated`].
    pub fn with_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.file = Some(path.into());
        self
    }

    /// The trace's display name.
    pub fn name(&self) -> &str {
        self.spec.name()
    }

    /// Record count every opened source delivers.
    pub fn n_records(&self) -> usize {
        self.n_records
    }

    /// Opens a fresh source positioned at the first record, with the
    /// cache accounting of the open: `Hit` when the backing file
    /// validated and will be decoded, `Generated` when a configured
    /// file is simply missing, `Regenerated` when the file exists but
    /// fails validation (torn or corrupt — the quarantine-and-
    /// regenerate path [`bfbp_trace::cache::TraceCache::fetch`] takes),
    /// `Bypassed` when no file was ever attached.
    fn open_source(&self) -> (Box<dyn TraceSource>, CacheStatus) {
        if let Some(path) = &self.file {
            let existed = path.exists();
            if self.validate_file(path) {
                if let Ok(source) = FileSource::open(path) {
                    return (Box::new(source), CacheStatus::Hit);
                }
            }
            let status = if existed {
                CacheStatus::Regenerated
            } else {
                CacheStatus::Generated
            };
            return (Box::new(self.spec.stream_len(self.n_records)), status);
        }
        (
            Box::new(self.spec.stream_len(self.n_records)),
            CacheStatus::Bypassed,
        )
    }

    /// Pre-scans the backing file end to end — footer count, FNV
    /// checksum, trace name, and record count against this recipe — in
    /// constant memory. A torn entry must quarantine into regeneration
    /// *before* any record reaches a predictor: `fill_chunk` surfacing
    /// the corruption mid-simulation would fail the job instead of
    /// falling back.
    fn validate_file(&self, path: &std::path::Path) -> bool {
        let Ok(mut probe) = FileSource::open(path) else {
            return false;
        };
        if probe.name() != self.spec.name() {
            return false;
        }
        let mut chunk = TraceChunk::new();
        let mut total = 0usize;
        loop {
            match probe.fill_chunk(&mut chunk, 4096) {
                Ok(0) => return total == self.n_records,
                Ok(n) => total += n,
                Err(_) => return false,
            }
        }
    }
}

impl TraceInput {
    /// Wraps an in-memory trace.
    pub fn ready(trace: Trace) -> Self {
        TraceInput::Ready(Arc::new(trace))
    }

    /// Streams `n_records` records of a suite spec per job instead of
    /// materializing the trace once.
    pub fn streamed(spec: TraceSpec, n_records: usize) -> Self {
        TraceInput::Streamed(Box::new(StreamedTrace::new(spec, n_records)))
    }

    /// Loads and validates a BFBT trace file; a corrupt or unreadable
    /// file becomes [`TraceInput::Unavailable`] (named after the file
    /// stem) instead of an error, so one bad file costs one trace
    /// column, not the run.
    pub fn from_file(path: impl AsRef<std::path::Path>) -> Self {
        let path = path.as_ref();
        match read_trace_file(path) {
            Ok(trace) => TraceInput::Ready(Arc::new(trace)),
            Err(e) => TraceInput::Unavailable {
                name: path
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| path.display().to_string()),
                error: e.to_string(),
            },
        }
    }

    /// The trace column's display name.
    pub fn name(&self) -> &str {
        match self {
            TraceInput::Ready(trace) => trace.name(),
            TraceInput::Streamed(streamed) => streamed.name(),
            TraceInput::Unavailable { name, .. } => name,
        }
    }

    /// How many records the input delivers per job (0 when unavailable).
    pub fn n_records(&self) -> u64 {
        match self {
            TraceInput::Ready(trace) => trace.len() as u64,
            TraceInput::Streamed(streamed) => streamed.n_records() as u64,
            TraceInput::Unavailable { .. } => 0,
        }
    }
}

/// The complete outcome of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    series: Vec<SeriesInfo>,
    trace_names: Vec<String>,
    /// Series-major: `jobs[s * n_traces + t]`.
    jobs: Vec<JobOutcome>,
    /// Parallel to `jobs`: per-job observability, present only when
    /// [`SweepOptions::metrics`] was set and the job ran this sweep.
    obs: Vec<Option<JobObs>>,
    threads: usize,
    wall: Duration,
    resumed: usize,
}

impl SweepReport {
    /// Series metadata in spec order.
    pub fn series(&self) -> &[SeriesInfo] {
        &self.series
    }

    /// Series metadata for the series with the given label, or `None`
    /// if no series carries that label.
    pub fn try_series(&self, label: &str) -> Option<&SeriesInfo> {
        self.series.iter().find(|info| info.label == label)
    }

    /// Trace names in suite order.
    pub fn trace_names(&self) -> &[String] {
        &self.trace_names
    }

    /// All job outcomes, series-major then trace order.
    pub fn jobs(&self) -> &[JobOutcome] {
        &self.jobs
    }

    /// The outcome of one (series, trace) cell.
    pub fn job(&self, series: usize, trace: usize) -> Option<&JobOutcome> {
        self.jobs.get(series * self.trace_names.len() + trace)
    }

    /// The observability record of one (series, trace) cell — `None`
    /// when metrics collection was off, the job failed, or the job was
    /// restored from a resume journal.
    pub fn job_obs(&self, series: usize, trace: usize) -> Option<&JobObs> {
        self.obs
            .get(series * self.trace_names.len() + trace)
            .and_then(Option::as_ref)
    }

    fn series_jobs(&self, s: usize) -> &[JobOutcome] {
        let t = self.trace_names.len();
        &self.jobs[s * t..(s + 1) * t]
    }

    /// Successful per-trace results for the series with the given
    /// label, in trace order (failed/timed-out/skipped cells are
    /// omitted). `None` if the label is unknown.
    pub fn try_results(&self, label: &str) -> Option<Vec<SimResult>> {
        let s = self.series.iter().position(|info| info.label == label)?;
        Some(
            self.series_jobs(s)
                .iter()
                .filter_map(|j| j.record().map(|r| r.result.clone()))
                .collect(),
        )
    }

    /// `(label, successful per-trace results)` for every series, in
    /// spec order.
    pub fn all_results(&self) -> Vec<(String, Vec<SimResult>)> {
        self.series
            .iter()
            .map(|info| {
                let results = self
                    .try_results(&info.label)
                    .expect("series labels enumerate existing series");
                (info.label.clone(), results)
            })
            .collect()
    }

    /// Arithmetic-mean MPKI of one series' successful jobs (panics if
    /// the label is unknown — labels come from the caller's own specs).
    pub fn mean_mpki(&self, label: &str) -> f64 {
        let results = self
            .try_results(label)
            .unwrap_or_else(|| panic!("no sweep series labeled {label:?}"));
        mean_mpki(&results)
    }

    /// Run-level health counts.
    pub fn summary(&self) -> RunSummary {
        let mut summary = RunSummary {
            jobs: self.jobs.len(),
            resumed: self.resumed,
            ..RunSummary::default()
        };
        for job in &self.jobs {
            match job.status {
                JobStatus::Ok(_) => summary.ok += 1,
                JobStatus::Failed { .. } => summary.failed += 1,
                JobStatus::TimedOut => summary.timed_out += 1,
                JobStatus::Skipped => summary.skipped += 1,
                JobStatus::Killed => summary.killed += 1,
            }
        }
        summary
    }

    /// Whether every job completed successfully.
    pub fn is_fully_ok(&self) -> bool {
        self.jobs.iter().all(JobOutcome::is_ok)
    }

    /// Worker threads the sweep ran with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// End-to-end wall time of the sweep.
    pub fn wall(&self) -> Duration {
        self.wall
    }

    /// Sum of per-job wall times — the work a serial run would do.
    pub fn cpu(&self) -> Duration {
        self.jobs.iter().map(|j| j.wall).sum()
    }

    /// Observed parallel speedup: total job time over wall time.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            return 1.0;
        }
        self.cpu().as_secs_f64() / wall
    }

    fn render_json(&self, with_timing: bool) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": ");
        out.push_str(&json_string(SWEEP_SCHEMA));
        out.push_str(",\n  \"traces\": [");
        for (i, name) in self.trace_names.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(name));
        }
        out.push_str("],\n  \"series\": [\n");
        for (s, info) in self.series.iter().enumerate() {
            let rows = self.series_jobs(s);
            out.push_str("    {\"label\": ");
            out.push_str(&json_string(&info.label));
            out.push_str(", \"predictor\": ");
            out.push_str(&json_string(&info.predictor));
            out.push_str(", \"predictor_name\": ");
            out.push_str(&json_string(&info.predictor_name));
            out.push_str(&format!(", \"storage_bytes\": {}", info.storage_bytes));
            out.push_str(", \"params\": {");
            for (i, (key, value)) in info.params.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_string(key));
                out.push_str(": ");
                out.push_str(&value.to_json());
            }
            out.push_str("},\n");
            let results: Vec<SimResult> = rows
                .iter()
                .filter_map(|j| j.record().map(|r| r.result.clone()))
                .collect();
            let mean = if results.is_empty() {
                f64::NAN // renders as null: no successful job to average
            } else {
                mean_mpki(&results)
            };
            out.push_str(&format!(
                "     \"mean_mpki\": {},\n     \"results\": [\n",
                json_f64(mean)
            ));
            for (i, job) in rows.iter().enumerate() {
                out.push_str("      {\"trace\": ");
                out.push_str(&json_string(&self.trace_names[i]));
                out.push_str(", \"status\": ");
                out.push_str(&json_string(job.status.name()));
                match &job.status {
                    JobStatus::Ok(record) => {
                        let r = &record.result;
                        out.push_str(&format!(
                            ", \"conditional_branches\": {}, \"mispredictions\": {}, \"instructions\": {}, \"mpki\": {}, \"intervals\": [",
                            r.conditional_branches(),
                            r.mispredictions(),
                            r.instructions(),
                            json_f64(r.mpki()),
                        ));
                        for (k, iv) in record.intervals.iter().enumerate() {
                            if k > 0 {
                                out.push_str(", ");
                            }
                            out.push_str(&format!(
                                "[{}, {}, {}]",
                                iv.instructions,
                                iv.mispredictions,
                                json_f64(iv.mpki())
                            ));
                        }
                        out.push(']');
                    }
                    JobStatus::Failed { error } => {
                        out.push_str(&format!(", \"attempts\": {}, \"error\": ", job.attempts));
                        out.push_str(&json_string(error));
                    }
                    JobStatus::TimedOut | JobStatus::Skipped | JobStatus::Killed => {}
                }
                out.push('}');
                out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
            }
            out.push_str("     ]}");
            out.push_str(if s + 1 < self.series.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        let summary = self.summary();
        out.push_str(&format!(
            "  \"summary\": {{\"jobs\": {}, \"ok\": {}, \"failed\": {}, \"timed_out\": {}, \"skipped\": {}, \"killed\": {}}}",
            summary.jobs, summary.ok, summary.failed, summary.timed_out, summary.skipped,
            summary.killed
        ));
        if with_timing {
            let t = self.trace_names.len();
            out.push_str(&format!(",\n  \"threads\": {}", self.threads));
            out.push_str(&format!(",\n  \"resumed_jobs\": {}", self.resumed));
            out.push_str(&format!(
                ",\n  \"timing\": {{\"wall_ms\": {}, \"cpu_ms\": {}, \"parallel_speedup\": {}, \"jobs_ms\": [",
                json_f64(self.wall.as_secs_f64() * 1e3),
                json_f64(self.cpu().as_secs_f64() * 1e3),
                json_f64(self.speedup()),
            ));
            for s in 0..self.series.len() {
                if s > 0 {
                    out.push_str(", ");
                }
                out.push('[');
                for (i, job) in self.jobs[s * t..(s + 1) * t].iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&json_f64(job.wall.as_secs_f64() * 1e3));
                }
                out.push(']');
            }
            out.push_str("], \"attempts\": [");
            for s in 0..self.series.len() {
                if s > 0 {
                    out.push_str(", ");
                }
                out.push('[');
                for (i, job) in self.jobs[s * t..(s + 1) * t].iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&job.attempts.to_string());
                }
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("\n}\n");
        out
    }

    /// The deterministic results document: independent of thread count
    /// and scheduling (no timing fields). A parallel sweep and a serial
    /// sweep of the same matrix produce byte-identical output, and a
    /// resumed run whose re-run jobs succeed produces byte-identical
    /// output to an all-healthy run of the same matrix.
    pub fn results_json(&self) -> String {
        self.render_json(false)
    }

    /// The full machine-readable document: results plus the timing
    /// section (`wall_ms`, `cpu_ms`, `parallel_speedup`, per-job times
    /// and attempt counts).
    pub fn to_json(&self) -> String {
        self.render_json(true)
    }

    /// Writes [`SweepReport::to_json`] to `<results-dir>/<run>.json`,
    /// creating the directory. The directory is `$BFBP_RESULTS_DIR` when
    /// set, else `target/results`. Returns the written path.
    pub fn write_json(&self, run: &str) -> io::Result<PathBuf> {
        let dir = Self::results_dir()?;
        let path = dir.join(format!("{run}.json"));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    fn results_dir() -> io::Result<PathBuf> {
        let dir = std::env::var("BFBP_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target").join("results"));
        std::fs::create_dir_all(&dir)?;
        Ok(dir)
    }

    /// The `bfbp-metrics/1` document: one entry per job carrying the
    /// predictor's introspection metrics and its top-N H2P table.
    /// Deterministic (independent of thread count and scheduling).
    /// `None` when the sweep ran without [`SweepOptions::metrics`].
    pub fn metrics_json(&self) -> Option<String> {
        if self.obs.iter().all(Option::is_none) {
            return None;
        }
        let t = self.trace_names.len();
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": ");
        out.push_str(&json_string(obs::METRICS_SCHEMA));
        out.push_str(&format!(
            ",\n  \"h2p_top\": {},\n  \"jobs\": [\n",
            obs::H2P_TOP_N
        ));
        for (s, info) in self.series.iter().enumerate() {
            for (i, name) in self.trace_names.iter().enumerate() {
                let job = s * t + i;
                out.push_str("    ");
                out.push_str(&obs::job_obs_json(
                    &info.label,
                    name,
                    self.obs[job].as_ref(),
                    obs::H2P_TOP_N,
                ));
                out.push_str(if job + 1 < self.obs.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
        }
        out.push_str("  ]\n}\n");
        Some(out)
    }

    /// Writes [`SweepReport::metrics_json`] to
    /// `<results-dir>/<run>.metrics.json`; returns `Ok(None)` without
    /// writing when the sweep collected no metrics.
    pub fn write_metrics_json(&self, run: &str) -> io::Result<Option<PathBuf>> {
        let Some(json) = self.metrics_json() else {
            return Ok(None);
        };
        let dir = Self::results_dir()?;
        let path = dir.join(format!("{run}.metrics.json"));
        std::fs::write(&path, json)?;
        Ok(Some(path))
    }
}

fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // A worker that panicked inside a lock poisons it; the protected
    // data (result slots, deadlines) is still structurally valid, so
    // recover instead of cascading the panic to every other worker.
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Cooperative cancellation signal handed to each job: raised by the
/// watchdog thread (parallel runs) and double-checked against the
/// deadline directly (covers serial runs and watchdog scheduling lag).
struct CancelSignal<'a> {
    flag: Option<&'a AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelSignal<'_> {
    fn cancelled(&self) -> bool {
        if let Some(flag) = self.flag {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        match self.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }
}

/// Sleeps for `total`, polling `cancel` in small slices. Returns `false`
/// if cancelled before the sleep finished.
fn cancellable_sleep(total: Duration, cancel: &CancelSignal<'_>) -> bool {
    let slice = Duration::from_millis(2);
    let end = Instant::now() + total;
    loop {
        if cancel.cancelled() {
            return false;
        }
        let now = Instant::now();
        if now >= end {
            return true;
        }
        std::thread::sleep((end - now).min(slice));
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A healthy two-record trace used as raw material for injected
/// trace-format faults (serialized, corrupted, re-read — so the real
/// parse path produces the error).
fn fault_probe_trace() -> Trace {
    Trace::new(
        "fault-probe",
        vec![
            BranchRecord::cond(0x40, 0x80, true, 3),
            BranchRecord::cond(0x80, 0x40, false, 1),
        ],
    )
}

enum AttemptError {
    /// Retryable failure (panic, build error, injected trace fault).
    Failed(String),
    /// The cancellation signal fired; never retried.
    Cancelled,
    /// An injected [`Fault::Kill`] ended the attempt after this many
    /// records, simulating a process death; never retried.
    Killed(u64),
}

/// A trace input opened for one attempt: the shared in-memory trace, or
/// this attempt's private streaming source.
enum OpenedInput<'a> {
    Ready(&'a Trace),
    Source(Box<dyn TraceSource>),
}

/// What one executed job leaves behind: its terminal outcome plus the
/// optional observability payload (metrics + H2P) of the final attempt.
type ExecutedJob = (JobOutcome, Option<Box<JobObs>>);

/// Everything a worker needs to run jobs, shared immutably across the
/// pool.
struct SweepContext<'a> {
    registry: &'a PredictorRegistry,
    specs: &'a [PredictorSpec],
    inputs: &'a [TraceInput],
    n_traces: usize,
    interval_insts: u64,
    retry: RetryPolicy,
    faults: BTreeMap<usize, Fault>,
    journal: Option<Journal>,
    /// Matrix fingerprint, stamped into (and checked against) every
    /// mid-job checkpoint.
    matrix: u64,
    /// Mid-job checkpoint cadence in records; `0` disables.
    checkpoint_every: u64,
    /// Directory mid-job checkpoints live in.
    checkpoint_dir: Option<PathBuf>,
    /// Collect per-job introspection metrics and H2P attribution.
    collect_metrics: bool,
    /// Span/event journal shared by all workers (internally locked).
    events: Option<EventJournal>,
    /// Live stderr progress line shared by all workers.
    progress: Option<Progress>,
    /// Flight-recorder ring capacity; `0` disables per-job recording.
    flight_capacity: usize,
    /// Directory postmortem dumps are written to when an attempt dies.
    postmortem_dir: Option<PathBuf>,
}

impl SweepContext<'_> {
    fn emit(&self, event: Event) {
        if let Some(events) = &self.events {
            events.emit(event);
        }
    }

    fn job_event(&self, ev: &'static str, job: usize) -> Event {
        Event::new(ev)
            .num("job", job as u64)
            .str("series", &self.specs[job / self.n_traces].label())
            .str("trace", self.inputs[job % self.n_traces].name())
    }

    /// The on-disk path job `job`'s mid-job checkpoint lives at, when
    /// mid-job checkpointing is configured.
    fn ckpt_path(&self, job: usize) -> Option<PathBuf> {
        if self.checkpoint_every == 0 {
            return None;
        }
        self.checkpoint_dir
            .as_ref()
            .map(|dir| dir.join(format!("job-{job}.ckpt")))
    }

    /// Reads, validates, and applies the mid-job checkpoint at `path`:
    /// the predictor state is loaded in place and the observer table
    /// (when metrics are on) is returned alongside the accounting
    /// snapshot to resume from. Any problem — unreadable file, wrong
    /// matrix/job/predictor/trace, a snapshot beyond the end of the
    /// trace, or undecodable state — returns the reason instead, in
    /// which case the predictor may hold partially loaded state and
    /// must be rebuilt by the caller.
    fn restore_ckpt(
        &self,
        job: usize,
        path: &Path,
        trace_name: &str,
        total_records: u64,
        predictor: &mut dyn ConditionalPredictor,
    ) -> Result<(SimCheckpoint, Option<H2pTable>), String> {
        let spec = &self.specs[job / self.n_traces];
        let loaded = JobCheckpoint::read_from(path).map_err(|e| format!("unreadable: {e}"))?;
        if loaded.matrix_id != self.matrix {
            return Err(format!(
                "matrix mismatch: checkpoint {:#018x}, sweep {:#018x}",
                loaded.matrix_id, self.matrix
            ));
        }
        if loaded.job_index != job as u64 {
            return Err(format!(
                "job mismatch: checkpoint {}, expected {job}",
                loaded.job_index
            ));
        }
        if loaded.predictor != spec.label() {
            return Err(format!(
                "predictor mismatch: checkpoint {:?}, expected {:?}",
                loaded.predictor,
                spec.label()
            ));
        }
        if loaded.trace != trace_name {
            return Err(format!(
                "trace mismatch: checkpoint {:?}, expected {trace_name:?}",
                loaded.trace
            ));
        }
        if loaded.sim.records > total_records {
            return Err(format!(
                "snapshot at record {} lies beyond the {total_records}-record trace",
                loaded.sim.records
            ));
        }
        if !predictor.capabilities().checkpointable {
            return Err("predictor has no checkpoint capability".to_owned());
        }
        let restorable = predictor
            .checkpointing()
            .expect("capability descriptor said checkpointable");
        let mut reader = StateReader::new(&loaded.sim.predictor);
        restorable
            .load_state(&mut reader)
            .map_err(|e| format!("predictor state: {e}"))?;
        reader
            .finish()
            .map_err(|e| format!("predictor state: {e}"))?;
        let h2p = if self.collect_metrics {
            if loaded.observer.is_empty() {
                return Err("no observer state, but metrics collection is on".to_owned());
            }
            let mut table = H2pTable::default();
            let mut reader = StateReader::new(&loaded.observer);
            table
                .load_state(&mut reader)
                .map_err(|e| format!("observer state: {e}"))?;
            reader
                .finish()
                .map_err(|e| format!("observer state: {e}"))?;
            Some(table)
        } else {
            None
        };
        Ok((loaded.sim, h2p))
    }

    fn run_attempt(
        &self,
        job: usize,
        attempt: u32,
        input: &TraceInput,
        fault: Option<&Fault>,
        cancel: &CancelSignal<'_>,
    ) -> Result<(JobRecord, Option<Box<JobObs>>), AttemptError> {
        let attempt_start = Instant::now();
        match fault {
            // The guard runs the injected delay; a cancelled sleep means
            // the watchdog fired mid-delay.
            Some(Fault::Delay { millis })
                if !cancellable_sleep(Duration::from_millis(*millis), cancel) =>
            {
                return Err(AttemptError::Cancelled);
            }
            Some(Fault::TraceError { kind }) => {
                let bytes = corrupt::corrupted(&fault_probe_trace(), *kind);
                let err =
                    read_trace(&bytes[..]).expect_err("corrupted probe stream must fail to parse");
                return Err(AttemptError::Failed(format!("trace load failed: {err}")));
            }
            _ => {}
        }
        let kill_after = match fault {
            Some(Fault::Kill { record }) => Some(*record),
            _ => None,
        };
        let spec = &self.specs[job / self.n_traces];
        let ckpt_path = self.ckpt_path(job);
        // The flight recorder lives OUTSIDE the unwind boundary: a
        // predictor panic mid-simulation must not take the black box
        // down with it — the recorded window up to the panic is exactly
        // what the postmortem needs.
        let mut flight = (self.flight_capacity > 0 && self.postmortem_dir.is_some())
            .then(|| FlightRecorder::new(self.flight_capacity));
        let flight_ref = &mut flight;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(Fault::Panic { first_attempts }) = fault {
                if attempt <= *first_attempts {
                    panic!("injected panic (job {job}, attempt {attempt})");
                }
            }
            let mut predictor = self
                .registry
                .build_spec(spec)
                .map_err(|e| AttemptError::Failed(format!("predictor build failed: {e}")))?;
            // The input is opened before the simulation closures are
            // built so the cache accounting of the open is known up
            // front (event line + per-job metrics counter). Ready
            // traces replay in place, streamed traces open a fresh
            // per-job source — either way the record sequence, and
            // therefore the result document, is identical.
            let (mut opened, total_records, regenerated) = match input {
                TraceInput::Ready(trace) => (
                    OpenedInput::Ready(trace.as_ref()),
                    trace.len() as u64,
                    false,
                ),
                TraceInput::Streamed(streamed) => {
                    let (source, status) = streamed.open_source();
                    if streamed.file.is_some() {
                        self.emit(
                            Event::new("trace_cache")
                                .str("trace", streamed.name())
                                .num("records", streamed.n_records() as u64)
                                .str("status", status.name())
                                .num("generated", u64::from(status.generated())),
                        );
                    }
                    (
                        OpenedInput::Source(source),
                        streamed.n_records() as u64,
                        status == CacheStatus::Regenerated,
                    )
                }
                // `Unavailable` is rejected in `run_job_inner` before
                // any attempt starts, so reaching it here is an engine
                // bug.
                TraceInput::Unavailable { name, .. } => {
                    unreachable!("unavailable trace {name:?} reached the simulation loop")
                }
            };
            // Mid-job resume: a valid snapshot restores the predictor,
            // the accounting, and the observer; anything wrong with the
            // file quarantines it and the job runs from zero instead —
            // degraded, never wrong.
            let mut resume: Option<SimCheckpoint> = None;
            let mut restored_h2p: Option<H2pTable> = None;
            if let Some(path) = ckpt_path.as_ref().filter(|p| p.exists()) {
                match self.restore_ckpt(job, path, input.name(), total_records, predictor.as_mut())
                {
                    Ok((snapshot, h2p)) => {
                        self.emit(
                            Event::new("ckpt_restore")
                                .num("job", job as u64)
                                .num("attempt", u64::from(attempt))
                                .num("records", snapshot.records),
                        );
                        resume = Some(snapshot);
                        restored_h2p = h2p;
                    }
                    Err(reason) => {
                        let mut event = Event::new("ckpt_quarantined")
                            .num("job", job as u64)
                            .str("error", &reason);
                        if let Some(target) = ckpt::quarantine_ckpt(path) {
                            event = event.str("file", &target.display().to_string());
                        }
                        self.emit(event);
                        // A failed restore can leave partially loaded
                        // predictor state behind.
                        predictor = self.registry.build_spec(spec).map_err(|e| {
                            AttemptError::Failed(format!("predictor build failed: {e}"))
                        })?;
                    }
                }
            }
            // Shared by the observer closure and the checkpoint sink —
            // closure captures cannot split a borrow through the Box.
            let obs = RefCell::new(self.collect_metrics.then(|| Box::new(JobObs::default())));
            if let Some(obs) = obs.borrow_mut().as_mut() {
                if let Some(h2p) = restored_h2p {
                    obs.h2p = h2p;
                }
                if regenerated {
                    obs.metrics.incr("trace_cache.regenerated", 1);
                }
            }
            let mut cancelled = || cancel.cancelled();
            let mut observe = |pc: u64, taken: bool, mispredicted: bool| {
                if let Some(obs) = obs.borrow_mut().as_mut() {
                    obs.h2p.record(pc, taken, mispredicted);
                }
            };
            let mut save = |snapshot: SimCheckpoint| {
                let Some(path) = ckpt_path.as_deref() else {
                    return;
                };
                let observer = match obs.borrow().as_deref() {
                    Some(o) => {
                        let mut w = StateWriter::new();
                        o.h2p.save_state(&mut w);
                        w.into_bytes()
                    }
                    None => Vec::new(),
                };
                let records = snapshot.records;
                let file = JobCheckpoint {
                    matrix_id: self.matrix,
                    job_index: job as u64,
                    predictor: spec.label(),
                    trace: input.name().to_owned(),
                    sim: snapshot,
                    observer,
                };
                match file.write_to(path) {
                    Ok(()) => {
                        self.emit(
                            Event::new("ckpt_write")
                                .num("job", job as u64)
                                .num("records", records),
                        );
                        if let Some(journal) = &self.journal {
                            if let Err(e) = journal.record_ckpt(job, records, path) {
                                eprintln!("warning: checkpoint journal write failed: {e}");
                            }
                        }
                    }
                    // "No checkpoint taken": the previous snapshot, if
                    // any, stays valid.
                    Err(e) => {
                        eprintln!("warning: cannot write checkpoint {}: {e}", path.display())
                    }
                }
            };
            let mut sim = Simulation::new(predictor.as_mut())
                .intervals(self.interval_insts)
                .cancel(&mut cancelled);
            if self.collect_metrics {
                sim = sim.observer(&mut observe);
            }
            if ckpt_path.is_some() {
                sim = sim.checkpoint_every(self.checkpoint_every, &mut save);
            }
            if let Some(records) = kill_after {
                sim = sim.kill_after(records);
            }
            if let Some(snapshot) = resume {
                sim = sim.resume_from(snapshot);
            }
            if let Some(recorder) = flight_ref.as_mut() {
                // A retried attempt starts a fresh simulation; stale
                // entries from the previous attempt would lie about it.
                recorder.clear();
                sim = sim.recorder(recorder);
            }
            let driven = match &mut opened {
                OpenedInput::Ready(trace) => sim.run_trace(trace),
                OpenedInput::Source(source) => sim.run(source.as_mut()),
            };
            let (result, intervals) = driven.map_err(|e| match e {
                SimulationError::Aborted => AttemptError::Cancelled,
                SimulationError::Source(err) => {
                    AttemptError::Failed(format!("trace stream failed: {err}"))
                }
                SimulationError::Killed(records) => AttemptError::Killed(records),
                SimulationError::Resume(msg) => {
                    AttemptError::Failed(format!("checkpoint resume failed: {msg}"))
                }
            })?;
            let mut obs = obs.into_inner();
            // A finished job's mid-job snapshot is spent; left behind it
            // would resume a future sweep of the same matrix from a
            // stale mid-point of an already-complete job.
            if let Some(path) = &ckpt_path {
                let _ = std::fs::remove_file(path);
            }
            if let Some(obs) = &mut obs {
                obs.metrics
                    .counter("sim.instructions", result.instructions());
                obs.metrics
                    .counter("sim.conditional_branches", result.conditional_branches());
                obs.metrics
                    .counter("sim.mispredictions", result.mispredictions());
                if let Some(introspect) = predictor.introspection() {
                    introspect.introspect(&mut obs.metrics);
                }
            }
            Ok((
                JobRecord {
                    result,
                    intervals,
                    wall: attempt_start.elapsed(),
                },
                obs,
            ))
        }));
        let result = match outcome {
            Ok(result) => result,
            Err(payload) => Err(AttemptError::Failed(format!(
                "panic: {}",
                panic_message(payload)
            ))),
        };
        // Any attempt-terminal error — failure, panic, watchdog
        // cancellation, injected kill — dumps the black box before the
        // error propagates; a later successful attempt leaves the dump
        // of the last dead one for inspection.
        if let Err(err) = &result {
            let (status, detail) = match err {
                AttemptError::Failed(msg) => ("failed", msg.clone()),
                AttemptError::Cancelled => ("timed_out", format!("attempt {attempt} cancelled")),
                AttemptError::Killed(records) => {
                    ("killed", format!("killed after {records} records"))
                }
            };
            self.write_postmortem(job, status, &detail, flight.as_ref());
        }
        result
    }

    /// Writes job `job`'s `bfbp-postmortem/1` dump (atomic tmp+rename,
    /// like checkpoint files) and references it from the event journal.
    /// Best-effort: a failed write warns and the job error still
    /// propagates unchanged.
    fn write_postmortem(
        &self,
        job: usize,
        status: &str,
        detail: &str,
        recorder: Option<&FlightRecorder>,
    ) {
        let (Some(recorder), Some(dir)) = (recorder, self.postmortem_dir.as_ref()) else {
            return;
        };
        let series = self.specs[job / self.n_traces].label();
        let trace = self.inputs[job % self.n_traces].name();
        let json = obs::postmortem_json(recorder, &series, trace, job, status, detail);
        let path = dir.join(format!("job-{job}.postmortem.json"));
        match ckpt::write_atomic(&path, json.as_bytes()) {
            Ok(()) => self.emit(
                Event::new("postmortem")
                    .num("job", job as u64)
                    .str("status", status)
                    .num("entries", recorder.len() as u64)
                    .str("file", &path.display().to_string()),
            ),
            Err(e) => eprintln!("warning: cannot write postmortem {}: {e}", path.display()),
        }
    }

    /// Feeds one finished job into the live progress line, crediting its
    /// trace's record count (successful jobs only) toward the
    /// records/sec rate.
    fn tick_progress(&self, job: usize, outcome: &JobOutcome) {
        if let Some(progress) = &self.progress {
            let records = if outcome.is_ok() {
                self.inputs[job % self.n_traces].n_records()
            } else {
                0
            };
            progress.tick(outcome.is_ok(), records, outcome.wall.as_secs_f64());
        }
    }

    /// Runs one job to its terminal status: trace availability check,
    /// fault lookup, attempt/retry loop, panic isolation. Opens a
    /// `job_open` span in the event journal and always closes it with a
    /// `job_close` carrying the terminal [`JobStatus`] keyword.
    fn run_job(&self, job: usize, cancel: &CancelSignal<'_>) -> ExecutedJob {
        let job_start = Instant::now();
        self.emit(self.job_event("job_open", job));
        let (outcome, obs) = self.run_job_inner(job, job_start, cancel);
        if let JobStatus::Ok(record) = &outcome.status {
            for (index, iv) in record.intervals.iter().enumerate() {
                self.emit(
                    Event::new("interval")
                        .num("job", job as u64)
                        .num("index", index as u64)
                        .num("instructions", iv.instructions)
                        .num("mispredictions", iv.mispredictions)
                        .float("mpki", iv.mpki()),
                );
            }
        }
        let mut close = self
            .job_event("job_close", job)
            .str("status", outcome.status.name())
            .num("attempts", u64::from(outcome.attempts))
            .float("wall_ms", outcome.wall.as_secs_f64() * 1e3);
        match &outcome.status {
            JobStatus::Ok(record) => close = close.float("mpki", record.result.mpki()),
            JobStatus::Failed { error } => close = close.str("error", error),
            JobStatus::TimedOut | JobStatus::Skipped | JobStatus::Killed => {}
        }
        self.emit(close);
        (outcome, obs)
    }

    fn run_job_inner(
        &self,
        job: usize,
        job_start: Instant,
        cancel: &CancelSignal<'_>,
    ) -> ExecutedJob {
        let fault = self.faults.get(&job);
        if matches!(fault, Some(Fault::Skip)) {
            return (
                JobOutcome {
                    status: JobStatus::Skipped,
                    attempts: 0,
                    wall: job_start.elapsed(),
                },
                None,
            );
        }
        let input = &self.inputs[job % self.n_traces];
        if let TraceInput::Unavailable { name, error } = input {
            return (
                JobOutcome {
                    status: JobStatus::Failed {
                        error: format!("trace {name:?} unavailable: {error}"),
                    },
                    attempts: 0,
                    wall: job_start.elapsed(),
                },
                None,
            );
        }
        let max_attempts = self.retry.max_attempts.max(1);
        let mut last_error = String::new();
        for attempt in 1..=max_attempts {
            match self.run_attempt(job, attempt, input, fault, cancel) {
                Ok((record, obs)) => {
                    return (
                        JobOutcome {
                            status: JobStatus::Ok(record),
                            attempts: attempt,
                            wall: job_start.elapsed(),
                        },
                        obs,
                    );
                }
                Err(AttemptError::Cancelled) => {
                    // The watchdog (or the deadline check) fired: record
                    // the moment in the journal — the final status alone
                    // cannot say *when* the budget ran out.
                    self.emit(
                        Event::new("timeout")
                            .num("job", job as u64)
                            .num("attempt", u64::from(attempt))
                            .float("wall_ms", job_start.elapsed().as_secs_f64() * 1e3),
                    );
                    return (
                        JobOutcome {
                            status: JobStatus::TimedOut,
                            attempts: attempt,
                            wall: job_start.elapsed(),
                        },
                        None,
                    );
                }
                Err(AttemptError::Killed(records)) => {
                    // The simulated process death: no retry, and the
                    // caller's journal checkpoint is suppressed too —
                    // a real SIGKILL leaves only the mid-job snapshot
                    // on disk for the next run to find.
                    self.emit(
                        Event::new("killed")
                            .num("job", job as u64)
                            .num("attempt", u64::from(attempt))
                            .num("records", records),
                    );
                    return (
                        JobOutcome {
                            status: JobStatus::Killed,
                            attempts: attempt,
                            wall: job_start.elapsed(),
                        },
                        None,
                    );
                }
                Err(AttemptError::Failed(error)) => {
                    if attempt < max_attempts {
                        self.emit(
                            Event::new("retry")
                                .num("job", job as u64)
                                .num("attempt", u64::from(attempt))
                                .str("error", &error),
                        );
                    }
                    last_error = error;
                    if attempt < max_attempts
                        && !self.retry.backoff.is_zero()
                        && !cancellable_sleep(self.retry.backoff, cancel)
                    {
                        self.emit(
                            Event::new("timeout")
                                .num("job", job as u64)
                                .num("attempt", u64::from(attempt))
                                .float("wall_ms", job_start.elapsed().as_secs_f64() * 1e3),
                        );
                        return (
                            JobOutcome {
                                status: JobStatus::TimedOut,
                                attempts: attempt,
                                wall: job_start.elapsed(),
                            },
                            None,
                        );
                    }
                }
            }
        }
        (
            JobOutcome {
                status: JobStatus::Failed { error: last_error },
                attempts: max_attempts,
                wall: job_start.elapsed(),
            },
            None,
        )
    }

    /// Journals a completed job; journal write failures degrade to a
    /// warning (the sweep's in-memory results are unaffected).
    fn checkpoint(&self, job: usize, outcome: &JobOutcome) {
        // A killed job models a process death: a real SIGKILL would
        // never reach the journal, so the simulated one must not
        // either — the next run should see only the mid-job snapshot.
        if matches!(outcome.status, JobStatus::Killed) {
            return;
        }
        if let Some(journal) = &self.journal {
            if let Err(e) = journal.record(job, outcome) {
                eprintln!("warning: sweep checkpoint write failed: {e}");
            }
        }
    }
}

/// Runs the full (spec × trace) matrix in parallel with per-job fault
/// isolation and reassembles deterministic per-series results.
///
/// All specs are validated (built once) up front, so an unknown
/// predictor or bad parameter fails before any simulation starts;
/// individual job failures after that point degrade to per-job
/// statuses, never a run-level error.
///
/// # Errors
///
/// Returns [`SweepError::Build`] for an invalid spec and
/// [`SweepError::Journal`] when a checkpoint journal cannot be
/// created/read or belongs to a different matrix.
pub fn sweep(
    registry: &PredictorRegistry,
    specs: &[PredictorSpec],
    runner: &SuiteRunner,
    options: &SweepOptions,
) -> Result<SweepReport, SweepError> {
    let inputs: Vec<TraceInput> = runner
        .traces()
        .iter()
        .map(|t| TraceInput::Ready(t.clone()))
        .collect();
    sweep_inputs(registry, specs, &inputs, options)
}

/// [`sweep`] over explicit trace columns, including quarantined
/// ([`TraceInput::Unavailable`]) ones — the entry point for sweeping
/// on-disk trace files.
///
/// # Errors
///
/// See [`sweep`].
pub fn sweep_inputs(
    registry: &PredictorRegistry,
    specs: &[PredictorSpec],
    inputs: &[TraceInput],
    options: &SweepOptions,
) -> Result<SweepReport, SweepError> {
    let start = Instant::now();
    let mut series = Vec::with_capacity(specs.len());
    for spec in specs {
        let probe = registry.build_spec(spec)?;
        series.push(SeriesInfo {
            label: spec.label(),
            predictor: spec.predictor().to_owned(),
            params: registry.effective_params(spec)?,
            predictor_name: probe.name().into_owned(),
            storage_bytes: probe.storage().total_bytes(),
        });
    }

    let trace_names: Vec<String> = inputs.iter().map(|t| t.name().to_owned()).collect();
    let n_traces = inputs.len();
    let n_jobs = specs.len() * n_traces;
    let matrix = journal::matrix_id(&series, &trace_names, options.interval_insts);

    // Resume: restore completed jobs recorded for this exact matrix.
    let mut restored: BTreeMap<usize, JobOutcome> = BTreeMap::new();
    if let Some(path) = &options.resume_from {
        let loaded = Journal::load(path, Some(matrix))?;
        restored = loaded.completed();
        restored.retain(|job, _| *job < n_jobs);
    }
    let resumed = restored.len();

    // Checkpoint journal: append when resuming from the same file so
    // earlier completions are preserved, otherwise start fresh.
    let journal_handle = match &options.journal {
        Some(path) if options.resume_from.as_deref() == Some(path.as_path()) => {
            Some(Journal::append_to(path)?)
        }
        Some(path) => Some(Journal::create(path, matrix, n_jobs)?),
        None => None,
    };

    let pending: Vec<usize> = (0..n_jobs).filter(|j| !restored.contains_key(j)).collect();

    let threads = if options.threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        options.threads
    }
    .min(pending.len().max(1));

    // The event journal degrades to a warning when unopenable:
    // observability must never take down a sweep that would otherwise
    // run.
    let events = options.events.as_ref().and_then(|path| {
        EventJournal::open(path)
            .map_err(|e| eprintln!("warning: cannot open event journal {}: {e}", path.display()))
            .ok()
    });
    let context = SweepContext {
        registry,
        specs,
        inputs,
        n_traces,
        interval_insts: options.interval_insts,
        retry: options.retry,
        faults: options
            .fault_plan
            .as_ref()
            .map(|plan| plan.materialized(n_jobs))
            .unwrap_or_default(),
        journal: journal_handle,
        matrix,
        checkpoint_every: options.checkpoint_every,
        checkpoint_dir: options.checkpoint_dir.clone(),
        collect_metrics: options.metrics,
        events,
        progress: options.progress.then(|| Progress::new(pending.len())),
        flight_capacity: options.flight_recorder,
        postmortem_dir: options.postmortem_dir.clone(),
    };
    context.emit(
        Event::new("sweep_open")
            .num("jobs", n_jobs as u64)
            .num("pending", pending.len() as u64)
            .num("restored", resumed as u64)
            .num("series", specs.len() as u64)
            .num("traces", n_traces as u64)
            .num("threads", threads as u64),
    );

    let mut executed: Vec<Option<ExecutedJob>> = vec![None; n_jobs];
    if threads <= 1 {
        for &job in &pending {
            let cancel = CancelSignal {
                flag: None,
                deadline: options.timeout.map(|t| Instant::now() + t),
            };
            let (outcome, obs) = context.run_job(job, &cancel);
            context.checkpoint(job, &outcome);
            context.tick_progress(job, &outcome);
            executed[job] = Some((outcome, obs));
        }
    } else {
        let next = AtomicUsize::new(0);
        let slots: Mutex<&mut Vec<Option<ExecutedJob>>> = Mutex::new(&mut executed);
        let cancel_flags: Vec<AtomicBool> = (0..n_jobs).map(|_| AtomicBool::new(false)).collect();
        let deadlines: Mutex<Vec<Option<Instant>>> = Mutex::new(vec![None; n_jobs]);
        let pool_done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            // The watchdog: measures every in-flight job against its
            // wall-clock deadline and raises that job's cancellation
            // flag, so an overrunning job is cut off even if its own
            // deadline arithmetic is starved (the flag is checked at
            // every cancellation point).
            if let Some(timeout) = options.timeout {
                let tick = (timeout / 4).clamp(Duration::from_millis(1), Duration::from_millis(10));
                let (pool_done, deadlines, cancel_flags) = (&pool_done, &deadlines, &cancel_flags);
                scope.spawn(move || {
                    while !pool_done.load(Ordering::Acquire) {
                        std::thread::sleep(tick);
                        let now = Instant::now();
                        let deadlines = lock_or_recover(deadlines);
                        for (job, deadline) in deadlines.iter().enumerate() {
                            if deadline.is_some_and(|d| now >= d) {
                                cancel_flags[job].store(true, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| loop {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&job) = pending.get(slot) else {
                            break;
                        };
                        let deadline = options.timeout.map(|t| Instant::now() + t);
                        if deadline.is_some() {
                            lock_or_recover(&deadlines)[job] = deadline;
                        }
                        let cancel = CancelSignal {
                            flag: Some(&cancel_flags[job]),
                            deadline,
                        };
                        let (outcome, obs) = context.run_job(job, &cancel);
                        if deadline.is_some() {
                            lock_or_recover(&deadlines)[job] = None;
                        }
                        context.checkpoint(job, &outcome);
                        context.tick_progress(job, &outcome);
                        lock_or_recover(&slots)[job] = Some((outcome, obs));
                    })
                })
                .collect();
            for worker in workers {
                // A worker can only panic outside the per-job isolation
                // boundary (an engine bug, not a predictor bug); its
                // claimed-but-unfinished job degrades to a failed slot
                // below instead of tearing down the sweep.
                let _ = worker.join();
            }
            pool_done.store(true, Ordering::Release);
        });
    }

    let mut job_obs: Vec<Option<JobObs>> = Vec::with_capacity(n_jobs);
    let jobs: Vec<JobOutcome> = (0..n_jobs)
        .map(|job| {
            if let Some(outcome) = restored.remove(&job) {
                job_obs.push(None);
                return outcome;
            }
            let (outcome, obs) = executed[job].take().unwrap_or_else(|| {
                (
                    JobOutcome {
                        status: JobStatus::Failed {
                            error: "worker thread lost before completing this job".to_owned(),
                        },
                        attempts: 0,
                        wall: Duration::ZERO,
                    },
                    None,
                )
            });
            job_obs.push(obs.map(|boxed| *boxed));
            outcome
        })
        .collect();

    let report = SweepReport {
        series,
        trace_names,
        jobs,
        obs: job_obs,
        threads,
        wall: start.elapsed(),
        resumed,
    };
    let summary = report.summary();
    context.emit(
        Event::new("sweep_close")
            .num("ok", summary.ok as u64)
            .num("failed", summary.failed as u64)
            .num("timed_out", summary.timed_out as u64)
            .num("skipped", summary.skipped as u64)
            .num("killed", summary.killed as u64)
            .float("wall_ms", report.wall.as_secs_f64() * 1e3),
    );
    if let Some(progress) = &context.progress {
        progress.finish();
    }
    Ok(report)
}

/// [`sweep`] pinned to one worker thread — the reference schedule.
///
/// # Errors
///
/// See [`sweep`].
pub fn sweep_serial(
    registry: &PredictorRegistry,
    specs: &[PredictorSpec],
    runner: &SuiteRunner,
) -> Result<SweepReport, SweepError> {
    sweep(registry, specs, runner, &SweepOptions::serial())
}

/// Renders a JSON string literal (quoted, escaped).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` as a JSON number (`null` for non-finite values).
/// Rust's shortest-roundtrip `Display` never uses exponent notation, so
/// the output is always a valid JSON literal and deterministic.
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        let mut s = x.to_string();
        if !s.contains('.') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfbp_trace::synth::suite;

    fn tiny_runner() -> SuiteRunner {
        SuiteRunner::from_specs(
            vec![suite::find("INT1").unwrap(), suite::find("MM2").unwrap()],
            0.005,
        )
    }

    fn two_specs() -> Vec<PredictorSpec> {
        vec![
            PredictorSpec::new("static-taken").labeled("T"),
            PredictorSpec::new("static-not-taken").labeled("NT"),
        ]
    }

    #[test]
    fn sweep_covers_the_matrix_in_order() {
        let registry = PredictorRegistry::with_builtins();
        let runner = tiny_runner();
        let report = sweep(&registry, &two_specs(), &runner, &SweepOptions::default()).unwrap();
        assert_eq!(report.jobs().len(), 4);
        assert!(report.is_fully_ok());
        assert_eq!(report.trace_names(), &["INT1".to_owned(), "MM2".to_owned()]);
        let t = report.try_results("T").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].trace_name(), "INT1");
        assert_eq!(t[1].trace_name(), "MM2");
        // Complementary predictors partition the mispredictions.
        let nt = report.try_results("NT").unwrap();
        for (a, b) in t.iter().zip(&nt) {
            assert_eq!(
                a.mispredictions() + b.mispredictions(),
                a.conditional_branches()
            );
        }
        assert!(report.try_results("nope").is_none());
        assert!(report.try_series("T").is_some());
        assert!(report.try_series("nope").is_none());
        let summary = report.summary();
        assert_eq!((summary.jobs, summary.ok), (4, 4));
    }

    #[test]
    fn parallel_results_json_is_byte_identical_to_serial() {
        let registry = PredictorRegistry::with_builtins();
        let runner = tiny_runner();
        let specs = two_specs();
        let serial = sweep_serial(&registry, &specs, &runner).unwrap();
        let parallel = sweep(
            &registry,
            &specs,
            &runner,
            &SweepOptions::default().with_threads(4),
        )
        .unwrap();
        assert_eq!(serial.threads(), 1);
        assert_eq!(parallel.threads(), 4);
        assert_eq!(serial.results_json(), parallel.results_json());
    }

    #[test]
    fn unknown_spec_fails_before_simulating() {
        let registry = PredictorRegistry::with_builtins();
        let runner = tiny_runner();
        let specs = [PredictorSpec::new("no-such-predictor")];
        assert!(matches!(
            sweep(&registry, &specs, &runner, &SweepOptions::default()),
            Err(SweepError::Build(BuildError::UnknownPredictor { .. }))
        ));
    }

    #[test]
    fn timing_fields_present_only_in_full_json() {
        let registry = PredictorRegistry::with_builtins();
        let runner = tiny_runner();
        let report = sweep_serial(&registry, &two_specs(), &runner).unwrap();
        let results = report.results_json();
        let full = report.to_json();
        assert!(!results.contains("\"timing\""));
        assert!(results.contains("\"schema\": \"bfbp-sweep/2\""));
        assert!(results.contains("\"summary\""));
        assert!(results.contains("\"status\": \"ok\""));
        assert!(full.contains("\"timing\""));
        assert!(full.contains("\"parallel_speedup\""));
        assert!(full.contains("\"wall_ms\""));
        assert!(full.contains("\"attempts\""));
        assert!(report.speedup() > 0.0);
    }

    #[test]
    fn intervals_cover_the_whole_trace() {
        let registry = PredictorRegistry::with_builtins();
        let runner = tiny_runner();
        let options = SweepOptions {
            threads: 1,
            interval_insts: 1000,
            ..SweepOptions::default()
        };
        let report = sweep(&registry, &two_specs(), &runner, &options).unwrap();
        for job in report.jobs() {
            let record = job.record().expect("healthy sweep");
            let total: u64 = record.intervals.iter().map(|iv| iv.instructions).sum();
            assert_eq!(total, record.result.instructions());
            let misp: u64 = record.intervals.iter().map(|iv| iv.mispredictions).sum();
            assert_eq!(misp, record.result.mispredictions());
        }
    }

    #[test]
    fn injected_panic_fails_one_job_and_spares_the_rest() {
        let registry = PredictorRegistry::with_builtins();
        let runner = tiny_runner();
        let options = SweepOptions::serial().with_fault_plan(FaultPlan::new().panic_at(1));
        let report = sweep(&registry, &two_specs(), &runner, &options).unwrap();
        let summary = report.summary();
        assert_eq!((summary.ok, summary.failed), (3, 1));
        let failed = &report.jobs()[1];
        assert_eq!(failed.attempts, 1);
        match &failed.status {
            JobStatus::Failed { error } => {
                assert!(error.contains("injected panic"), "{error}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        // The failed cell renders with its status; the run summary too.
        let json = report.results_json();
        assert!(json.contains("\"status\": \"failed\""), "{json}");
        assert!(json.contains("\"failed\": 1"), "{json}");
    }

    #[test]
    fn flaky_panic_succeeds_within_retry_budget() {
        let registry = PredictorRegistry::with_builtins();
        let runner = tiny_runner();
        let options = SweepOptions::serial()
            .with_retry(RetryPolicy::retries(2, Duration::ZERO))
            .with_fault_plan(FaultPlan::new().flaky_panic_at(2, 1));
        let report = sweep(&registry, &two_specs(), &runner, &options).unwrap();
        assert!(report.is_fully_ok());
        assert_eq!(report.jobs()[2].attempts, 2);
        assert_eq!(report.jobs()[0].attempts, 1);
    }

    #[test]
    fn skip_and_trace_fault_statuses_are_reported() {
        let registry = PredictorRegistry::with_builtins();
        let runner = tiny_runner();
        let plan = FaultPlan::new()
            .skip_at(0)
            .trace_error_at(3, corrupt::CorruptKind::ChecksumMismatch);
        let options = SweepOptions::serial().with_fault_plan(plan);
        let report = sweep(&registry, &two_specs(), &runner, &options).unwrap();
        assert_eq!(report.jobs()[0].status, JobStatus::Skipped);
        match &report.jobs()[3].status {
            JobStatus::Failed { error } => {
                assert!(error.contains("checksum mismatch"), "{error}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        let summary = report.summary();
        assert_eq!((summary.ok, summary.failed, summary.skipped), (2, 1, 1));
        assert!(!report.is_fully_ok());
        let json = report.results_json();
        assert!(json.contains("\"status\": \"skipped\""));
    }

    #[test]
    fn unavailable_trace_quarantines_only_its_column() {
        let registry = PredictorRegistry::with_builtins();
        let healthy = suite::find("INT1").unwrap().generate_len(1000);
        let inputs = [
            TraceInput::ready(healthy),
            TraceInput::Unavailable {
                name: "broken".to_owned(),
                error: "checksum mismatch: footer 0x1, computed 0x2".to_owned(),
            },
        ];
        let report =
            sweep_inputs(&registry, &two_specs(), &inputs, &SweepOptions::serial()).unwrap();
        assert_eq!(report.trace_names()[1], "broken");
        let summary = report.summary();
        assert_eq!((summary.ok, summary.failed), (2, 2));
        for s in 0..2 {
            assert!(report.job(s, 0).unwrap().is_ok());
            let broken = report.job(s, 1).unwrap();
            assert_eq!(broken.attempts, 0);
            match &broken.status {
                JobStatus::Failed { error } => {
                    assert!(error.contains("unavailable"), "{error}")
                }
                other => panic!("expected Failed, got {other:?}"),
            }
        }
    }

    #[test]
    fn options_from_env_parse_hardening_knobs() {
        let env = |retries: Option<&str>, backoff: Option<&str>, timeout: Option<&str>| {
            let (r, b, t) = (
                retries.map(str::to_owned),
                backoff.map(str::to_owned),
                timeout.map(str::to_owned),
            );
            SweepOptions::from_env_with(move |name| match name {
                "BFBP_SWEEP_RETRIES" => r.clone(),
                "BFBP_SWEEP_BACKOFF_MS" => b.clone(),
                "BFBP_SWEEP_TIMEOUT_MS" => t.clone(),
                _ => None,
            })
        };
        assert_eq!(env(None, None, None), SweepOptions::default());
        let hardened = env(Some("2"), Some("10"), Some("5000"));
        assert_eq!(hardened.retry.max_attempts, 3);
        assert_eq!(hardened.retry.backoff, Duration::from_millis(10));
        assert_eq!(hardened.timeout, Some(Duration::from_secs(5)));
        // Malformed values fall back to defaults.
        assert_eq!(env(Some("many"), None, Some("0")), SweepOptions::default());
    }

    #[test]
    fn json_helpers_escape_and_format() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(2.5), "2.5");
        assert_eq!(json_f64(3.0), "3.0");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
