//! Deterministic fault injection for the sweep engine.
//!
//! A [`FaultPlan`] names, per job index, a failure to inject: a panic, an
//! artificial delay (for exercising the watchdog timeout), a
//! [`TraceFormatError`](bfbp_trace::TraceFormatError)-class trace-load
//! failure (manufactured with
//! [`bfbp_trace::format::corrupt`] so the real parse path runs), or an
//! outright skip. Plans are **data**: they are comparable, cloneable,
//! parseable from a CLI string, and — when seeded — expand to the same
//! job set on every run, so every degradation path in the engine can be
//! pinned by a test.
//!
//! ```
//! use bfbp_sim::fault::{Fault, FaultPlan};
//!
//! let plan = FaultPlan::parse("panic@1,delay@2=50,io@3=checksum").unwrap();
//! let faults = plan.materialized(6);
//! assert!(matches!(faults.get(&1), Some(Fault::Panic { .. })));
//! assert!(matches!(faults.get(&2), Some(Fault::Delay { millis: 50 })));
//! assert_eq!(faults.len(), 3);
//! ```

use std::collections::BTreeMap;
use std::fmt;

use bfbp_trace::format::corrupt::CorruptKind;
use bfbp_trace::rng::Xoshiro256;

/// One injected failure, attached to a single job of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Panic inside the job (caught by the engine's isolation layer).
    /// The panic fires on attempts `1..=first_attempts`, so a plan with
    /// `first_attempts < u32::MAX` models a *transient* fault that a
    /// retry survives.
    Panic {
        /// How many leading attempts panic (`u32::MAX` = every attempt).
        first_attempts: u32,
    },
    /// Sleeps for `millis` before simulating, on every attempt — the
    /// lever for driving a job into its wall-clock timeout.
    Delay {
        /// Injected delay per attempt, in milliseconds.
        millis: u64,
    },
    /// Fails the job's trace load with a genuine parse error: a healthy
    /// probe trace is serialized, corrupted per `kind`, and re-read, so
    /// the reported error is a real `TraceFormatError` rendering.
    TraceError {
        /// Which corruption (and thus which error variant) to provoke.
        kind: CorruptKind,
    },
    /// The job is never attempted and reports status `skipped`.
    Skip,
    /// Kills the simulation at the first chunk boundary at or after
    /// `record` processed records, mimicking a SIGKILL mid-job: the job
    /// reports status `killed`, is never retried, and writes no terminal
    /// journal entry — a resumed sweep re-runs it from its last mid-job
    /// checkpoint (if any) exactly like a genuinely crashed process.
    Kill {
        /// Record boundary at which the simulated process death fires.
        record: u64,
    },
}

/// Seeded random fault placement: each job draws independently.
#[derive(Debug, Clone, PartialEq)]
struct RandomFaults {
    seed: u64,
    rate: f64,
}

/// A per-job fault assignment for one sweep.
///
/// Explicit placements ([`FaultPlan::panic_at`] etc.) always win over
/// the seeded random layer ([`FaultPlan::with_random`]); the random
/// layer draws per job from the in-tree xoshiro256** stream, so a given
/// `(seed, rate, n_jobs)` triple yields the same faults forever.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    faults: BTreeMap<usize, Fault>,
    random: Option<RandomFaults>,
}

/// Why a `--fault-plan` string could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanParseError {
    /// Human-readable reason, naming the offending entry.
    pub reason: String,
}

impl fmt::Display for FaultPlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault plan: {}", self.reason)
    }
}

impl std::error::Error for FaultPlanParseError {}

fn parse_err(reason: impl Into<String>) -> FaultPlanParseError {
    FaultPlanParseError {
        reason: reason.into(),
    }
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.random.is_none()
    }

    /// Injects a panic on every attempt of `job`.
    pub fn panic_at(self, job: usize) -> Self {
        self.flaky_panic_at(job, u32::MAX)
    }

    /// Injects a panic on the first `attempts` attempts of `job`; with a
    /// retry budget larger than `attempts`, the job eventually succeeds.
    pub fn flaky_panic_at(mut self, job: usize, attempts: u32) -> Self {
        self.faults.insert(
            job,
            Fault::Panic {
                first_attempts: attempts,
            },
        );
        self
    }

    /// Injects a `millis` delay into every attempt of `job`.
    pub fn delay_at(mut self, job: usize, millis: u64) -> Self {
        self.faults.insert(job, Fault::Delay { millis });
        self
    }

    /// Fails `job` with the trace-format error provoked by `kind`.
    pub fn trace_error_at(mut self, job: usize, kind: CorruptKind) -> Self {
        self.faults.insert(job, Fault::TraceError { kind });
        self
    }

    /// Marks `job` as skipped (never attempted).
    pub fn skip_at(mut self, job: usize) -> Self {
        self.faults.insert(job, Fault::Skip);
        self
    }

    /// Kills `job` (simulated SIGKILL) once `record` records have been
    /// processed.
    pub fn kill_at(mut self, job: usize, record: u64) -> Self {
        self.faults.insert(job, Fault::Kill { record });
        self
    }

    /// Adds a seeded random layer: each job is independently faulted
    /// with probability `rate` (clamped to `[0, 1]`), the kind drawn
    /// uniformly from panic / 25 ms delay / checksum trace error.
    pub fn with_random(mut self, seed: u64, rate: f64) -> Self {
        self.random = Some(RandomFaults {
            seed,
            rate: rate.clamp(0.0, 1.0),
        });
        self
    }

    /// Expands the plan against a concrete matrix size: the seeded
    /// random layer is drawn for jobs `0..n_jobs`, then explicit
    /// placements are overlaid (explicit wins). Deterministic in
    /// `(plan, n_jobs)`.
    pub fn materialized(&self, n_jobs: usize) -> BTreeMap<usize, Fault> {
        let mut out = BTreeMap::new();
        if let Some(random) = &self.random {
            let mut rng = Xoshiro256::seed_from_u64(random.seed);
            for job in 0..n_jobs {
                // 53-bit draw → uniform in [0, 1).
                let draw = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let kind = rng.next_u64() % 3;
                if draw < random.rate {
                    let fault = match kind {
                        0 => Fault::Panic {
                            first_attempts: u32::MAX,
                        },
                        1 => Fault::Delay { millis: 25 },
                        _ => Fault::TraceError {
                            kind: CorruptKind::ChecksumMismatch,
                        },
                    };
                    out.insert(job, fault);
                }
            }
        }
        for (job, fault) in &self.faults {
            out.insert(*job, fault.clone());
        }
        out
    }

    /// Parses the CLI form: comma-separated entries
    ///
    /// * `panic@JOB` / `panic@JOB=N` — panic (first `N` attempts only),
    /// * `delay@JOB=MS` — injected delay,
    /// * `io@JOB` / `io@JOB=KIND` — trace-format failure (`KIND` one of
    ///   `bad-magic`, `bad-version`, `bad-varint`, `checksum`, `count`,
    ///   `bad-kind`, `bad-name`; default `checksum`),
    /// * `skip@JOB` — never attempt the job,
    /// * `kill@JOB=RECORD` — simulated SIGKILL after `RECORD` records,
    /// * `random@SEED=RATE` — seeded random layer.
    ///
    /// # Errors
    ///
    /// Returns an error naming the first malformed entry.
    pub fn parse(text: &str) -> Result<Self, FaultPlanParseError> {
        let mut plan = FaultPlan::new();
        for entry in text.split(',').filter(|e| !e.is_empty()) {
            let (kind, rest) = entry
                .split_once('@')
                .ok_or_else(|| parse_err(format!("{entry:?} is not KIND@JOB[=ARG]")))?;
            let (target, arg) = match rest.split_once('=') {
                Some((t, a)) => (t, Some(a)),
                None => (rest, None),
            };
            let index = |what: &str| {
                target
                    .parse::<usize>()
                    .map_err(|_| parse_err(format!("{what} in {entry:?} needs a job index")))
            };
            plan = match kind {
                "panic" => {
                    let attempts = match arg {
                        None => u32::MAX,
                        Some(a) => a.parse::<u32>().map_err(|_| {
                            parse_err(format!("panic attempt count in {entry:?} must be a u32"))
                        })?,
                    };
                    plan.flaky_panic_at(index("panic")?, attempts)
                }
                "delay" => {
                    let millis = arg
                        .and_then(|a| a.parse::<u64>().ok())
                        .ok_or_else(|| parse_err(format!("{entry:?} needs =MILLIS")))?;
                    plan.delay_at(index("delay")?, millis)
                }
                "io" => {
                    let kind = match arg {
                        None => CorruptKind::ChecksumMismatch,
                        Some(a) => CorruptKind::parse(a).ok_or_else(|| {
                            parse_err(format!("unknown corruption kind {a:?} in {entry:?}"))
                        })?,
                    };
                    plan.trace_error_at(index("io")?, kind)
                }
                "skip" => plan.skip_at(index("skip")?),
                "kill" => {
                    let record = arg
                        .and_then(|a| a.parse::<u64>().ok())
                        .ok_or_else(|| parse_err(format!("{entry:?} needs =RECORD")))?;
                    plan.kill_at(index("kill")?, record)
                }
                "random" => {
                    let seed = target.parse::<u64>().map_err(|_| {
                        parse_err(format!("random seed in {entry:?} must be a u64"))
                    })?;
                    let rate = arg.and_then(|a| a.parse::<f64>().ok()).ok_or_else(|| {
                        parse_err(format!("{entry:?} needs =RATE (a probability)"))
                    })?;
                    plan.with_random(seed, rate)
                }
                other => return Err(parse_err(format!("unknown fault kind {other:?}"))),
            };
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_covers_every_kind() {
        let plan = FaultPlan::parse(
            "panic@0,panic@1=2,delay@2=100,io@3,io@4=bad-magic,skip@5,kill@6=5000",
        )
        .unwrap();
        let faults = plan.materialized(8);
        assert_eq!(
            faults.get(&0),
            Some(&Fault::Panic {
                first_attempts: u32::MAX
            })
        );
        assert_eq!(faults.get(&1), Some(&Fault::Panic { first_attempts: 2 }));
        assert_eq!(faults.get(&2), Some(&Fault::Delay { millis: 100 }));
        assert_eq!(
            faults.get(&3),
            Some(&Fault::TraceError {
                kind: CorruptKind::ChecksumMismatch
            })
        );
        assert_eq!(
            faults.get(&4),
            Some(&Fault::TraceError {
                kind: CorruptKind::BadMagic
            })
        );
        assert_eq!(faults.get(&5), Some(&Fault::Skip));
        assert_eq!(faults.get(&6), Some(&Fault::Kill { record: 5000 }));
        assert_eq!(faults.get(&7), None);
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        for bad in [
            "panic",
            "panic@x",
            "delay@1",
            "delay@1=fast",
            "io@1=meteor",
            "kill@1",
            "kill@1=soon",
            "random@1",
            "warp@1",
        ] {
            let err = FaultPlan::parse(bad).expect_err(bad);
            assert!(!err.to_string().is_empty(), "{bad}");
        }
    }

    #[test]
    fn seeded_random_layer_is_deterministic_and_rate_bound() {
        let a = FaultPlan::new().with_random(42, 0.3).materialized(1000);
        let b = FaultPlan::parse("random@42=0.3")
            .unwrap()
            .materialized(1000);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // Statistically ~300; generous bounds keep this robust.
        assert!(a.len() > 150 && a.len() < 450, "{}", a.len());
        // Rate 0 / empty plan inject nothing.
        assert!(FaultPlan::new()
            .with_random(7, 0.0)
            .materialized(100)
            .is_empty());
        assert!(FaultPlan::new().materialized(100).is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn explicit_placement_overrides_random_layer() {
        let plan = FaultPlan::new().with_random(42, 1.0).skip_at(3);
        let faults = plan.materialized(5);
        assert_eq!(faults.len(), 5);
        assert_eq!(faults.get(&3), Some(&Fault::Skip));
    }
}
