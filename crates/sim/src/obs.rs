//! Structured observability for sweeps and predictors.
//!
//! Three layers, all dependency-free and all strictly *off the results
//! path* — enabling any of them never changes a [`SimResult`] or the
//! `bfbp-sweep/2` document:
//!
//! 1. **Metrics** — a [`Metrics`] registry of counters, gauges, and
//!    fixed-bucket histograms, filled per job by predictors that
//!    implement [`PredictorIntrospect`] (BST occupancy, BF-GHR fill,
//!    weight saturation, TAGE per-table allocations, …);
//! 2. **Attribution** — an [`H2pTable`] accumulating per-static-branch
//!    execution/taken/mispredict counts, surfacing the top-N
//!    hard-to-predict PCs that dominate a trace's MPKI;
//! 3. **Events** — an append-only `bfbp-events/1` JSONL journal
//!    ([`EventJournal`]) of sweep → job → interval spans with monotonic
//!    timestamps, plus a live stderr [`Progress`] line.
//!
//! [`SimResult`]: crate::simulate::SimResult

use std::collections::{BTreeMap, HashMap};
use std::fs::OpenOptions;
use std::io::Write;
use std::path::Path;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use crate::ckpt::{CodecError, Restorable, StateReader, StateWriter};
use crate::engine::{json_f64, json_string};

/// Schema identifier of the span/event journal (one JSON object per line).
pub const EVENTS_SCHEMA: &str = "bfbp-events/1";

/// Schema identifier of the per-sweep metrics document.
pub const METRICS_SCHEMA: &str = "bfbp-metrics/1";

/// How many hard-to-predict PCs the metrics document keeps per job.
pub const H2P_TOP_N: usize = 32;

/// A fixed-bucket histogram: `bounds` are inclusive upper bounds in
/// ascending order, and one extra overflow bucket catches everything
/// beyond the last bound.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram over the given bucket bounds.
    pub fn new(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
        }
    }

    /// Records one observation into the first bucket whose bound admits
    /// it (or the overflow bucket).
    pub fn observe(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds().len() + 1` entries; the last is the
    /// overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    fn to_json(&self) -> String {
        let bounds: Vec<String> = self.bounds.iter().map(|b| json_f64(*b)).collect();
        let counts: Vec<String> = self.counts.iter().map(u64::to_string).collect();
        format!(
            "{{\"bounds\": [{}], \"counts\": [{}]}}",
            bounds.join(", "),
            counts.join(", ")
        )
    }
}

/// A deterministic registry of named counters, gauges, and histograms.
///
/// Names are sorted (BTreeMap) so the JSON rendering is byte-stable
/// regardless of insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Fraction of `weights` pinned at the `±clamp` training bound — the
/// weight-saturation measure the neural predictors export. Returns 0
/// for an empty slice.
pub fn saturation_fraction(weights: &[i8], clamp: i32) -> f64 {
    if weights.is_empty() {
        return 0.0;
    }
    let saturated = weights
        .iter()
        .filter(|&&w| i32::from(w).abs() >= clamp)
        .count();
    saturated as f64 / weights.len() as f64
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn incr(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Sets the named counter to an absolute value.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_owned(), value);
    }

    /// Sets the named gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Records one observation into the named histogram, creating it
    /// over `bounds` on first use.
    pub fn observe(&mut self, name: &str, bounds: &[f64], value: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// The named counter's value, if set.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The named gauge's value, if set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the registry as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(name));
            out.push_str(": ");
            out.push_str(&value.to_string());
        }
        out.push_str("}, \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(name));
            out.push_str(": ");
            out.push_str(&json_f64(*value));
        }
        out.push_str("}, \"histograms\": {");
        for (i, (name, hist)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(name));
            out.push_str(": ");
            out.push_str(&hist.to_json());
        }
        out.push_str("}}");
        out
    }

    /// Renders the registry as aligned human-readable lines (the
    /// `diagnose` view; same data as [`Metrics::to_json`]).
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("  {name:<40} {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("  {name:<40} {value:.4}\n"));
        }
        for (name, hist) in &self.histograms {
            out.push_str(&format!("  {name:<40}"));
            for (i, count) in hist.counts().iter().enumerate() {
                let label = hist
                    .bounds()
                    .get(i)
                    .map(|b| format!("<={b}"))
                    .unwrap_or_else(|| "over".to_owned());
                out.push_str(&format!(" {label}:{count}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Implemented by predictors that can export internal state as metrics.
///
/// The sweep engine calls this once per job, *after* the simulation
/// finishes, so implementations are free to do O(state) scans (occupancy
/// counts, weight-saturation fractions) without touching the hot path.
pub trait PredictorIntrospect {
    /// Exports internal counters/gauges/histograms into `metrics`.
    fn introspect(&self, metrics: &mut Metrics);
}

/// Per-static-branch accounting for one simulated job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchStats {
    /// The branch's program counter.
    pub pc: u64,
    /// Dynamic executions of the branch.
    pub executed: u64,
    /// Executions resolved taken.
    pub taken: u64,
    /// Executions the predictor got wrong.
    pub mispredicted: u64,
}

impl BranchStats {
    /// Fraction of executions resolved taken.
    pub fn taken_rate(&self) -> f64 {
        if self.executed == 0 {
            return 0.0;
        }
        self.taken as f64 / self.executed as f64
    }

    /// Fraction of executions mispredicted.
    pub fn mispredict_rate(&self) -> f64 {
        if self.executed == 0 {
            return 0.0;
        }
        self.mispredicted as f64 / self.executed as f64
    }
}

/// A multiplicative hasher for PC keys. `record` runs once per committed
/// conditional branch, where the default SipHash costs several percent of
/// simulation throughput; PCs are word-aligned addresses with little
/// adversarial structure, so one Fibonacci multiply spreads them fine.
#[derive(Debug, Default, Clone, Copy)]
struct PcHasher(u64);

impl std::hash::Hasher for PcHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u64(&mut self, value: u64) {
        self.0 = (value ^ (value >> 32)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

/// The hard-to-predict (H2P) attribution table: per-PC execution, taken,
/// and misprediction counts, built by observing every conditional branch
/// of a job.
///
/// Internally a `HashMap` for O(1) hot-path updates; every rendered view
/// sorts (mispredictions descending, then PC ascending) so output is
/// deterministic and identical between serial and parallel sweeps.
#[derive(Debug, Clone, Default)]
pub struct H2pTable {
    branches: HashMap<u64, BranchStats, std::hash::BuildHasherDefault<PcHasher>>,
}

impl PartialEq for H2pTable {
    fn eq(&self, other: &Self) -> bool {
        self.branches == other.branches
    }
}

impl H2pTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one executed conditional branch.
    #[inline]
    pub fn record(&mut self, pc: u64, taken: bool, mispredicted: bool) {
        let stats = self.branches.entry(pc).or_insert(BranchStats {
            pc,
            executed: 0,
            taken: 0,
            mispredicted: 0,
        });
        stats.executed += 1;
        stats.taken += u64::from(taken);
        stats.mispredicted += u64::from(mispredicted);
    }

    /// Distinct static branches observed.
    pub fn len(&self) -> usize {
        self.branches.len()
    }

    /// Whether no branch was observed.
    pub fn is_empty(&self) -> bool {
        self.branches.is_empty()
    }

    /// Total mispredictions across all branches.
    pub fn total_mispredicted(&self) -> u64 {
        self.branches.values().map(|b| b.mispredicted).sum()
    }

    /// The `n` worst branches: sorted by mispredictions descending, PC
    /// ascending as the tiebreak; branches that were never mispredicted
    /// are excluded.
    pub fn top(&self, n: usize) -> Vec<BranchStats> {
        let mut rows: Vec<BranchStats> = self
            .branches
            .values()
            .filter(|b| b.mispredicted > 0)
            .copied()
            .collect();
        rows.sort_unstable_by(|a, b| b.mispredicted.cmp(&a.mispredicted).then(a.pc.cmp(&b.pc)));
        rows.truncate(n);
        rows
    }

    /// Renders the top-`n` branches as a JSON array (deterministic).
    pub fn to_json(&self, n: usize) -> String {
        let mut out = String::from("[");
        for (i, b) in self.top(n).iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"pc\": \"{:#x}\", \"executed\": {}, \"taken_rate\": {}, \"mispredicts\": {}}}",
                b.pc,
                b.executed,
                json_f64(b.taken_rate()),
                b.mispredicted
            ));
        }
        out.push(']');
        out
    }

    /// Every branch sorted by PC — the canonical order for
    /// serialization, so identical tables always serialize to identical
    /// bytes regardless of `HashMap` iteration order.
    fn sorted_by_pc(&self) -> Vec<BranchStats> {
        let mut rows: Vec<BranchStats> = self.branches.values().copied().collect();
        rows.sort_unstable_by_key(|b| b.pc);
        rows
    }

    /// Renders the top-`n` branches as an aligned human-readable table —
    /// the same rows [`H2pTable::to_json`] emits.
    pub fn render_table(&self, n: usize) -> String {
        let total = self.total_mispredicted().max(1) as f64;
        let mut out =
            String::from("        pc      mispredicts   executed   taken%   mpred%   share%\n");
        for b in self.top(n) {
            out.push_str(&format!(
                "  {:#10x}  {:>11}  {:>9}  {:>6.1}%  {:>6.1}%  {:>6.1}%\n",
                b.pc,
                b.mispredicted,
                b.executed,
                100.0 * b.taken_rate(),
                100.0 * b.mispredict_rate(),
                100.0 * b.mispredicted as f64 / total,
            ));
        }
        out
    }
}

impl Restorable for H2pTable {
    fn save_state(&self, w: &mut StateWriter) {
        let rows = self.sorted_by_pc();
        w.usize(rows.len());
        for b in rows {
            w.u64(b.pc);
            w.u64(b.executed);
            w.u64(b.taken);
            w.u64(b.mispredicted);
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        let count = r.usize()?;
        if count.saturating_mul(32) > r.remaining() {
            return Err(CodecError::Truncated);
        }
        self.branches.clear();
        for _ in 0..count {
            let stats = BranchStats {
                pc: r.u64()?,
                executed: r.u64()?,
                taken: r.u64()?,
                mispredicted: r.u64()?,
            };
            if stats.taken > stats.executed || stats.mispredicted > stats.executed {
                return Err(CodecError::Malformed("h2p counts exceed executions"));
            }
            self.branches.insert(stats.pc, stats);
        }
        Ok(())
    }
}

/// Everything observability collects for one completed job: the
/// predictor's introspection metrics plus the per-branch H2P table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobObs {
    /// Introspection counters/gauges/histograms.
    pub metrics: Metrics,
    /// Per-static-branch misprediction attribution.
    pub h2p: H2pTable,
}

/// Renders one job's observability record as a JSON object — the shared
/// source for both the sweep metrics document and the `diagnose` bin.
pub fn job_obs_json(series: &str, trace: &str, obs: Option<&JobObs>, top: usize) -> String {
    let mut out = String::from("{\"series\": ");
    out.push_str(&json_string(series));
    out.push_str(", \"trace\": ");
    out.push_str(&json_string(trace));
    match obs {
        Some(obs) => {
            out.push_str(", \"metrics\": ");
            out.push_str(&obs.metrics.to_json());
            out.push_str(", \"h2p\": ");
            out.push_str(&obs.h2p.to_json(top));
        }
        None => out.push_str(", \"metrics\": null, \"h2p\": null"),
    }
    out.push('}');
    out
}

/// One event line under construction for the [`EventJournal`].
///
/// Fields are rendered in insertion order after the journal-stamped
/// `ev` and `t_us` keys.
#[derive(Debug)]
pub struct Event {
    ev: &'static str,
    fields: String,
}

impl Event {
    /// Starts an event of the given kind (`sweep_open`, `job_close`, …).
    pub fn new(ev: &'static str) -> Self {
        Self {
            ev,
            fields: String::new(),
        }
    }

    /// Appends an unsigned integer field.
    pub fn num(mut self, key: &str, value: u64) -> Self {
        self.fields
            .push_str(&format!(", {}: {}", json_string(key), value));
        self
    }

    /// Appends a float field.
    pub fn float(mut self, key: &str, value: f64) -> Self {
        self.fields
            .push_str(&format!(", {}: {}", json_string(key), json_f64(value)));
        self
    }

    /// Appends a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push_str(&format!(", {}: {}", json_string(key), json_string(value)));
        self
    }

    fn render(&self, t_us: u64) -> String {
        format!(
            "{{\"ev\": {}, \"t_us\": {}{}}}\n",
            json_string(self.ev),
            t_us,
            self.fields
        )
    }
}

#[derive(Debug)]
struct EventSink {
    file: std::fs::File,
    last_us: u64,
    warned: bool,
}

/// The `bfbp-events/1` span/event journal: one JSON object per line,
/// stamped with microseconds since the journal was opened. Timestamps
/// are monotonic non-decreasing in file order (writers serialize on an
/// internal lock), and every write is flushed so a crashed run leaves a
/// readable prefix.
#[derive(Debug)]
pub struct EventJournal {
    start: Instant,
    sink: Mutex<EventSink>,
}

impl EventJournal {
    /// Creates (truncating) the journal at `path` and writes the
    /// `journal_open` header event carrying the schema.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::with_options(path.as_ref(), true)
    }

    /// Opens the journal at `path` for appending, creating it (with the
    /// header event) only when missing or empty — so several sweeps of a
    /// campaign can share one journal.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::with_options(path.as_ref(), false)
    }

    fn with_options(path: &Path, truncate: bool) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(truncate)
            .append(!truncate)
            .open(path)?;
        let empty = file.metadata()?.len() == 0;
        let journal = Self {
            start: Instant::now(),
            sink: Mutex::new(EventSink {
                file,
                last_us: 0,
                warned: false,
            }),
        };
        if empty {
            journal.emit(Event::new("journal_open").str("schema", EVENTS_SCHEMA));
        }
        Ok(journal)
    }

    /// Stamps and appends one event. Write failures degrade to a single
    /// stderr warning — observability must never fail the run.
    pub fn emit(&self, event: Event) {
        let elapsed = self.start.elapsed().as_micros() as u64;
        let mut sink = self.sink.lock().unwrap_or_else(PoisonError::into_inner);
        let t_us = elapsed.max(sink.last_us);
        sink.last_us = t_us;
        let line = event.render(t_us);
        let failed = sink
            .file
            .write_all(line.as_bytes())
            .and_then(|()| sink.file.flush())
            .is_err();
        if failed && !sink.warned {
            sink.warned = true;
            eprintln!("warning: event journal write failed; further events may be lost");
        }
    }
}

#[derive(Debug)]
struct ProgressState {
    done: usize,
    failed: usize,
}

/// A live single-line stderr progress report for sweeps: jobs done and
/// failed plus a naive rate-based ETA, rewritten in place with `\r`.
#[derive(Debug)]
pub struct Progress {
    total: usize,
    start: Instant,
    state: Mutex<ProgressState>,
}

impl Progress {
    /// Creates a tracker for `total` pending jobs.
    pub fn new(total: usize) -> Self {
        Self {
            total,
            start: Instant::now(),
            state: Mutex::new(ProgressState { done: 0, failed: 0 }),
        }
    }

    /// Records one finished job (`ok == false` counts toward the failed
    /// tally) and redraws the line.
    pub fn tick(&self, ok: bool) {
        let (done, failed) = {
            let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.done += 1;
            state.failed += usize::from(!ok);
            (state.done, state.failed)
        };
        let elapsed = self.start.elapsed().as_secs_f64();
        let eta = if done > 0 {
            let remaining = self.total.saturating_sub(done) as f64;
            elapsed / done as f64 * remaining
        } else {
            f64::NAN
        };
        eprint!(
            "\r[sweep] {done}/{} jobs done ({failed} failed), ETA {eta:.0}s        ",
            self.total
        );
    }

    /// Terminates the progress line with a newline.
    pub fn finish(&self) {
        eprintln!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 4.0, 16.0]);
        for v in [0.5, 1.0, 3.0, 16.0, 17.0, 1000.0] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 2]);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn metrics_json_is_sorted_and_stable() {
        let mut m = Metrics::new();
        m.incr("z.count", 2);
        m.incr("a.count", 1);
        m.incr("a.count", 1);
        m.gauge("mid.gauge", 0.5);
        m.observe("h", &[1.0], 0.5);
        let json = m.to_json();
        assert!(json.find("\"a.count\": 2").unwrap() < json.find("\"z.count\": 2").unwrap());
        assert!(json.contains("\"mid.gauge\": 0.5"));
        assert!(json.contains("\"bounds\": [1.0], \"counts\": [1, 0]"));
        assert_eq!(m.counter_value("a.count"), Some(2));
        assert_eq!(m.gauge_value("mid.gauge"), Some(0.5));
        assert!(!m.is_empty());
        assert!(!m.render_human().is_empty());
    }

    #[test]
    fn h2p_orders_by_mispredicts_then_pc() {
        let mut t = H2pTable::new();
        for _ in 0..3 {
            t.record(0x20, true, true);
        }
        for _ in 0..3 {
            t.record(0x10, false, true);
        }
        t.record(0x30, true, true);
        t.record(0x40, true, false); // never mispredicted: excluded
        let top = t.top(10);
        assert_eq!(
            top.iter().map(|b| b.pc).collect::<Vec<_>>(),
            vec![0x10, 0x20, 0x30]
        );
        assert_eq!(t.len(), 4);
        assert_eq!(t.total_mispredicted(), 7);
        assert!((top[0].taken_rate() - 0.0).abs() < 1e-12);
        assert!((top[1].taken_rate() - 1.0).abs() < 1e-12);
        let json = t.to_json(2);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"pc\": \"0x10\""));
        assert!(!json.contains("\"pc\": \"0x30\""), "{json}");
        assert!(t.render_table(3).contains("0x10"));
    }

    #[test]
    fn event_journal_stamps_monotonic_lines() {
        let path =
            std::env::temp_dir().join(format!("bfbp-obs-test-{}.events", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let journal = EventJournal::create(&path).unwrap();
        journal.emit(Event::new("job_open").num("job", 0).str("trace", "T1"));
        journal.emit(
            Event::new("job_close")
                .num("job", 0)
                .str("status", "ok")
                .float("mpki", 2.5),
        );
        drop(journal);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(EVENTS_SCHEMA));
        assert!(lines[1].contains("\"ev\": \"job_open\""));
        assert!(lines[2].contains("\"status\": \"ok\""));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        // Re-open appends without a second header.
        let journal = EventJournal::open(&path).unwrap();
        journal.emit(Event::new("sweep_close"));
        drop(journal);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("journal_open").count(), 1);
        assert_eq!(text.lines().count(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn h2p_table_round_trips_through_state_codec() {
        let mut t = H2pTable::new();
        for i in 0..50u64 {
            t.record(0x1000 + 8 * (i % 7), i % 3 == 0, i % 5 == 0);
        }
        let mut w = StateWriter::new();
        t.save_state(&mut w);
        let bytes = w.into_bytes();
        // Identical state serializes to identical bytes (sorted order).
        let mut w2 = StateWriter::new();
        t.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes());
        let mut back = H2pTable::new();
        back.record(0xDEAD, true, true); // pre-existing junk is replaced
        let mut r = StateReader::new(&bytes);
        back.load_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, t);
        assert_eq!(back.to_json(H2P_TOP_N), t.to_json(H2P_TOP_N));
        // Truncation and impossible counts are rejected.
        let mut trunc = H2pTable::new();
        assert!(trunc
            .load_state(&mut StateReader::new(&bytes[..bytes.len() - 3]))
            .is_err());
        let mut w = StateWriter::new();
        w.usize(1);
        w.u64(0x40);
        w.u64(1); // executed
        w.u64(2); // taken > executed: impossible
        w.u64(0);
        let bad = w.into_bytes();
        assert!(trunc.load_state(&mut StateReader::new(&bad)).is_err());
    }

    #[test]
    fn job_obs_json_renders_null_when_absent() {
        let json = job_obs_json("s", "t", None, 8);
        assert!(json.contains("\"metrics\": null"));
        let obs = JobObs::default();
        let json = job_obs_json("s", "t", Some(&obs), 8);
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"h2p\": []"));
    }
}
