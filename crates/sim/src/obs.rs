//! Structured observability for sweeps and predictors.
//!
//! Three layers, all dependency-free and all strictly *off the results
//! path* — enabling any of them never changes a [`SimResult`] or the
//! `bfbp-sweep/2` document:
//!
//! 1. **Metrics** — a [`Metrics`] registry of counters, gauges, and
//!    fixed-bucket histograms, filled per job by predictors that
//!    implement [`PredictorIntrospect`] (BST occupancy, BF-GHR fill,
//!    weight saturation, TAGE per-table allocations, …);
//! 2. **Attribution** — an [`H2pTable`] accumulating per-static-branch
//!    execution/taken/mispredict counts, surfacing the top-N
//!    hard-to-predict PCs that dominate a trace's MPKI;
//! 3. **Events** — an append-only `bfbp-events/1` JSONL journal
//!    ([`EventJournal`]) of sweep → job → interval spans with monotonic
//!    timestamps, plus a live stderr [`Progress`] line.
//!
//! [`SimResult`]: crate::simulate::SimResult

use std::collections::{BTreeMap, HashMap};
use std::fs::OpenOptions;
use std::io::Write;
use std::path::Path;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use bfbp_trace::record::BranchKind;

use crate::ckpt::{CodecError, Restorable, StateReader, StateWriter};
use crate::engine::{json_f64, json_string};
use crate::predictor::Provenance;

/// Schema identifier of the span/event journal (one JSON object per line).
pub const EVENTS_SCHEMA: &str = "bfbp-events/1";

/// Schema identifier of the per-sweep metrics document.
pub const METRICS_SCHEMA: &str = "bfbp-metrics/1";

/// Schema identifier of flight-recorder postmortem dumps.
pub const POSTMORTEM_SCHEMA: &str = "bfbp-postmortem/1";

/// How many hard-to-predict PCs the metrics document keeps per job.
pub const H2P_TOP_N: usize = 32;

/// A fixed-bucket histogram: `bounds` are inclusive upper bounds in
/// ascending order, and one extra overflow bucket catches everything
/// beyond the last bound.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram over the given bucket bounds.
    pub fn new(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
        }
    }

    /// Records one observation into the first bucket whose bound admits
    /// it (or the overflow bucket).
    pub fn observe(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds().len() + 1` entries; the last is the
    /// overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by linear
    /// interpolation inside the bucket holding the target rank, the
    /// standard fixed-bucket estimate. The first bucket's lower edge is
    /// taken as `min(0, bound)`; ranks landing in the unbounded overflow
    /// bucket are reported as the last finite bound. Returns `None` when
    /// nothing has been observed.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let mut cumulative = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            let below = cumulative as f64;
            cumulative += count;
            if cumulative as f64 >= rank && count > 0 {
                let upper = match self.bounds.get(i) {
                    Some(&b) => b,
                    // Overflow bucket: no upper edge to interpolate
                    // toward; the last finite bound is the best estimate.
                    None => return self.bounds.last().copied(),
                };
                let lower = if i == 0 {
                    upper.min(0.0)
                } else {
                    self.bounds[i - 1]
                };
                let frac = ((rank - below) / count as f64).clamp(0.0, 1.0);
                return Some(lower + (upper - lower) * frac);
            }
        }
        self.bounds.last().copied()
    }

    fn to_json(&self) -> String {
        let bounds: Vec<String> = self.bounds.iter().map(|b| json_f64(*b)).collect();
        let counts: Vec<String> = self.counts.iter().map(u64::to_string).collect();
        let quant = |q: f64| match self.quantile(q) {
            Some(v) => json_f64(v),
            None => "null".to_owned(),
        };
        format!(
            "{{\"bounds\": [{}], \"counts\": [{}], \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
            bounds.join(", "),
            counts.join(", "),
            quant(0.5),
            quant(0.9),
            quant(0.99)
        )
    }
}

/// A deterministic registry of named counters, gauges, and histograms.
///
/// Names are sorted (BTreeMap) so the JSON rendering is byte-stable
/// regardless of insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Fraction of `weights` pinned at the `±clamp` training bound — the
/// weight-saturation measure the neural predictors export. Returns 0
/// for an empty slice.
pub fn saturation_fraction(weights: &[i8], clamp: i32) -> f64 {
    if weights.is_empty() {
        return 0.0;
    }
    let saturated = weights
        .iter()
        .filter(|&&w| i32::from(w).abs() >= clamp)
        .count();
    saturated as f64 / weights.len() as f64
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn incr(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Sets the named counter to an absolute value.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_owned(), value);
    }

    /// Sets the named gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Records one observation into the named histogram, creating it
    /// over `bounds` on first use.
    pub fn observe(&mut self, name: &str, bounds: &[f64], value: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// The named counter's value, if set.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The named gauge's value, if set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the registry as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(name));
            out.push_str(": ");
            out.push_str(&value.to_string());
        }
        out.push_str("}, \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(name));
            out.push_str(": ");
            out.push_str(&json_f64(*value));
        }
        out.push_str("}, \"histograms\": {");
        for (i, (name, hist)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(name));
            out.push_str(": ");
            out.push_str(&hist.to_json());
        }
        out.push_str("}}");
        out
    }

    /// Renders the registry as aligned human-readable lines (the
    /// `diagnose` view; same data as [`Metrics::to_json`]).
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("  {name:<40} {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("  {name:<40} {value:.4}\n"));
        }
        for (name, hist) in &self.histograms {
            out.push_str(&format!("  {name:<40}"));
            for (i, count) in hist.counts().iter().enumerate() {
                let label = hist
                    .bounds()
                    .get(i)
                    .map(|b| format!("<={b}"))
                    .unwrap_or_else(|| "over".to_owned());
                out.push_str(&format!(" {label}:{count}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Implemented by predictors that can export internal state as metrics.
///
/// The sweep engine calls this once per job, *after* the simulation
/// finishes, so implementations are free to do O(state) scans (occupancy
/// counts, weight-saturation fractions) without touching the hot path.
pub trait PredictorIntrospect {
    /// Exports internal counters/gauges/histograms into `metrics`.
    fn introspect(&self, metrics: &mut Metrics);
}

/// Per-static-branch accounting for one simulated job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchStats {
    /// The branch's program counter.
    pub pc: u64,
    /// Dynamic executions of the branch.
    pub executed: u64,
    /// Executions resolved taken.
    pub taken: u64,
    /// Executions the predictor got wrong.
    pub mispredicted: u64,
}

impl BranchStats {
    /// Fraction of executions resolved taken.
    pub fn taken_rate(&self) -> f64 {
        if self.executed == 0 {
            return 0.0;
        }
        self.taken as f64 / self.executed as f64
    }

    /// Fraction of executions mispredicted.
    pub fn mispredict_rate(&self) -> f64 {
        if self.executed == 0 {
            return 0.0;
        }
        self.mispredicted as f64 / self.executed as f64
    }
}

/// A multiplicative hasher for PC keys. `record` runs once per committed
/// conditional branch, where the default SipHash costs several percent of
/// simulation throughput; PCs are word-aligned addresses with little
/// adversarial structure, so one Fibonacci multiply spreads them fine.
#[derive(Debug, Default, Clone, Copy)]
struct PcHasher(u64);

impl std::hash::Hasher for PcHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u64(&mut self, value: u64) {
        self.0 = (value ^ (value >> 32)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

/// The hard-to-predict (H2P) attribution table: per-PC execution, taken,
/// and misprediction counts, built by observing every conditional branch
/// of a job.
///
/// Internally a `HashMap` for O(1) hot-path updates; every rendered view
/// sorts (mispredictions descending, then PC ascending) so output is
/// deterministic and identical between serial and parallel sweeps.
#[derive(Debug, Clone, Default)]
pub struct H2pTable {
    branches: HashMap<u64, BranchStats, std::hash::BuildHasherDefault<PcHasher>>,
}

impl PartialEq for H2pTable {
    fn eq(&self, other: &Self) -> bool {
        self.branches == other.branches
    }
}

impl H2pTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one executed conditional branch.
    #[inline]
    pub fn record(&mut self, pc: u64, taken: bool, mispredicted: bool) {
        let stats = self.branches.entry(pc).or_insert(BranchStats {
            pc,
            executed: 0,
            taken: 0,
            mispredicted: 0,
        });
        stats.executed += 1;
        stats.taken += u64::from(taken);
        stats.mispredicted += u64::from(mispredicted);
    }

    /// Distinct static branches observed.
    pub fn len(&self) -> usize {
        self.branches.len()
    }

    /// Whether no branch was observed.
    pub fn is_empty(&self) -> bool {
        self.branches.is_empty()
    }

    /// Total mispredictions across all branches.
    pub fn total_mispredicted(&self) -> u64 {
        self.branches.values().map(|b| b.mispredicted).sum()
    }

    /// The `n` worst branches: sorted by mispredictions descending, PC
    /// ascending as the tiebreak; branches that were never mispredicted
    /// are excluded.
    pub fn top(&self, n: usize) -> Vec<BranchStats> {
        let mut rows: Vec<BranchStats> = self
            .branches
            .values()
            .filter(|b| b.mispredicted > 0)
            .copied()
            .collect();
        rows.sort_unstable_by(|a, b| b.mispredicted.cmp(&a.mispredicted).then(a.pc.cmp(&b.pc)));
        rows.truncate(n);
        rows
    }

    /// Renders the top-`n` branches as a JSON array (deterministic).
    pub fn to_json(&self, n: usize) -> String {
        let mut out = String::from("[");
        for (i, b) in self.top(n).iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"pc\": \"{:#x}\", \"executed\": {}, \"taken_rate\": {}, \"mispredicts\": {}}}",
                b.pc,
                b.executed,
                json_f64(b.taken_rate()),
                b.mispredicted
            ));
        }
        out.push(']');
        out
    }

    /// Every branch sorted by PC — the canonical order for
    /// serialization, so identical tables always serialize to identical
    /// bytes regardless of `HashMap` iteration order.
    fn sorted_by_pc(&self) -> Vec<BranchStats> {
        let mut rows: Vec<BranchStats> = self.branches.values().copied().collect();
        rows.sort_unstable_by_key(|b| b.pc);
        rows
    }

    /// Renders the top-`n` branches as an aligned human-readable table —
    /// the same rows [`H2pTable::to_json`] emits.
    pub fn render_table(&self, n: usize) -> String {
        let total = self.total_mispredicted().max(1) as f64;
        let mut out =
            String::from("        pc      mispredicts   executed   taken%   mpred%   share%\n");
        for b in self.top(n) {
            out.push_str(&format!(
                "  {:#10x}  {:>11}  {:>9}  {:>6.1}%  {:>6.1}%  {:>6.1}%\n",
                b.pc,
                b.mispredicted,
                b.executed,
                100.0 * b.taken_rate(),
                100.0 * b.mispredict_rate(),
                100.0 * b.mispredicted as f64 / total,
            ));
        }
        out
    }
}

impl Restorable for H2pTable {
    fn save_state(&self, w: &mut StateWriter) {
        let rows = self.sorted_by_pc();
        w.usize(rows.len());
        for b in rows {
            w.u64(b.pc);
            w.u64(b.executed);
            w.u64(b.taken);
            w.u64(b.mispredicted);
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        let count = r.usize()?;
        if count.saturating_mul(32) > r.remaining() {
            return Err(CodecError::Truncated);
        }
        self.branches.clear();
        for _ in 0..count {
            let stats = BranchStats {
                pc: r.u64()?,
                executed: r.u64()?,
                taken: r.u64()?,
                mispredicted: r.u64()?,
            };
            if stats.taken > stats.executed || stats.mispredicted > stats.executed {
                return Err(CodecError::Malformed("h2p counts exceed executions"));
            }
            self.branches.insert(stats.pc, stats);
        }
        Ok(())
    }
}

/// Everything observability collects for one completed job: the
/// predictor's introspection metrics plus the per-branch H2P table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobObs {
    /// Introspection counters/gauges/histograms.
    pub metrics: Metrics,
    /// Per-static-branch misprediction attribution.
    pub h2p: H2pTable,
}

/// Renders one job's observability record as a JSON object — the shared
/// source for both the sweep metrics document and the `diagnose` bin.
pub fn job_obs_json(series: &str, trace: &str, obs: Option<&JobObs>, top: usize) -> String {
    let mut out = String::from("{\"series\": ");
    out.push_str(&json_string(series));
    out.push_str(", \"trace\": ");
    out.push_str(&json_string(trace));
    match obs {
        Some(obs) => {
            out.push_str(", \"metrics\": ");
            out.push_str(&obs.metrics.to_json());
            out.push_str(", \"h2p\": ");
            out.push_str(&obs.h2p.to_json(top));
        }
        None => out.push_str(", \"metrics\": null, \"h2p\": null"),
    }
    out.push('}');
    out
}

/// One recorded decision in the [`FlightRecorder`] ring: the per-record
/// forensic unit a postmortem dump is made of.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightEntry {
    /// Zero-based index of the record within the job's trace.
    pub index: u64,
    /// The branch's program counter.
    pub pc: u64,
    /// The record's control-transfer kind.
    pub kind: BranchKind,
    /// The direction the predictor guessed. For non-conditional records
    /// (which are never predicted) this mirrors `outcome`.
    pub predicted: bool,
    /// The committed direction.
    pub outcome: bool,
    /// Attribution for the prediction, when the predictor exports one
    /// (conditional records only).
    pub provenance: Option<Provenance>,
}

impl FlightEntry {
    /// Whether the predictor got this record wrong. Always `false` for
    /// non-conditional records.
    pub fn mispredicted(&self) -> bool {
        self.kind.is_conditional() && self.predicted != self.outcome
    }

    fn to_json(self) -> String {
        let opt_bool = |v: Option<bool>| match v {
            Some(b) => b.to_string(),
            None => "null".to_owned(),
        };
        let provenance = match &self.provenance {
            Some(p) => format!(
                "{{\"component\": {}, \"table\": {}, \"prediction\": {}, \
                 \"alternate\": {}, \"counter\": {}, \"margin\": {}, \"history_len\": {}}}",
                json_string(p.component),
                p.table.map_or_else(|| "null".to_owned(), |v| v.to_string()),
                p.prediction,
                opt_bool(p.alternate),
                p.counter
                    .map_or_else(|| "null".to_owned(), |v| v.to_string()),
                p.margin
                    .map_or_else(|| "null".to_owned(), |v| v.to_string()),
                p.history_len
                    .map_or_else(|| "null".to_owned(), |v| v.to_string()),
            ),
            None => "null".to_owned(),
        };
        format!(
            "{{\"i\": {}, \"pc\": \"{:#x}\", \"kind\": {}, \"predicted\": {}, \
             \"taken\": {}, \"mispredicted\": {}, \"provenance\": {}}}",
            self.index,
            self.pc,
            json_string(&self.kind.to_string()),
            self.predicted,
            self.outcome,
            self.mispredicted(),
            provenance
        )
    }
}

/// A fixed-capacity ring buffer of the last N prediction decisions — the
/// black box a postmortem dump reads after a job dies.
///
/// Strictly off the results path: recording is O(1) per record with zero
/// steady-state allocation (the ring is allocated once, up front), never
/// feeds anything back into the predictor, and a recorder-on run
/// produces byte-identical `bfbp-sweep/2`/`bfbp-metrics/1` documents to
/// a recorder-off run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    entries: Vec<FlightEntry>,
    capacity: usize,
    head: usize,
    total: u64,
}

impl FlightRecorder {
    /// Creates a recorder keeping the last `capacity` decisions
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            total: 0,
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many entries the ring currently holds (≤ capacity).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total decisions ever recorded, including those the ring has since
    /// evicted.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Records one decision, evicting the oldest entry once the ring is
    /// full. O(1), allocation-free after the ring fills.
    #[inline]
    pub fn record(&mut self, entry: FlightEntry) {
        self.total += 1;
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
        } else {
            self.entries[self.head] = entry;
        }
        self.head += 1;
        if self.head == self.capacity {
            self.head = 0;
        }
    }

    /// Forgets everything recorded so far (the allocation is kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.head = 0;
        self.total = 0;
    }

    /// The retained entries in chronological order, oldest first.
    pub fn entries(&self) -> Vec<FlightEntry> {
        if self.entries.len() < self.capacity {
            self.entries.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&self.entries[self.head..]);
            out.extend_from_slice(&self.entries[..self.head]);
            out
        }
    }

    /// The most recent entry, if any.
    pub fn last(&self) -> Option<FlightEntry> {
        if self.entries.is_empty() {
            return None;
        }
        let i = if self.head == 0 {
            self.entries.len() - 1
        } else {
            self.head - 1
        };
        Some(self.entries[i])
    }
}

/// Renders one `bfbp-postmortem/1` document: job identity, how it died,
/// and the flight recorder's retained window, oldest entry first.
pub fn postmortem_json(
    recorder: &FlightRecorder,
    series: &str,
    trace: &str,
    job: usize,
    status: &str,
    detail: &str,
) -> String {
    let mut out = format!(
        "{{\n  \"schema\": {},\n  \"job\": {},\n  \"series\": {},\n  \"trace\": {},\n  \
         \"status\": {},\n  \"detail\": {},\n  \"recorded\": {},\n  \"capacity\": {},\n  \
         \"entries\": [",
        json_string(POSTMORTEM_SCHEMA),
        job,
        json_string(series),
        json_string(trace),
        json_string(status),
        json_string(detail),
        recorder.total_recorded(),
        recorder.capacity()
    );
    for (i, entry) in recorder.entries().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&entry.to_json());
    }
    if !recorder.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// One event line under construction for the [`EventJournal`].
///
/// Fields are rendered in insertion order after the journal-stamped
/// `ev` and `t_us` keys.
#[derive(Debug)]
pub struct Event {
    ev: &'static str,
    fields: String,
}

impl Event {
    /// Starts an event of the given kind (`sweep_open`, `job_close`, …).
    pub fn new(ev: &'static str) -> Self {
        Self {
            ev,
            fields: String::new(),
        }
    }

    /// Appends an unsigned integer field.
    pub fn num(mut self, key: &str, value: u64) -> Self {
        self.fields
            .push_str(&format!(", {}: {}", json_string(key), value));
        self
    }

    /// Appends a float field.
    pub fn float(mut self, key: &str, value: f64) -> Self {
        self.fields
            .push_str(&format!(", {}: {}", json_string(key), json_f64(value)));
        self
    }

    /// Appends a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push_str(&format!(", {}: {}", json_string(key), json_string(value)));
        self
    }

    fn render(&self, t_us: u64) -> String {
        format!(
            "{{\"ev\": {}, \"t_us\": {}{}}}\n",
            json_string(self.ev),
            t_us,
            self.fields
        )
    }
}

#[derive(Debug)]
struct EventSink {
    file: std::fs::File,
    last_us: u64,
    warned: bool,
}

/// The `bfbp-events/1` span/event journal: one JSON object per line,
/// stamped with microseconds since the journal was opened. Timestamps
/// are monotonic non-decreasing in file order (writers serialize on an
/// internal lock), and every write is flushed so a crashed run leaves a
/// readable prefix.
#[derive(Debug)]
pub struct EventJournal {
    start: Instant,
    sink: Mutex<EventSink>,
}

impl EventJournal {
    /// Creates (truncating) the journal at `path` and writes the
    /// `journal_open` header event carrying the schema.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::with_options(path.as_ref(), true)
    }

    /// Opens the journal at `path` for appending, creating it (with the
    /// header event) only when missing or empty — so several sweeps of a
    /// campaign can share one journal.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::with_options(path.as_ref(), false)
    }

    fn with_options(path: &Path, truncate: bool) -> std::io::Result<Self> {
        // Same courtesy as the results and postmortem writers: a journal
        // pointed into a not-yet-created directory creates it.
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(truncate)
            .append(!truncate)
            .open(path)?;
        let empty = file.metadata()?.len() == 0;
        let journal = Self {
            start: Instant::now(),
            sink: Mutex::new(EventSink {
                file,
                last_us: 0,
                warned: false,
            }),
        };
        if empty {
            journal.emit(Event::new("journal_open").str("schema", EVENTS_SCHEMA));
        }
        Ok(journal)
    }

    /// Stamps and appends one event. Write failures degrade to a single
    /// stderr warning — observability must never fail the run.
    pub fn emit(&self, event: Event) {
        let elapsed = self.start.elapsed().as_micros() as u64;
        let mut sink = self.sink.lock().unwrap_or_else(PoisonError::into_inner);
        let t_us = elapsed.max(sink.last_us);
        sink.last_us = t_us;
        let line = event.render(t_us);
        let failed = sink
            .file
            .write_all(line.as_bytes())
            .and_then(|()| sink.file.flush())
            .is_err();
        if failed && !sink.warned {
            sink.warned = true;
            eprintln!("warning: event journal write failed; further events may be lost");
        }
    }
}

#[derive(Debug)]
struct ProgressState {
    done: usize,
    failed: usize,
    records: u64,
    busy_secs: f64,
}

/// A live single-line stderr progress report for sweeps: jobs done and
/// failed, aggregate simulation throughput, and an ETA derived from
/// completed-job wall times, rewritten in place with `\r`.
#[derive(Debug)]
pub struct Progress {
    total: usize,
    start: Instant,
    state: Mutex<ProgressState>,
}

impl Progress {
    /// Creates a tracker for `total` pending jobs.
    pub fn new(total: usize) -> Self {
        Self {
            total,
            start: Instant::now(),
            state: Mutex::new(ProgressState {
                done: 0,
                failed: 0,
                records: 0,
                busy_secs: 0.0,
            }),
        }
    }

    /// Records one finished job (`ok == false` counts toward the failed
    /// tally; `records` and `wall_secs` are the job's trace length and
    /// wall time) and redraws the line.
    ///
    /// The ETA scales the mean completed-job wall time by the remaining
    /// job count, divided by the effective parallelism observed so far
    /// (summed job time over elapsed time) — so it stays honest whether
    /// the sweep runs serial or wide.
    pub fn tick(&self, ok: bool, records: u64, wall_secs: f64) {
        let (done, failed, records_total, busy) = {
            let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.done += 1;
            state.failed += usize::from(!ok);
            state.records += records;
            state.busy_secs += wall_secs.max(0.0);
            (state.done, state.failed, state.records, state.busy_secs)
        };
        let elapsed = self.start.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            records_total as f64 / elapsed
        } else {
            0.0
        };
        let eta = if done > 0 {
            let remaining = self.total.saturating_sub(done) as f64;
            let mean_wall = busy / done as f64;
            let parallelism = if elapsed > 0.0 {
                (busy / elapsed).max(1.0)
            } else {
                1.0
            };
            remaining * mean_wall / parallelism
        } else {
            f64::NAN
        };
        eprint!(
            "\r[sweep] {done}/{} jobs done ({failed} failed), {:.3}M rec/s, ETA {eta:.0}s        ",
            self.total,
            rate / 1e6
        );
    }

    /// Terminates the progress line with a newline.
    pub fn finish(&self) {
        eprintln!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 4.0, 16.0]);
        for v in [0.5, 1.0, 3.0, 16.0, 17.0, 1000.0] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 2]);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn metrics_json_is_sorted_and_stable() {
        let mut m = Metrics::new();
        m.incr("z.count", 2);
        m.incr("a.count", 1);
        m.incr("a.count", 1);
        m.gauge("mid.gauge", 0.5);
        m.observe("h", &[1.0], 0.5);
        let json = m.to_json();
        assert!(json.find("\"a.count\": 2").unwrap() < json.find("\"z.count\": 2").unwrap());
        assert!(json.contains("\"mid.gauge\": 0.5"));
        assert!(json.contains("\"bounds\": [1.0], \"counts\": [1, 0]"));
        assert_eq!(m.counter_value("a.count"), Some(2));
        assert_eq!(m.gauge_value("mid.gauge"), Some(0.5));
        assert!(!m.is_empty());
        assert!(!m.render_human().is_empty());
    }

    #[test]
    fn h2p_orders_by_mispredicts_then_pc() {
        let mut t = H2pTable::new();
        for _ in 0..3 {
            t.record(0x20, true, true);
        }
        for _ in 0..3 {
            t.record(0x10, false, true);
        }
        t.record(0x30, true, true);
        t.record(0x40, true, false); // never mispredicted: excluded
        let top = t.top(10);
        assert_eq!(
            top.iter().map(|b| b.pc).collect::<Vec<_>>(),
            vec![0x10, 0x20, 0x30]
        );
        assert_eq!(t.len(), 4);
        assert_eq!(t.total_mispredicted(), 7);
        assert!((top[0].taken_rate() - 0.0).abs() < 1e-12);
        assert!((top[1].taken_rate() - 1.0).abs() < 1e-12);
        let json = t.to_json(2);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"pc\": \"0x10\""));
        assert!(!json.contains("\"pc\": \"0x30\""), "{json}");
        assert!(t.render_table(3).contains("0x10"));
    }

    #[test]
    fn event_journal_stamps_monotonic_lines() {
        let path =
            std::env::temp_dir().join(format!("bfbp-obs-test-{}.events", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let journal = EventJournal::create(&path).unwrap();
        journal.emit(Event::new("job_open").num("job", 0).str("trace", "T1"));
        journal.emit(
            Event::new("job_close")
                .num("job", 0)
                .str("status", "ok")
                .float("mpki", 2.5),
        );
        drop(journal);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(EVENTS_SCHEMA));
        assert!(lines[1].contains("\"ev\": \"job_open\""));
        assert!(lines[2].contains("\"status\": \"ok\""));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        // Re-open appends without a second header.
        let journal = EventJournal::open(&path).unwrap();
        journal.emit(Event::new("sweep_close"));
        drop(journal);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("journal_open").count(), 1);
        assert_eq!(text.lines().count(), 4);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn h2p_table_round_trips_through_state_codec() {
        let mut t = H2pTable::new();
        for i in 0..50u64 {
            t.record(0x1000 + 8 * (i % 7), i % 3 == 0, i % 5 == 0);
        }
        let mut w = StateWriter::new();
        t.save_state(&mut w);
        let bytes = w.into_bytes();
        // Identical state serializes to identical bytes (sorted order).
        let mut w2 = StateWriter::new();
        t.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes());
        let mut back = H2pTable::new();
        back.record(0xDEAD, true, true); // pre-existing junk is replaced
        let mut r = StateReader::new(&bytes);
        back.load_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, t);
        assert_eq!(back.to_json(H2P_TOP_N), t.to_json(H2P_TOP_N));
        // Truncation and impossible counts are rejected.
        let mut trunc = H2pTable::new();
        assert!(trunc
            .load_state(&mut StateReader::new(&bytes[..bytes.len() - 3]))
            .is_err());
        let mut w = StateWriter::new();
        w.usize(1);
        w.u64(0x40);
        w.u64(1); // executed
        w.u64(2); // taken > executed: impossible
        w.u64(0);
        let bad = w.into_bytes();
        assert!(trunc.load_state(&mut StateReader::new(&bad)).is_err());
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let mut h = Histogram::new(&[10.0, 20.0, 40.0]);
        assert_eq!(h.quantile(0.5), None);
        for _ in 0..10 {
            h.observe(5.0); // bucket <=10
        }
        for _ in 0..10 {
            h.observe(15.0); // bucket <=20
        }
        // p50 rank = 10 of 20: exactly the top of the first bucket.
        assert!((h.quantile(0.5).unwrap() - 10.0).abs() < 1e-9);
        // p75 rank = 15: halfway through the 10..20 bucket.
        assert!((h.quantile(0.75).unwrap() - 15.0).abs() < 1e-9);
        assert!((h.quantile(0.0).unwrap() - 0.0).abs() < 1e-9);
        assert!((h.quantile(1.0).unwrap() - 20.0).abs() < 1e-9);
        // Overflow-bucket ranks clamp to the last finite bound.
        let mut over = Histogram::new(&[1.0]);
        over.observe(99.0);
        assert!((over.quantile(0.5).unwrap() - 1.0).abs() < 1e-9);
        let json = h.to_json();
        assert!(json.contains("\"p50\": 10.0"), "{json}");
        assert!(json.contains("\"p90\":"), "{json}");
        assert!(json.contains("\"p99\":"), "{json}");
        // Empty histograms render null quantiles, never invalid JSON.
        let empty = Histogram::new(&[1.0]);
        assert!(empty.to_json().contains("\"p50\": null"));
    }

    #[test]
    fn non_finite_gauges_render_null() {
        let mut m = Metrics::new();
        m.gauge("gauge.a", f64::NAN);
        m.gauge("gauge.b", f64::INFINITY);
        m.gauge("gauge.c", f64::NEG_INFINITY);
        m.gauge("good", 1.5);
        let json = m.to_json();
        assert!(json.contains("\"gauge.a\": null"), "{json}");
        assert!(json.contains("\"gauge.b\": null"), "{json}");
        assert!(json.contains("\"gauge.c\": null"), "{json}");
        assert!(json.contains("\"good\": 1.5"), "{json}");
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    }

    #[test]
    fn flight_recorder_keeps_last_n_in_order() {
        let mut rec = FlightRecorder::new(4);
        assert!(rec.is_empty());
        assert_eq!(rec.last(), None);
        for i in 0..10u64 {
            rec.record(FlightEntry {
                index: i,
                pc: 0x1000 + i,
                kind: BranchKind::CondDirect,
                predicted: i % 2 == 0,
                outcome: true,
                provenance: Some(Provenance::of("unit", i % 2 == 0)),
            });
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.capacity(), 4);
        assert_eq!(rec.total_recorded(), 10);
        let idx: Vec<u64> = rec.entries().iter().map(|e| e.index).collect();
        assert_eq!(idx, vec![6, 7, 8, 9]);
        assert_eq!(rec.last().unwrap().index, 9);
        assert!(rec.last().unwrap().mispredicted()); // predicted false, taken
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.total_recorded(), 0);
        // Capacity 0 is clamped, not a panic.
        let mut one = FlightRecorder::new(0);
        one.record(FlightEntry {
            index: 0,
            pc: 0,
            kind: BranchKind::Return,
            predicted: true,
            outcome: true,
            provenance: None,
        });
        assert_eq!(one.len(), 1);
        assert!(!one.last().unwrap().mispredicted()); // non-conditional
    }

    #[test]
    fn postmortem_json_shape() {
        let mut rec = FlightRecorder::new(8);
        rec.record(FlightEntry {
            index: 41,
            pc: 0x4000,
            kind: BranchKind::CondDirect,
            predicted: true,
            outcome: false,
            provenance: Some(Provenance {
                component: "tage",
                table: Some(3),
                prediction: true,
                alternate: Some(false),
                counter: Some(-2),
                margin: None,
                history_len: Some(27),
            }),
        });
        let json = postmortem_json(&rec, "bf-tage", "SERV1", 7, "killed", "kill@7=4096");
        assert!(json.contains("\"schema\": \"bfbp-postmortem/1\""), "{json}");
        assert!(json.contains("\"job\": 7"), "{json}");
        assert!(json.contains("\"status\": \"killed\""), "{json}");
        assert!(json.contains("\"pc\": \"0x4000\""), "{json}");
        assert!(json.contains("\"component\": \"tage\""), "{json}");
        assert!(json.contains("\"table\": 3"), "{json}");
        assert!(json.contains("\"counter\": -2"), "{json}");
        assert!(json.contains("\"margin\": null"), "{json}");
        assert!(json.contains("\"mispredicted\": true"), "{json}");
        // Empty recorder still renders a valid document.
        let empty = postmortem_json(&FlightRecorder::new(2), "s", "t", 0, "failed", "boom");
        assert!(empty.contains("\"entries\": []"), "{empty}");
    }

    #[test]
    fn job_obs_json_renders_null_when_absent() {
        let json = job_obs_json("s", "t", None, 8);
        assert!(json.contains("\"metrics\": null"));
        let obs = JobObs::default();
        let json = job_obs_json("s", "t", Some(&obs), 8);
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"h2p\": []"));
    }
}
