//! The sweep checkpoint journal: completed-job records appended as each
//! job finishes, so an interrupted or partially-failed campaign can be
//! resumed without redoing finished work.
//!
//! The format is line-oriented plain text (one record per line, fields
//! `%`-escaped), deliberately not JSON: it must be appendable from
//! concurrent workers, parseable with zero dependencies, and robust to a
//! truncated final line (a crash mid-append loses at most that line —
//! every earlier record stays usable).
//!
//! ```text
//! bfbp-journal/2 matrix=<16-hex FNV of the job matrix> jobs=<n>
//! ok <job> attempts=<n> wall_us=<n> trace=<esc> predictor=<esc> cond=<n> misp=<n> insts=<n> intervals=<i:c:m,...|->
//! failed <job> attempts=<n> error=<esc>
//! timed_out <job> attempts=<n>
//! killed <job> attempts=<n>
//! skipped <job>
//! ckpt <job> records=<n> file=<esc>
//! ```
//!
//! The `matrix` field fingerprints the (spec × trace × interval) matrix;
//! [`Journal::load`] refuses to resume a journal recorded for a
//! different matrix, because job indices would silently point at
//! different work. Only `ok` records are restored on resume — failed,
//! timed-out, killed, and skipped jobs are re-run.
//!
//! `bfbp-journal/2` adds two line kinds over `/1`: `ckpt` references the
//! latest mid-job `bfbp-ckpt/1` snapshot file written for a still-running
//! job (so an operator can see where a crashed campaign would resume
//! from), and `killed` records a fault-injected simulated process death.
//! The engine never writes `killed` in practice — a killed job
//! deliberately leaves **no** terminal entry, exactly like a real
//! SIGKILL — but the codec is total over [`JobStatus`] so round-trips
//! stay lossless. [`Journal::load`] accepts `/1` journals unchanged
//! (they simply contain neither new line kind).

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use crate::engine::{JobOutcome, JobRecord, JobStatus, SeriesInfo};
use crate::simulate::{IntervalPoint, SimResult};

/// Journal format identifier (first token of the header line).
pub const JOURNAL_SCHEMA: &str = "bfbp-journal/2";

/// The previous journal format, still accepted by [`Journal::load`]: a
/// strict subset of `/2` (no `ckpt` or `killed` lines).
pub const LEGACY_JOURNAL_SCHEMA: &str = "bfbp-journal/1";

/// Why a journal could not be written, read, or matched to a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// Filesystem failure (message carries the rendered `io::Error`).
    Io {
        /// The journal path involved.
        path: PathBuf,
        /// Rendered underlying error.
        error: String,
    },
    /// A line did not parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// The journal was recorded for a different (spec × trace) matrix.
    MatrixMismatch {
        /// Fingerprint of the sweep being resumed.
        expected: u64,
        /// Fingerprint recorded in the journal header.
        found: u64,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, error } => {
                write!(f, "journal i/o error at {}: {error}", path.display())
            }
            JournalError::Parse { line, reason } => {
                write!(f, "journal parse error at line {line}: {reason}")
            }
            JournalError::MatrixMismatch { expected, found } => write!(
                f,
                "journal matrix mismatch: sweep is {expected:016x}, journal records {found:016x} \
                 — the journal belongs to a different (spec × trace) matrix"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(path: &Path, error: std::io::Error) -> JournalError {
    JournalError::Io {
        path: path.to_owned(),
        error: error.to_string(),
    }
}

/// Fingerprints a sweep's job matrix: every series' label, predictor,
/// and effective parameters, every trace name, and the interval width.
/// FNV-1a over a length-prefixed field stream, so field boundaries are
/// unambiguous.
pub fn matrix_id(series: &[SeriesInfo], trace_names: &[String], interval_insts: u64) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in (bytes.len() as u64).to_le_bytes().iter().chain(bytes) {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01B3);
        }
    };
    for info in series {
        eat(info.label.as_bytes());
        eat(info.predictor.as_bytes());
        eat(info.params.summary().as_bytes());
    }
    for name in trace_names {
        eat(name.as_bytes());
    }
    eat(&interval_insts.to_le_bytes());
    hash
}

/// `%`-escapes a field so it contains no whitespace (the journal's
/// field separator) and survives a round trip byte-exact.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\n' => out.push_str("%0A"),
            '\t' => out.push_str("%09"),
            '\r' => out.push_str("%0D"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let pair: String = chars.by_ref().take(2).collect();
        match pair.as_str() {
            "25" => out.push('%'),
            "20" => out.push(' '),
            "0A" => out.push('\n'),
            "09" => out.push('\t'),
            "0D" => out.push('\r'),
            other => {
                // Tolerate unknown escapes: keep them verbatim.
                out.push('%');
                out.push_str(other);
            }
        }
    }
    out
}

/// Renders one completed job as a journal line (without the newline).
pub fn render_entry(job: usize, outcome: &JobOutcome) -> String {
    match &outcome.status {
        JobStatus::Ok(record) => {
            let r = &record.result;
            let intervals = if record.intervals.is_empty() {
                "-".to_owned()
            } else {
                record
                    .intervals
                    .iter()
                    .map(|iv| {
                        format!(
                            "{}:{}:{}",
                            iv.instructions, iv.conditional_branches, iv.mispredictions
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",")
            };
            format!(
                "ok {job} attempts={} wall_us={} trace={} predictor={} cond={} misp={} insts={} intervals={intervals}",
                outcome.attempts,
                record.wall.as_micros(),
                escape(r.trace_name()),
                escape(r.predictor_name()),
                r.conditional_branches(),
                r.mispredictions(),
                r.instructions(),
            )
        }
        JobStatus::Failed { error } => format!(
            "failed {job} attempts={} error={}",
            outcome.attempts,
            escape(error)
        ),
        JobStatus::TimedOut => format!("timed_out {job} attempts={}", outcome.attempts),
        JobStatus::Killed => format!("killed {job} attempts={}", outcome.attempts),
        JobStatus::Skipped => format!("skipped {job}"),
    }
}

/// Renders a mid-job checkpoint reference line (without the newline).
pub fn render_ckpt_ref(job: usize, records: u64, file: &Path) -> String {
    format!(
        "ckpt {job} records={records} file={}",
        escape(&file.display().to_string())
    )
}

fn field<'a>(token: Option<&'a str>, key: &str, line: usize) -> Result<&'a str, JournalError> {
    let token = token.ok_or(JournalError::Parse {
        line,
        reason: format!("missing field {key}"),
    })?;
    token
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or(JournalError::Parse {
            line,
            reason: format!("expected {key}=..., got {token:?}"),
        })
}

fn number<T: std::str::FromStr>(text: &str, what: &str, line: usize) -> Result<T, JournalError> {
    text.parse().map_err(|_| JournalError::Parse {
        line,
        reason: format!("{what} is not a number: {text:?}"),
    })
}

/// Parses one journal entry line. `line` is the 1-based line number for
/// error messages.
pub fn parse_entry(text: &str, line: usize) -> Result<(usize, JobOutcome), JournalError> {
    let mut tokens = text.split(' ');
    let status = tokens.next().unwrap_or_default();
    let job: usize = number(
        tokens.next().ok_or(JournalError::Parse {
            line,
            reason: "missing job index".into(),
        })?,
        "job index",
        line,
    )?;
    let outcome = match status {
        "ok" => {
            let attempts = number(field(tokens.next(), "attempts", line)?, "attempts", line)?;
            let wall_us: u64 = number(field(tokens.next(), "wall_us", line)?, "wall_us", line)?;
            let trace = unescape(field(tokens.next(), "trace", line)?);
            let predictor = unescape(field(tokens.next(), "predictor", line)?);
            let cond: u64 = number(field(tokens.next(), "cond", line)?, "cond", line)?;
            let misp: u64 = number(field(tokens.next(), "misp", line)?, "misp", line)?;
            let insts: u64 = number(field(tokens.next(), "insts", line)?, "insts", line)?;
            let intervals_text = field(tokens.next(), "intervals", line)?;
            let mut intervals = Vec::new();
            if intervals_text != "-" {
                for triple in intervals_text.split(',') {
                    let mut parts = triple.split(':');
                    let mut next = |what: &str| -> Result<u64, JournalError> {
                        number(
                            parts.next().ok_or(JournalError::Parse {
                                line,
                                reason: format!("interval triple {triple:?} missing {what}"),
                            })?,
                            what,
                            line,
                        )
                    };
                    intervals.push(IntervalPoint {
                        instructions: next("instructions")?,
                        conditional_branches: next("conditional_branches")?,
                        mispredictions: next("mispredictions")?,
                    });
                }
            }
            let wall = Duration::from_micros(wall_us);
            JobOutcome {
                status: JobStatus::Ok(JobRecord {
                    result: SimResult::from_counts(trace, predictor, cond, misp, insts),
                    intervals,
                    wall,
                }),
                attempts,
                wall,
            }
        }
        "failed" => {
            let attempts = number(field(tokens.next(), "attempts", line)?, "attempts", line)?;
            let error = unescape(field(tokens.next(), "error", line)?);
            JobOutcome {
                status: JobStatus::Failed { error },
                attempts,
                wall: Duration::ZERO,
            }
        }
        "timed_out" => {
            let attempts = number(field(tokens.next(), "attempts", line)?, "attempts", line)?;
            JobOutcome {
                status: JobStatus::TimedOut,
                attempts,
                wall: Duration::ZERO,
            }
        }
        "killed" => {
            let attempts = number(field(tokens.next(), "attempts", line)?, "attempts", line)?;
            JobOutcome {
                status: JobStatus::Killed,
                attempts,
                wall: Duration::ZERO,
            }
        }
        "skipped" => JobOutcome {
            status: JobStatus::Skipped,
            attempts: 0,
            wall: Duration::ZERO,
        },
        other => {
            return Err(JournalError::Parse {
                line,
                reason: format!("unknown status {other:?}"),
            })
        }
    };
    Ok((job, outcome))
}

/// Parses one `ckpt` reference line produced by [`render_ckpt_ref`].
pub fn parse_ckpt_ref(text: &str, line: usize) -> Result<(usize, CkptRef), JournalError> {
    let mut tokens = text.split(' ');
    let keyword = tokens.next().unwrap_or_default();
    if keyword != "ckpt" {
        return Err(JournalError::Parse {
            line,
            reason: format!("not a ckpt line: {keyword:?}"),
        });
    }
    let job: usize = number(
        tokens.next().ok_or(JournalError::Parse {
            line,
            reason: "missing job index".into(),
        })?,
        "job index",
        line,
    )?;
    let records: u64 = number(field(tokens.next(), "records", line)?, "records", line)?;
    let file = PathBuf::from(unescape(field(tokens.next(), "file", line)?));
    Ok((job, CkptRef { records, file }))
}

/// Reference to the latest mid-job checkpoint recorded for a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptRef {
    /// Trace records the checkpoint covers.
    pub records: u64,
    /// Path of the `bfbp-ckpt/1` file, as recorded.
    pub file: PathBuf,
}

/// Everything read back from a journal file.
#[derive(Debug)]
pub struct LoadedJournal {
    /// Matrix fingerprint from the header.
    pub matrix_id: u64,
    /// Total job count from the header.
    pub n_jobs: usize,
    /// Last recorded outcome per job index (all statuses).
    pub entries: BTreeMap<usize, JobOutcome>,
    /// Last mid-job checkpoint reference per job index (`bfbp-journal/2`
    /// only; empty for legacy `/1` journals).
    pub checkpoints: BTreeMap<usize, CkptRef>,
}

impl LoadedJournal {
    /// The subset of entries that finished successfully — the jobs a
    /// resume run restores instead of re-running.
    pub fn completed(&self) -> BTreeMap<usize, JobOutcome> {
        self.entries
            .iter()
            .filter(|(_, o)| o.is_ok())
            .map(|(j, o)| (*j, o.clone()))
            .collect()
    }
}

/// Append-mode checkpoint writer shared across sweep workers.
///
/// The file handle sits behind a `Mutex`; a worker that panics while
/// holding the lock (it cannot — appends don't panic — but belt and
/// braces) poisons nothing observable, because every lock site recovers
/// with `into_inner`-style poison stripping.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
}

impl Journal {
    /// Creates (truncates) a journal and writes the header.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be created or written.
    pub fn create(path: &Path, matrix_id: u64, n_jobs: usize) -> Result<Self, JournalError> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).map_err(|e| io_err(path, e))?;
        }
        let mut file = File::create(path).map_err(|e| io_err(path, e))?;
        writeln!(
            file,
            "{JOURNAL_SCHEMA} matrix={matrix_id:016x} jobs={n_jobs}"
        )
        .map_err(|e| io_err(path, e))?;
        file.flush().map_err(|e| io_err(path, e))?;
        Ok(Self {
            path: path.to_owned(),
            file: Mutex::new(file),
        })
    }

    /// Opens an existing journal for appending (header left untouched).
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be opened.
    pub fn append_to(path: &Path) -> Result<Self, JournalError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        Ok(Self {
            path: path.to_owned(),
            file: Mutex::new(file),
        })
    }

    /// Appends one completed-job record and flushes, so the checkpoint
    /// survives a crash immediately after the job finished.
    ///
    /// # Errors
    ///
    /// Returns an error if the append fails.
    pub fn record(&self, job: usize, outcome: &JobOutcome) -> Result<(), JournalError> {
        let line = render_entry(job, outcome);
        // Recover a poisoned lock: the file is still valid, the worst
        // case is one duplicated/interleaved line, and last-wins load
        // semantics absorb duplicates.
        let mut file = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        writeln!(file, "{line}").map_err(|e| io_err(&self.path, e))?;
        file.flush().map_err(|e| io_err(&self.path, e))
    }

    /// Appends a mid-job checkpoint reference and flushes, so the latest
    /// resume point of every in-flight job is visible even after a hard
    /// crash of the whole sweep process.
    ///
    /// # Errors
    ///
    /// Returns an error if the append fails.
    pub fn record_ckpt(&self, job: usize, records: u64, file: &Path) -> Result<(), JournalError> {
        let line = render_ckpt_ref(job, records, file);
        let mut sink = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        writeln!(sink, "{line}").map_err(|e| io_err(&self.path, e))?;
        sink.flush().map_err(|e| io_err(&self.path, e))
    }

    /// Reads a journal back, verifying the header against `expect_matrix`
    /// (pass `None` to skip the check) and keeping the last entry per
    /// job. A trailing truncated line (crash artifact) is ignored; any
    /// other malformed line is an error.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure, a malformed header or entry, or
    /// a matrix fingerprint mismatch.
    pub fn load(path: &Path, expect_matrix: Option<u64>) -> Result<LoadedJournal, JournalError> {
        let file = File::open(path).map_err(|e| io_err(path, e))?;
        let reader = BufReader::new(file);
        let mut lines = Vec::new();
        for line in reader.lines() {
            lines.push(line.map_err(|e| io_err(path, e))?);
        }
        let header = lines.first().ok_or(JournalError::Parse {
            line: 1,
            reason: "empty journal".into(),
        })?;
        let mut tokens = header.split(' ');
        let schema = tokens.next();
        if schema != Some(JOURNAL_SCHEMA) && schema != Some(LEGACY_JOURNAL_SCHEMA) {
            return Err(JournalError::Parse {
                line: 1,
                reason: format!("not a {JOURNAL_SCHEMA} header: {header:?}"),
            });
        }
        let matrix_hex = field(tokens.next(), "matrix", 1)?;
        let found = u64::from_str_radix(matrix_hex, 16).map_err(|_| JournalError::Parse {
            line: 1,
            reason: format!("bad matrix fingerprint {matrix_hex:?}"),
        })?;
        let n_jobs: usize = number(field(tokens.next(), "jobs", 1)?, "jobs", 1)?;
        if let Some(expected) = expect_matrix {
            if expected != found {
                return Err(JournalError::MatrixMismatch { expected, found });
            }
        }
        let mut entries = BTreeMap::new();
        let mut checkpoints = BTreeMap::new();
        let last = lines.len();
        for (i, line) in lines.iter().enumerate().skip(1) {
            if line.is_empty() {
                continue;
            }
            let parsed = if line.starts_with("ckpt ") {
                parse_ckpt_ref(line, i + 1).map(|(job, ckpt)| {
                    checkpoints.insert(job, ckpt);
                })
            } else {
                parse_entry(line, i + 1).map(|(job, outcome)| {
                    entries.insert(job, outcome);
                })
            };
            match parsed {
                Ok(()) => {}
                // The final line may be a torn write from a crash; every
                // complete line before it is still good.
                Err(_) if i + 1 == last => break,
                Err(e) => return Err(e),
            }
        }
        Ok(LoadedJournal {
            matrix_id: found,
            n_jobs,
            entries,
            checkpoints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_outcome() -> JobOutcome {
        JobOutcome {
            status: JobStatus::Ok(JobRecord {
                result: SimResult::from_counts("INT 1%x", "gshare", 100, 7, 2000),
                intervals: vec![
                    IntervalPoint {
                        instructions: 1000,
                        conditional_branches: 50,
                        mispredictions: 3,
                    },
                    IntervalPoint {
                        instructions: 1000,
                        conditional_branches: 50,
                        mispredictions: 4,
                    },
                ],
                wall: Duration::from_micros(1234),
            }),
            attempts: 2,
            wall: Duration::from_micros(1234),
        }
    }

    #[test]
    fn entries_round_trip_every_status() {
        let outcomes = [
            ok_outcome(),
            JobOutcome {
                status: JobStatus::Failed {
                    error: "panic: boom with spaces\nand a newline".into(),
                },
                attempts: 3,
                wall: Duration::ZERO,
            },
            JobOutcome {
                status: JobStatus::TimedOut,
                attempts: 1,
                wall: Duration::ZERO,
            },
            JobOutcome {
                status: JobStatus::Skipped,
                attempts: 0,
                wall: Duration::ZERO,
            },
            JobOutcome {
                status: JobStatus::Killed,
                attempts: 1,
                wall: Duration::ZERO,
            },
        ];
        for (i, outcome) in outcomes.iter().enumerate() {
            let line = render_entry(i, outcome);
            assert!(!line.contains('\n'), "{line:?}");
            let (job, back) = parse_entry(&line, 1).expect(&line);
            assert_eq!(job, i);
            // wall for non-ok entries is not persisted; compare status.
            assert_eq!(back.status, outcome.status, "{line}");
            assert_eq!(back.attempts, outcome.attempts);
        }
    }

    #[test]
    fn escape_round_trips() {
        for s in [
            "plain",
            "a b",
            "pct%20already",
            "tab\there",
            "nl\nthere",
            "%",
        ] {
            assert_eq!(unescape(&escape(s)), s, "{s:?}");
        }
    }

    #[test]
    fn journal_file_round_trip_last_wins_and_torn_tail() {
        let dir = std::env::temp_dir().join("bfbp-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.journal");
        let journal = Journal::create(&path, 0xDEAD_BEEF, 4).unwrap();
        let failed = JobOutcome {
            status: JobStatus::Failed {
                error: "first attempt".into(),
            },
            attempts: 1,
            wall: Duration::ZERO,
        };
        journal.record(0, &failed).unwrap();
        journal.record(1, &ok_outcome()).unwrap();
        journal.record(0, &ok_outcome()).unwrap(); // last wins
        drop(journal);

        // Torn tail: append half a line without newline-terminated fields.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "ok 2 attempts=1 wall_us=9 trace=t").unwrap();
        }

        let loaded = Journal::load(&path, Some(0xDEAD_BEEF)).unwrap();
        assert_eq!(loaded.matrix_id, 0xDEAD_BEEF);
        assert_eq!(loaded.n_jobs, 4);
        assert_eq!(loaded.entries.len(), 2);
        assert!(loaded.entries[&0].is_ok(), "last entry for job 0 wins");
        let completed = loaded.completed();
        assert_eq!(completed.len(), 2);

        assert!(matches!(
            Journal::load(&path, Some(0x1234)),
            Err(JournalError::MatrixMismatch { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("bfbp-journal-test-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.journal");
        std::fs::write(&path, "not a journal\n").unwrap();
        assert!(matches!(
            Journal::load(&path, None),
            Err(JournalError::Parse { line: 1, .. })
        ));
        // A malformed line that is NOT the last one is a hard error.
        std::fs::write(
            &path,
            format!(
                "{JOURNAL_SCHEMA} matrix=0000000000000001 jobs=2\ngarbage line zero\nskipped 1\n"
            ),
        )
        .unwrap();
        assert!(matches!(
            Journal::load(&path, None),
            Err(JournalError::Parse { .. })
        ));
        assert!(matches!(
            Journal::load(&dir.join("missing.journal"), None),
            Err(JournalError::Io { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ckpt_refs_round_trip_and_load_last_wins() {
        let line = render_ckpt_ref(3, 50_000, Path::new("/tmp/dir with space/job-3.ckpt"));
        assert!(!line.contains("dir with space"), "spaces must escape");
        let (job, ckpt) = parse_ckpt_ref(&line, 1).unwrap();
        assert_eq!(job, 3);
        assert_eq!(ckpt.records, 50_000);
        assert_eq!(ckpt.file, PathBuf::from("/tmp/dir with space/job-3.ckpt"));
        assert!(parse_ckpt_ref("ok 1 attempts=1", 1).is_err());

        let dir = std::env::temp_dir().join("bfbp-journal-test-ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.journal");
        let journal = Journal::create(&path, 0xC0FFEE, 2).unwrap();
        journal
            .record_ckpt(0, 1000, Path::new("ck/job-0.ckpt"))
            .unwrap();
        journal
            .record_ckpt(1, 1000, Path::new("ck/job-1.ckpt"))
            .unwrap();
        journal
            .record_ckpt(0, 2000, Path::new("ck/job-0.ckpt"))
            .unwrap();
        journal.record(1, &ok_outcome()).unwrap();
        drop(journal);
        let loaded = Journal::load(&path, Some(0xC0FFEE)).unwrap();
        assert_eq!(loaded.checkpoints.len(), 2);
        assert_eq!(loaded.checkpoints[&0].records, 2000, "last ckpt ref wins");
        assert_eq!(loaded.entries.len(), 1);

        // A torn trailing ckpt line is tolerated like a torn entry.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "ckpt 0 records=").unwrap();
        }
        let reloaded = Journal::load(&path, Some(0xC0FFEE)).unwrap();
        assert_eq!(reloaded.checkpoints[&0].records, 2000);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_v1_journals_still_load() {
        let dir = std::env::temp_dir().join("bfbp-journal-test-legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v1.journal");
        std::fs::write(
            &path,
            format!("{LEGACY_JOURNAL_SCHEMA} matrix=00000000deadbeef jobs=2\nskipped 0\n"),
        )
        .unwrap();
        let loaded = Journal::load(&path, Some(0xDEAD_BEEF)).unwrap();
        assert_eq!(loaded.n_jobs, 2);
        assert_eq!(loaded.entries.len(), 1);
        assert!(loaded.checkpoints.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn matrix_id_discriminates_fields() {
        use crate::registry::Params;
        let series = |label: &str, pred: &str| SeriesInfo {
            label: label.into(),
            predictor: pred.into(),
            params: Params::new(),
            predictor_name: pred.into(),
            storage_bytes: 0,
        };
        let traces = vec!["A".to_owned(), "B".to_owned()];
        let base = matrix_id(&[series("x", "gshare")], &traces, 100);
        assert_ne!(base, matrix_id(&[series("y", "gshare")], &traces, 100));
        assert_ne!(base, matrix_id(&[series("x", "bimodal")], &traces, 100));
        assert_ne!(base, matrix_id(&[series("x", "gshare")], &traces, 200));
        assert_ne!(
            base,
            matrix_id(&[series("x", "gshare")], &["A".to_owned()], 100)
        );
        // Field boundaries are length-prefixed: ["ab","c"] != ["a","bc"].
        assert_ne!(
            matrix_id(&[], &["ab".to_owned(), "c".to_owned()], 0),
            matrix_id(&[], &["a".to_owned(), "bc".to_owned()], 0)
        );
        assert_eq!(base, matrix_id(&[series("x", "gshare")], &traces, 100));
    }
}
