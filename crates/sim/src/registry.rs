//! The predictor registry: the single construction API for every
//! predictor in the workspace.
//!
//! Each predictor crate registers a **name**, a **default parameter
//! set**, and a **builder** once (see `bfbp_predictors::register`,
//! `bfbp_tage::register`, `bfbp_core::register`, composed by
//! `bfbp::default_registry`). Harnesses then construct predictors from
//! data — a [`PredictorSpec`] naming a registered predictor plus
//! parameter overrides — instead of hand-rolling
//! `Box<dyn ConditionalPredictor>` factory closures in every binary.
//!
//! Parameters are validated against the registered defaults: a key that
//! is not in the default set is rejected ([`BuildError::UnknownParam`]),
//! so typos fail loudly instead of silently running the default
//! configuration.
//!
//! ```
//! use bfbp_sim::registry::{Params, PredictorRegistry, PredictorSpec};
//!
//! let registry = PredictorRegistry::with_builtins();
//! let p = registry.build("static-taken", &Params::new()).unwrap();
//! assert_eq!(p.name(), "static-taken");
//!
//! let spec = PredictorSpec::parse("static-not-taken").unwrap();
//! assert!(registry.build_spec(&spec).is_ok());
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::predictor::{ConditionalPredictor, PredictorCaps, StaticPredictor};

/// A typed parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// A signed integer (table counts, log2 sizes, depths).
    Int(i64),
    /// A floating-point number (scales, probabilities).
    Float(f64),
    /// A flag (e.g. `sc`, `folded-hist`).
    Bool(bool),
    /// A free-form string (e.g. `history-mode`).
    Str(String),
}

impl ParamValue {
    /// Parses from text: `true`/`false`, then integer, then float, then
    /// plain string. Used by [`PredictorSpec::parse`].
    pub fn parse(text: &str) -> ParamValue {
        match text {
            "true" => ParamValue::Bool(true),
            "false" => ParamValue::Bool(false),
            _ => {
                if let Ok(i) = text.parse::<i64>() {
                    ParamValue::Int(i)
                } else if let Ok(f) = text.parse::<f64>() {
                    ParamValue::Float(f)
                } else {
                    ParamValue::Str(text.to_owned())
                }
            }
        }
    }

    /// The type name used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            ParamValue::Int(_) => "int",
            ParamValue::Float(_) => "float",
            ParamValue::Bool(_) => "bool",
            ParamValue::Str(_) => "string",
        }
    }

    /// Renders the value as a JSON literal (strings quoted and escaped).
    pub fn to_json(&self) -> String {
        match self {
            ParamValue::Int(i) => i.to_string(),
            ParamValue::Float(f) if f.is_finite() => f.to_string(),
            ParamValue::Float(_) => "null".to_owned(),
            ParamValue::Bool(b) => b.to_string(),
            ParamValue::Str(s) => crate::engine::json_string(s),
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Int(i) => write!(f, "{i}"),
            ParamValue::Float(x) => write!(f, "{x}"),
            ParamValue::Bool(b) => write!(f, "{b}"),
            ParamValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::Int(v)
    }
}
impl From<i32> for ParamValue {
    fn from(v: i32) -> Self {
        ParamValue::Int(i64::from(v))
    }
}
impl From<u32> for ParamValue {
    fn from(v: u32) -> Self {
        ParamValue::Int(i64::from(v))
    }
}
impl From<usize> for ParamValue {
    fn from(v: usize) -> Self {
        ParamValue::Int(v as i64)
    }
}
impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Float(v)
    }
}
impl From<bool> for ParamValue {
    fn from(v: bool) -> Self {
        ParamValue::Bool(v)
    }
}
impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Str(v.to_owned())
    }
}
impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Str(v)
    }
}

/// An ordered key → value parameter set.
///
/// Ordering (BTreeMap) keeps summaries and JSON output deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params {
    values: BTreeMap<String, ParamValue>,
}

impl Params {
    /// An empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insertion.
    pub fn set(mut self, key: &str, value: impl Into<ParamValue>) -> Self {
        self.insert(key, value);
        self
    }

    /// Inserts (or replaces) a parameter.
    pub fn insert(&mut self, key: &str, value: impl Into<ParamValue>) {
        self.values.insert(key.to_owned(), value.into());
    }

    /// Looks up a parameter.
    pub fn get(&self, key: &str) -> Option<&ParamValue> {
        self.values.get(key)
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates parameters in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All parameter keys in order, for error messages and search-space
    /// validation.
    pub fn keys(&self) -> Vec<String> {
        self.values.keys().cloned().collect()
    }

    fn required(&self, key: &str) -> Result<&ParamValue, BuildError> {
        self.get(key).ok_or_else(|| BuildError::UnknownParam {
            param: key.to_owned(),
            known: self.keys(),
        })
    }

    /// Reads an integer parameter as `usize`.
    pub fn usize(&self, key: &str) -> Result<usize, BuildError> {
        match self.required(key)? {
            ParamValue::Int(i) if *i >= 0 => Ok(*i as usize),
            other => Err(BuildError::invalid(
                key,
                format!(
                    "expected a non-negative int, got {other} ({})",
                    other.type_name()
                ),
            )),
        }
    }

    /// Reads an integer parameter as `u32`.
    pub fn u32(&self, key: &str) -> Result<u32, BuildError> {
        let v = self.usize(key)?;
        u32::try_from(v).map_err(|_| BuildError::invalid(key, format!("{v} out of range for u32")))
    }

    /// Reads a float parameter (integers widen).
    pub fn f64(&self, key: &str) -> Result<f64, BuildError> {
        match self.required(key)? {
            ParamValue::Float(f) => Ok(*f),
            ParamValue::Int(i) => Ok(*i as f64),
            other => Err(BuildError::invalid(
                key,
                format!("expected a number, got {other} ({})", other.type_name()),
            )),
        }
    }

    /// Reads a boolean parameter.
    pub fn bool(&self, key: &str) -> Result<bool, BuildError> {
        match self.required(key)? {
            ParamValue::Bool(b) => Ok(*b),
            other => Err(BuildError::invalid(
                key,
                format!("expected true/false, got {other} ({})", other.type_name()),
            )),
        }
    }

    /// Reads a string parameter.
    pub fn str(&self, key: &str) -> Result<&str, BuildError> {
        match self.required(key)? {
            ParamValue::Str(s) => Ok(s),
            other => Err(BuildError::invalid(
                key,
                format!("expected a string, got {other} ({})", other.type_name()),
            )),
        }
    }

    /// Overlays `overrides` on `self` (the defaults). Every override key
    /// must already exist in the defaults — that is the registry's
    /// unknown-parameter check.
    pub fn merged_with(&self, overrides: &Params) -> Result<Params, BuildError> {
        let mut merged = self.clone();
        for (key, value) in overrides.iter() {
            if !merged.values.contains_key(key) {
                return Err(BuildError::UnknownParam {
                    param: key.to_owned(),
                    known: self.keys(),
                });
            }
            merged.values.insert(key.to_owned(), value.clone());
        }
        Ok(merged)
    }

    /// A compact `k=v,k=v` rendering (deterministic key order).
    pub fn summary(&self) -> String {
        self.iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Why a predictor could not be built from a spec.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// The spec names a predictor that is not registered.
    UnknownPredictor {
        /// The requested name.
        name: String,
        /// All registered names, for the error message.
        known: Vec<String>,
    },
    /// A parameter key is not accepted by the predictor (or is missing
    /// from its defaults).
    UnknownParam {
        /// The offending key.
        param: String,
        /// Every key the predictor accepts (its declared defaults), so
        /// the error names the valid alternatives.
        known: Vec<String>,
    },
    /// A parameter value is out of range or of the wrong type.
    InvalidValue {
        /// The offending key.
        param: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A spec string could not be parsed.
    Malformed {
        /// Human-readable reason.
        reason: String,
    },
}

impl BuildError {
    /// Convenience constructor for [`BuildError::InvalidValue`].
    pub fn invalid(param: &str, reason: impl Into<String>) -> Self {
        BuildError::InvalidValue {
            param: param.to_owned(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownPredictor { name, known } => {
                write!(
                    f,
                    "unknown predictor {name:?}; registered: {}",
                    known.join(", ")
                )
            }
            BuildError::UnknownParam { param, known } => {
                if known.is_empty() {
                    write!(f, "unknown parameter {param:?}; takes no parameters")
                } else {
                    write!(
                        f,
                        "unknown parameter {param:?}; accepted: {}",
                        known.join(", ")
                    )
                }
            }
            BuildError::InvalidValue { param, reason } => {
                write!(f, "invalid value for {param:?}: {reason}")
            }
            BuildError::Malformed { reason } => {
                write!(f, "malformed predictor spec: {reason}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// A predictor configuration as data: a registered name, optional
/// display label, and parameter overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictorSpec {
    predictor: String,
    label: Option<String>,
    params: Params,
}

impl PredictorSpec {
    /// A spec for `predictor` with default parameters.
    pub fn new(predictor: &str) -> Self {
        Self {
            predictor: predictor.to_owned(),
            label: None,
            params: Params::new(),
        }
    }

    /// Builder-style parameter override.
    pub fn with(mut self, key: &str, value: impl Into<ParamValue>) -> Self {
        self.params.insert(key, value);
        self
    }

    /// Sets the display label used in tables and result series.
    pub fn labeled(mut self, label: &str) -> Self {
        self.label = Some(label.to_owned());
        self
    }

    /// The registered predictor name.
    pub fn predictor(&self) -> &str {
        &self.predictor
    }

    /// The parameter overrides (not including registry defaults).
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The display label: the explicit one, else the predictor name
    /// (with an `{k=v,...}` suffix when overrides are present).
    pub fn label(&self) -> String {
        match &self.label {
            Some(l) => l.clone(),
            None if self.params.is_empty() => self.predictor.clone(),
            None => format!("{}{{{}}}", self.predictor, self.params.summary()),
        }
    }

    /// Parses `[label=]name[:key=value,key=value,...]`.
    ///
    /// Values parse as bool, then int, then float, then string:
    /// `TAGE=isl-tage:tables=15,sc=false`.
    pub fn parse(text: &str) -> Result<Self, BuildError> {
        let (head, params_text) = match text.split_once(':') {
            Some((h, p)) => (h, Some(p)),
            None => (text, None),
        };
        let (label, name) = match head.split_once('=') {
            Some((l, n)) => (Some(l), n),
            None => (None, head),
        };
        if name.is_empty() {
            return Err(BuildError::Malformed {
                reason: format!("empty predictor name in {text:?}"),
            });
        }
        let mut spec = PredictorSpec::new(name);
        if let Some(label) = label {
            spec = spec.labeled(label);
        }
        if let Some(params_text) = params_text {
            for pair in params_text.split(',').filter(|p| !p.is_empty()) {
                let Some((key, value)) = pair.split_once('=') else {
                    return Err(BuildError::Malformed {
                        reason: format!("parameter {pair:?} is not key=value"),
                    });
                };
                spec.params.insert(key, ParamValue::parse(value));
            }
        }
        Ok(spec)
    }
}

/// The builder signature every predictor registers: defaults have
/// already been merged in, so every declared key is present.
pub type PredictorBuilder =
    Box<dyn Fn(&Params) -> Result<Box<dyn ConditionalPredictor>, BuildError> + Send + Sync>;

struct RegistryEntry {
    description: String,
    defaults: Params,
    builder: PredictorBuilder,
}

/// The registry mapping predictor names to builders.
#[derive(Default)]
pub struct PredictorRegistry {
    entries: BTreeMap<String, RegistryEntry>,
}

impl fmt::Debug for PredictorRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PredictorRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl PredictorRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-populated with this crate's trivial baselines
    /// (`static-taken`, `static-not-taken`).
    pub fn with_builtins() -> Self {
        let mut registry = Self::new();
        registry.register(
            "static-taken",
            "always predicts taken (baseline floor)",
            Params::new(),
            |_| Ok(Box::new(StaticPredictor::always_taken())),
        );
        registry.register(
            "static-not-taken",
            "always predicts not-taken (baseline floor)",
            Params::new(),
            |_| Ok(Box::new(StaticPredictor::always_not_taken())),
        );
        registry
    }

    /// Registers a predictor. `defaults` declares every accepted
    /// parameter with its default value.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered — each predictor registers
    /// exactly once.
    pub fn register<F>(&mut self, name: &str, description: &str, defaults: Params, builder: F)
    where
        F: Fn(&Params) -> Result<Box<dyn ConditionalPredictor>, BuildError> + Send + Sync + 'static,
    {
        let previous = self.entries.insert(
            name.to_owned(),
            RegistryEntry {
                description: description.to_owned(),
                defaults,
                builder: Box::new(builder),
            },
        );
        assert!(previous.is_none(), "predictor {name:?} registered twice");
    }

    /// Builds a predictor by name, overlaying `overrides` on its
    /// registered defaults.
    pub fn build(
        &self,
        name: &str,
        overrides: &Params,
    ) -> Result<Box<dyn ConditionalPredictor>, BuildError> {
        let entry = self
            .entries
            .get(name)
            .ok_or_else(|| BuildError::UnknownPredictor {
                name: name.to_owned(),
                known: self.names().iter().map(|s| s.to_string()).collect(),
            })?;
        let merged = entry.defaults.merged_with(overrides)?;
        (entry.builder)(&merged)
    }

    /// Builds a predictor from a [`PredictorSpec`].
    pub fn build_spec(
        &self,
        spec: &PredictorSpec,
    ) -> Result<Box<dyn ConditionalPredictor>, BuildError> {
        self.build(spec.predictor(), spec.params())
    }

    /// The effective (defaults + overrides) parameters for a spec.
    pub fn effective_params(&self, spec: &PredictorSpec) -> Result<Params, BuildError> {
        let entry =
            self.entries
                .get(spec.predictor())
                .ok_or_else(|| BuildError::UnknownPredictor {
                    name: spec.predictor().to_owned(),
                    known: self.names().iter().map(|s| s.to_string()).collect(),
                })?;
        entry.defaults.merged_with(spec.params())
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// The one-line description registered for `name`.
    pub fn describe(&self, name: &str) -> Option<&str> {
        self.entries.get(name).map(|e| e.description.as_str())
    }

    /// Probes the capability descriptor of `name` by building it with
    /// its registered defaults and asking the instance. Used by the
    /// `sweep --list` table and the serve HELLO handshake; capabilities
    /// are a property of the configuration, so default-parameter probing
    /// answers for the family.
    pub fn capabilities(&self, name: &str) -> Result<PredictorCaps, BuildError> {
        let mut predictor = self.build(name, &Params::new())?;
        Ok(predictor.capabilities())
    }

    /// The hardware storage breakdown of `name` built with `overrides`
    /// overlaid on its defaults — what the `sweep --list` budget column
    /// and the tuner's feasibility check read without running a trace.
    pub fn storage(
        &self,
        name: &str,
        overrides: &Params,
    ) -> Result<crate::storage::StorageBreakdown, BuildError> {
        Ok(self.build(name, overrides)?.storage())
    }

    /// The default parameters registered for `name`.
    pub fn defaults(&self, name: &str) -> Option<&Params> {
        self.entries.get(name).map(|e| &e.defaults)
    }

    /// Number of registered predictors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_build_and_name_correctly() {
        let registry = PredictorRegistry::with_builtins();
        assert_eq!(registry.names(), vec!["static-not-taken", "static-taken"]);
        let p = registry.build("static-taken", &Params::new()).unwrap();
        assert_eq!(p.name(), "static-taken");
        assert!(registry.describe("static-taken").unwrap().contains("taken"));
    }

    #[test]
    fn unknown_predictor_lists_known_names() {
        let registry = PredictorRegistry::with_builtins();
        let err = registry.build("nope", &Params::new()).err().unwrap();
        let msg = err.to_string();
        assert!(
            msg.contains("nope") && msg.contains("static-taken"),
            "{msg}"
        );
    }

    #[test]
    fn unknown_param_is_rejected() {
        let registry = PredictorRegistry::with_builtins();
        let err = registry
            .build("static-taken", &Params::new().set("tables", 4))
            .err()
            .unwrap();
        assert_eq!(
            err,
            BuildError::UnknownParam {
                param: "tables".into(),
                known: vec![]
            }
        );
        assert!(err.to_string().contains("takes no parameters"));
    }

    #[test]
    fn duplicate_registration_panics() {
        let result = std::panic::catch_unwind(|| {
            let mut registry = PredictorRegistry::with_builtins();
            registry.register("static-taken", "dup", Params::new(), |_| {
                Ok(Box::new(StaticPredictor::always_taken()))
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn params_merge_and_typed_reads() {
        let defaults = Params::new()
            .set("tables", 10)
            .set("sc", true)
            .set("scale", 1.5);
        let merged = defaults
            .merged_with(&Params::new().set("tables", 4).set("sc", false))
            .unwrap();
        assert_eq!(merged.usize("tables").unwrap(), 4);
        assert!(!merged.bool("sc").unwrap());
        assert_eq!(merged.f64("scale").unwrap(), 1.5);
        assert_eq!(merged.f64("tables").unwrap(), 4.0); // int widens
        assert!(merged.str("tables").is_err());
        assert!(defaults
            .merged_with(&Params::new().set("tablez", 4))
            .is_err());
    }

    #[test]
    fn spec_parse_roundtrip() {
        let spec = PredictorSpec::parse("TAGE=isl-tage:tables=15,sc=false").unwrap();
        assert_eq!(spec.predictor(), "isl-tage");
        assert_eq!(spec.label(), "TAGE");
        assert_eq!(spec.params().get("tables"), Some(&ParamValue::Int(15)));
        assert_eq!(spec.params().get("sc"), Some(&ParamValue::Bool(false)));

        let plain = PredictorSpec::parse("bf-neural").unwrap();
        assert_eq!(plain.label(), "bf-neural");

        let auto = PredictorSpec::new("isl-tage").with("tables", 7);
        assert_eq!(auto.label(), "isl-tage{tables=7}");

        assert!(PredictorSpec::parse(":tables=4").is_err());
        assert!(PredictorSpec::parse("tage:tables").is_err());
    }

    #[test]
    fn registry_probes_capabilities() {
        let registry = PredictorRegistry::with_builtins();
        let caps = registry.capabilities("static-taken").unwrap();
        assert!(!caps.batch_preferred);
        assert!(caps.checkpointable);
        assert!(caps.provenance);
        assert!(registry.capabilities("no-such").is_err());
    }

    #[test]
    fn param_value_parse_types() {
        assert_eq!(ParamValue::parse("true"), ParamValue::Bool(true));
        assert_eq!(ParamValue::parse("15"), ParamValue::Int(15));
        assert_eq!(ParamValue::parse("0.5"), ParamValue::Float(0.5));
        assert_eq!(
            ParamValue::parse("recency-stack"),
            ParamValue::Str("recency-stack".into())
        );
    }
}
