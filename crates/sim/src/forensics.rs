//! Postmortem forensics: reading back what the observability layer
//! wrote.
//!
//! Everything else in the workspace only *produces* JSON (hand-rendered,
//! dependency-free); this module is the matching consumer — a small
//! recursive-descent [`JsonValue`] parser, a `bfbp-events/1` journal
//! reader ([`parse_events`] / [`read_events`]) with the same
//! torn-final-line tolerance as the checkpoint journal, and a
//! [`chrome_trace`] exporter that turns any events journal into a Chrome
//! Trace Format document loadable in `chrome://tracing` or Perfetto.
//!
//! The parser is deliberately forgiving about vocabulary — unknown event
//! kinds and unknown keys are preserved, not rejected — so newer
//! journals keep loading in older tooling and vice versa.

use std::fmt;
use std::path::Path;

use crate::engine::{json_f64, json_string};

/// A parsed JSON value. Object keys keep their file order; numbers are
/// stored as `f64` (the only number type JSON has).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in file order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects (`None` for other kinds or missing
    /// keys). First match wins, matching every sane JSON producer.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, when it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, when it is a number that
    /// round-trips to `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, when it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, when it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Why a JSON text failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the parser stopped at.
    pub offset: usize,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, reason: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            reason,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, reason: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("unrecognized literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writers; lone surrogates degrade to the
                            // replacement character instead of an error.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str
                    // upstream, so boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| self.err("malformed number"))
    }
}

/// Parses one complete JSON value (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first problem.
pub fn parse_json(text: &str) -> Result<JsonValue, JsonError> {
    let mut parser = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing garbage after value"));
    }
    Ok(value)
}

/// One parsed `bfbp-events/1` line: the event kind, its timestamp, and
/// every field (known or not) as parsed JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedEvent {
    /// The event kind (`sweep_open`, `job_close`, …).
    pub ev: String,
    /// Microseconds since the journal opened (monotonic in file order).
    pub t_us: u64,
    /// The full line as a parsed object — `ev` and `t_us` included, plus
    /// any keys this tooling has never heard of.
    pub fields: JsonValue,
}

impl ParsedEvent {
    /// Field lookup on the underlying object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.fields.get(key)
    }

    /// The `job` field, when present.
    pub fn job(&self) -> Option<u64> {
        self.get("job").and_then(JsonValue::as_u64)
    }
}

/// Why an events journal failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum EventsError {
    /// Filesystem failure (rendered).
    Io(String),
    /// A non-final line did not parse, or parsed to something that is
    /// not an event object.
    Line {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for EventsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventsError::Io(e) => write!(f, "cannot read events journal: {e}"),
            EventsError::Line { line, reason } => {
                write!(f, "events journal line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for EventsError {}

/// Parses a `bfbp-events/1` journal text into its event lines.
///
/// A malformed **final** line is tolerated and dropped — a crashed
/// writer loses at most the line it was mid-append on, the same model as
/// the checkpoint journal. A malformed earlier line is a hard error
/// (something other than a torn tail corrupted the file). Unknown event
/// kinds and unknown keys pass through untouched.
///
/// # Errors
///
/// [`EventsError::Line`] for a malformed non-final line.
pub fn parse_events(text: &str) -> Result<Vec<ParsedEvent>, EventsError> {
    let lines: Vec<&str> = text.lines().collect();
    let last = lines.len().saturating_sub(1);
    let mut events = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = parse_json(line).and_then(|value| {
            let ev = value
                .get("ev")
                .and_then(JsonValue::as_str)
                .map(str::to_owned);
            let t_us = value.get("t_us").and_then(JsonValue::as_u64);
            match (ev, t_us) {
                (Some(ev), Some(t_us)) => Ok(ParsedEvent {
                    ev,
                    t_us,
                    fields: value,
                }),
                _ => Err(JsonError {
                    offset: 0,
                    reason: "missing \"ev\" or \"t_us\"",
                }),
            }
        });
        match parsed {
            Ok(event) => events.push(event),
            // Only the LAST line may be torn; anything earlier is
            // corruption, not a crash artifact.
            Err(_) if i == last => break,
            Err(e) => {
                return Err(EventsError::Line {
                    line: i + 1,
                    reason: e.to_string(),
                })
            }
        }
    }
    Ok(events)
}

/// [`parse_events`] over the file at `path`.
///
/// # Errors
///
/// [`EventsError::Io`] when the file cannot be read, otherwise as
/// [`parse_events`].
pub fn read_events(path: impl AsRef<Path>) -> Result<Vec<ParsedEvent>, EventsError> {
    let text =
        std::fs::read_to_string(path.as_ref()).map_err(|e| EventsError::Io(e.to_string()))?;
    parse_events(&text)
}

/// The synthetic Chrome-trace process id every exported event carries
/// (the journal records one process).
const CHROME_PID: u64 = 1;

/// The Chrome-trace thread id the sweep-level span and un-attributed
/// instants render on; job `j` renders on tid `j + 1`.
const CHROME_SWEEP_TID: u64 = 0;

fn chrome_event(
    out: &mut Vec<String>,
    name: &str,
    ph: char,
    ts: u64,
    dur: Option<u64>,
    tid: u64,
    args: &[(&str, String)],
) {
    let mut line = format!(
        "{{\"name\": {}, \"ph\": \"{ph}\", \"ts\": {ts}, ",
        json_string(name)
    );
    if let Some(dur) = dur {
        line.push_str(&format!("\"dur\": {dur}, "));
    }
    if ph == 'i' {
        // Thread-scoped instant: renders as a tick on its row.
        line.push_str("\"s\": \"t\", ");
    }
    line.push_str(&format!("\"pid\": {CHROME_PID}, \"tid\": {tid}"));
    if !args.is_empty() {
        line.push_str(", \"args\": {");
        for (i, (key, value)) in args.iter().enumerate() {
            if i > 0 {
                line.push_str(", ");
            }
            line.push_str(&format!("{}: {value}", json_string(key)));
        }
        line.push('}');
    }
    line.push('}');
    out.push(line);
}

fn arg_of(event: &ParsedEvent, key: &str) -> Option<(String, String)> {
    event.get(key).map(|value| {
        let rendered = match value {
            JsonValue::Null => "null".to_owned(),
            JsonValue::Bool(b) => b.to_string(),
            JsonValue::Num(n) => json_f64(*n),
            JsonValue::Str(s) => json_string(s),
            // Nested values never appear in event lines today; render
            // them as their debug text to stay total.
            other => json_string(&format!("{other:?}")),
        };
        (key.to_owned(), rendered)
    })
}

/// Exports parsed `bfbp-events/1` lines as a Chrome Trace Format
/// document (`{"traceEvents": [...]}`), loadable in `chrome://tracing`
/// and Perfetto.
///
/// Span mapping:
/// * the `sweep_open` → `sweep_close` pair becomes one complete (`"X"`)
///   span on tid 0;
/// * each `job_open` → `job_close` pair becomes a complete span on tid
///   `job + 1`, named `series/trace` and carrying status, attempts, and
///   MPKI as args;
/// * a job's `interval` events become proportional slices of its span —
///   the journal records interval *contents*, not wall-clock interval
///   boundaries, so slice widths are trace-relative (each interval's
///   share of the job's instructions), not measured time;
/// * `retry`, `timeout`, `killed`, `ckpt_*`, `postmortem`, and
///   `trace_cache` events become thread-scoped instants (`"i"`) on their
///   job's row.
///
/// Unpaired opens (a dead sweep) close at the last timestamp in the
/// journal, so a crashed run still renders.
pub fn chrome_trace(events: &[ParsedEvent]) -> String {
    let mut out: Vec<String> = Vec::new();
    let last_t = events.iter().map(|e| e.t_us).max().unwrap_or(0);

    // Sweep span: first sweep_open to last sweep_close (or end).
    if let Some(open) = events.iter().find(|e| e.ev == "sweep_open") {
        let close = events
            .iter()
            .rev()
            .find(|e| e.ev == "sweep_close")
            .map_or(last_t, |e| e.t_us);
        let args: Vec<(&str, String)> = ["jobs", "pending", "series", "traces", "threads"]
            .into_iter()
            .filter_map(|key| arg_of(open, key).map(|(_, v)| (key, v)))
            .collect();
        chrome_event(
            &mut out,
            "sweep",
            'X',
            open.t_us,
            Some(close.saturating_sub(open.t_us).max(1)),
            CHROME_SWEEP_TID,
            &args,
        );
    }

    // Job spans, keyed by job index: open time + identity from
    // job_open, duration + outcome from job_close.
    for open in events.iter().filter(|e| e.ev == "job_open") {
        let Some(job) = open.job() else { continue };
        let close = events
            .iter()
            .find(|e| e.ev == "job_close" && e.job() == Some(job) && e.t_us >= open.t_us);
        let close_t = close.map_or(last_t, |e| e.t_us);
        let series = open
            .get("series")
            .and_then(JsonValue::as_str)
            .unwrap_or("?");
        let trace = open.get("trace").and_then(JsonValue::as_str).unwrap_or("?");
        let name = format!("{series}/{trace}");
        let mut args: Vec<(&str, String)> = vec![("job", job.to_string())];
        if let Some(close) = close {
            for key in ["status", "attempts", "wall_ms", "mpki", "error"] {
                if let Some((_, v)) = arg_of(close, key) {
                    args.push((key, v));
                }
            }
        }
        let dur = close_t.saturating_sub(open.t_us).max(1);
        chrome_event(&mut out, &name, 'X', open.t_us, Some(dur), job + 1, &args);

        // Interval slices: proportional partitions of the job span by
        // each interval's share of the job's instructions (the journal
        // has no per-interval wall clock).
        let intervals: Vec<&ParsedEvent> = events
            .iter()
            .filter(|e| e.ev == "interval" && e.job() == Some(job))
            .collect();
        let total_insts: f64 = intervals
            .iter()
            .filter_map(|e| e.get("instructions").and_then(JsonValue::as_f64))
            .sum();
        if total_insts > 0.0 {
            let mut cursor = open.t_us as f64;
            let span = dur as f64;
            for iv in &intervals {
                let insts = iv
                    .get("instructions")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0);
                let width = span * insts / total_insts;
                let index = iv
                    .get("index")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or_default();
                let mut args: Vec<(&str, String)> = vec![("index", index.to_string())];
                for key in ["instructions", "mispredictions", "mpki"] {
                    if let Some((_, v)) = arg_of(iv, key) {
                        args.push((key, v));
                    }
                }
                chrome_event(
                    &mut out,
                    &format!("interval {index}"),
                    'X',
                    cursor as u64,
                    Some((width as u64).max(1)),
                    job + 1,
                    &args,
                );
                cursor += width;
            }
        }
    }

    // Instants: every punctual event renders as a tick on its job's row
    // (or the sweep row when it names no job).
    for event in events {
        let instant = matches!(
            event.ev.as_str(),
            "retry"
                | "timeout"
                | "killed"
                | "ckpt_write"
                | "ckpt_restore"
                | "ckpt_quarantined"
                | "postmortem"
                | "trace_cache"
        );
        if !instant {
            continue;
        }
        let tid = event.job().map_or(CHROME_SWEEP_TID, |j| j + 1);
        let mut args: Vec<(&str, String)> = Vec::new();
        if let JsonValue::Obj(members) = &event.fields {
            for (key, _) in members {
                if key == "ev" || key == "t_us" {
                    continue;
                }
                if let Some((_, v)) = arg_of(event, key) {
                    // `args` borrows `key` from the event, which outlives
                    // this loop body.
                    args.push((key.as_str(), v));
                }
            }
        }
        chrome_event(&mut out, &event.ev, 'i', event.t_us, None, tid, &args);
    }

    let mut doc = String::from("{\"traceEvents\": [\n");
    for (i, line) in out.iter().enumerate() {
        if i > 0 {
            doc.push_str(",\n");
        }
        doc.push_str("  ");
        doc.push_str(line);
    }
    doc.push_str("\n]}\n");
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse_json(r#"{"a": 1, "b": [true, null, -2.5], "c": {"d": "x\ny"}}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(1));
        let arr = v.get("b").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1], JsonValue::Null);
        assert_eq!(arr[2].as_f64(), Some(-2.5));
        assert_eq!(
            v.get("c")
                .and_then(|c| c.get("d"))
                .and_then(JsonValue::as_str),
            Some("x\ny")
        );
        assert_eq!(parse_json("[]").unwrap(), JsonValue::Arr(vec![]));
        assert_eq!(parse_json("{}").unwrap(), JsonValue::Obj(vec![]));
        assert_eq!(
            parse_json("\"\\u0041\\\"\"").unwrap(),
            JsonValue::Str("A\"".to_owned())
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("1 2").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("nulll").is_err());
        assert!(!parse_json("{\"a\":}")
            .map_err(|e| e.to_string())
            .unwrap_err()
            .is_empty());
    }

    #[test]
    fn events_tolerate_torn_tail_only() {
        let good = "{\"ev\": \"journal_open\", \"t_us\": 0, \"schema\": \"bfbp-events/1\"}\n\
                    {\"ev\": \"job_open\", \"t_us\": 5, \"job\": 0, \"mystery_key\": [1]}\n";
        let torn = format!("{good}{{\"ev\": \"job_clo");
        let events = parse_events(&torn).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].ev, "job_open");
        assert_eq!(events[1].job(), Some(0));
        // Unknown keys survive parsing.
        assert!(events[1].get("mystery_key").is_some());
        // The same malformed line anywhere but the end is a hard error.
        let corrupt = format!("{{\"ev\": \"job_clo\n{good}");
        assert!(parse_events(&corrupt).is_err());
        // Missing required keys on a non-final line is also a hard error.
        let keyless = format!("{{\"not_an_event\": true}}\n{good}");
        assert!(matches!(
            parse_events(&keyless),
            Err(EventsError::Line { line: 1, .. })
        ));
    }

    #[test]
    fn chrome_trace_renders_spans_and_instants() {
        let journal = "\
{\"ev\": \"journal_open\", \"t_us\": 0, \"schema\": \"bfbp-events/1\"}
{\"ev\": \"sweep_open\", \"t_us\": 1, \"jobs\": 2, \"threads\": 1}
{\"ev\": \"job_open\", \"t_us\": 2, \"job\": 0, \"series\": \"s\", \"trace\": \"t\"}
{\"ev\": \"interval\", \"t_us\": 5, \"job\": 0, \"index\": 0, \"instructions\": 100, \"mispredictions\": 3, \"mpki\": 30.0}
{\"ev\": \"interval\", \"t_us\": 8, \"job\": 0, \"index\": 1, \"instructions\": 300, \"mispredictions\": 1, \"mpki\": 3.33}
{\"ev\": \"job_close\", \"t_us\": 10, \"job\": 0, \"series\": \"s\", \"trace\": \"t\", \"status\": \"ok\", \"attempts\": 1, \"wall_ms\": 0.5, \"mpki\": 10.0}
{\"ev\": \"retry\", \"t_us\": 12, \"job\": 1, \"attempt\": 1, \"error\": \"boom\"}
{\"ev\": \"killed\", \"t_us\": 14, \"job\": 1, \"attempt\": 2, \"records\": 4096}
{\"ev\": \"sweep_close\", \"t_us\": 20, \"ok\": 1, \"failed\": 0}
";
        let events = parse_events(journal).unwrap();
        let trace = chrome_trace(&events);
        // The export itself must be valid JSON (parse it back).
        let doc = parse_json(&trace).unwrap();
        let items = doc.get("traceEvents").and_then(JsonValue::as_arr).unwrap();
        assert!(!items.is_empty());
        for item in items {
            let ph = item.get("ph").and_then(JsonValue::as_str).unwrap();
            assert!(ph == "X" || ph == "i", "{item:?}");
            assert!(item.get("ts").and_then(JsonValue::as_u64).is_some());
            assert!(item.get("pid").and_then(JsonValue::as_u64).is_some());
            assert!(item.get("tid").and_then(JsonValue::as_u64).is_some());
            if ph == "X" {
                assert!(item.get("dur").and_then(JsonValue::as_u64).unwrap() >= 1);
            }
        }
        // Sweep span on tid 0 spanning open→close.
        let sweep = items
            .iter()
            .find(|i| i.get("name").and_then(JsonValue::as_str) == Some("sweep"))
            .unwrap();
        assert_eq!(sweep.get("ts").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(sweep.get("dur").and_then(JsonValue::as_u64), Some(19));
        assert_eq!(sweep.get("tid").and_then(JsonValue::as_u64), Some(0));
        // Job span named series/trace on tid job+1.
        let job = items
            .iter()
            .find(|i| i.get("name").and_then(JsonValue::as_str) == Some("s/t"))
            .unwrap();
        assert_eq!(job.get("tid").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(job.get("dur").and_then(JsonValue::as_u64), Some(8));
        // Intervals partition the job span proportionally (100:300).
        let iv0 = items
            .iter()
            .find(|i| i.get("name").and_then(JsonValue::as_str) == Some("interval 0"))
            .unwrap();
        assert_eq!(iv0.get("ts").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(iv0.get("dur").and_then(JsonValue::as_u64), Some(2));
        // Instants for retry and killed on job 1's row.
        let instants: Vec<_> = items
            .iter()
            .filter(|i| i.get("ph").and_then(JsonValue::as_str) == Some("i"))
            .collect();
        assert_eq!(instants.len(), 2);
        for instant in instants {
            assert_eq!(instant.get("tid").and_then(JsonValue::as_u64), Some(2));
        }
    }

    #[test]
    fn chrome_trace_closes_unpaired_spans_at_journal_end() {
        let journal = "\
{\"ev\": \"sweep_open\", \"t_us\": 1, \"jobs\": 1}
{\"ev\": \"job_open\", \"t_us\": 2, \"job\": 0, \"series\": \"s\", \"trace\": \"t\"}
{\"ev\": \"timeout\", \"t_us\": 9, \"job\": 0, \"attempt\": 1}
";
        let events = parse_events(journal).unwrap();
        let doc = parse_json(&chrome_trace(&events)).unwrap();
        let items = doc.get("traceEvents").and_then(JsonValue::as_arr).unwrap();
        let job = items
            .iter()
            .find(|i| i.get("name").and_then(JsonValue::as_str) == Some("s/t"))
            .unwrap();
        // Open at 2, journal ends at 9.
        assert_eq!(job.get("dur").and_then(JsonValue::as_u64), Some(7));
        assert!(job.get("args").and_then(|a| a.get("status")).is_none());
    }
}
