//! Budget-constrained design-space autotuning: successive-halving
//! search over a predictor's registry parameters with Pareto frontier
//! reporting.
//!
//! The paper's evaluation is a design-space exploration at fixed
//! hardware budgets — every comparison is "best achievable MPKI at N
//! kilobits". This module automates that exploration:
//!
//! 1. A [`SearchSpace`] declares per-parameter ranges or choices over a
//!    registered predictor's typed [`Params`]; candidates come from
//!    exhaustive grid enumeration or deterministic seeded sampling.
//! 2. Infeasible points are rejected up-front: a candidate whose
//!    [`StorageBreakdown::total_bits`] exceeds the budget never costs a
//!    single simulated record.
//! 3. A successive-halving scheduler evaluates the survivors over rungs
//!    of increasing trace-record counts (each rung divides the full
//!    length by `eta^(rungs-1-rung)`), keeping the best `1/eta` of the
//!    field per rung. Every rung is lowered as one batch of jobs onto
//!    [`engine::sweep_inputs`], so retries, timeouts, checkpointing,
//!    metrics, and the `bfbp-events/1` journal all apply unchanged.
//! 4. Progress is journaled crash-consistently (`bfbp-tune/1`, the same
//!    atomic tmp+rename + FNV-1a trailer discipline as `bfbp-ckpt/1`),
//!    so a killed run resumed with [`TuneOptions::resume`] re-enters
//!    the exact rung it died in without re-simulating completed rungs.
//! 5. The result is a deterministic `bfbp-frontier/1` JSON report: the
//!    Pareto-optimal configurations of MPKI vs. total storage bits,
//!    each with its component breakdown and per-rung provenance. The
//!    report is byte-identical across thread counts and across
//!    kill+resume vs. uninterrupted runs.
//!
//! ```
//! use bfbp_sim::registry::PredictorRegistry;
//! use bfbp_sim::tune::{tune, SearchSpace, TuneOptions};
//! use bfbp_trace::synth::suite;
//!
//! let registry = PredictorRegistry::with_builtins();
//! let space = SearchSpace::parse("static-taken").unwrap();
//! let traces = vec![suite::find("SPEC03").unwrap()];
//! let mut options = TuneOptions::default();
//! options.rungs = 1;
//! options.scale = 0.01;
//! let report = tune(&registry, &space, 1_000_000, &traces, &options).unwrap();
//! assert_eq!(report.frontier().len(), 1);
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use bfbp_trace::cache::TraceCache;
use bfbp_trace::rng::Xoshiro256;
use bfbp_trace::synth::suite::TraceSpec;

use crate::ckpt::{fnv1a, write_atomic, CodecError, StateReader, StateWriter};
use crate::engine::{self, json_f64, json_string, SweepError, SweepOptions, TraceInput};
use crate::obs::{Event, EventJournal};
use crate::registry::{ParamValue, Params, PredictorRegistry, PredictorSpec};
use crate::runner::scaled_len;
use crate::simulate::SimResult;
use crate::storage::StorageBreakdown;
use crate::JobStatus;

/// Schema identifier of the Pareto frontier report.
pub const FRONTIER_SCHEMA: &str = "bfbp-frontier/1";
/// Magic prefix of the crash-consistent tuner state file.
pub const TUNE_MAGIC: &[u8; 12] = b"bfbp-tune/1\n";
/// Minimum records per trace at any rung — mirrors the floor the suite
/// runner applies to scaled trace lengths, below which MPKI is noise.
pub const MIN_RUNG_RECORDS: usize = 1000;

/// One axis of a [`SearchSpace`]: an inclusive integer range with a
/// step, or an explicit list of typed values.
#[derive(Debug, Clone, PartialEq)]
pub enum Dimension {
    /// Inclusive integer range `lo..=hi` walked in `step` increments.
    Range {
        /// First value.
        lo: i64,
        /// Last admissible value (inclusive).
        hi: i64,
        /// Positive increment between values.
        step: i64,
    },
    /// Explicit alternatives, each parsed with [`ParamValue::parse`]
    /// semantics (bool, then int, then float, then string).
    Choices(Vec<ParamValue>),
}

impl Dimension {
    /// Number of values on this axis.
    pub fn len(&self) -> usize {
        match self {
            Dimension::Range { lo, hi, step } => {
                if lo > hi {
                    0
                } else {
                    ((hi - lo) / step + 1) as usize
                }
            }
            Dimension::Choices(values) => values.len(),
        }
    }

    /// Whether the axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th value on the axis (declaration order).
    pub fn value(&self, i: usize) -> ParamValue {
        match self {
            Dimension::Range { lo, step, .. } => ParamValue::Int(lo + *step * i as i64),
            Dimension::Choices(values) => values[i].clone(),
        }
    }

    /// Canonical text rendering, `lo..hi` / `lo..hi/step` / `a|b|c`.
    fn render(&self) -> String {
        match self {
            Dimension::Range { lo, hi, step } if *step == 1 => format!("{lo}..{hi}"),
            Dimension::Range { lo, hi, step } => format!("{lo}..{hi}/{step}"),
            Dimension::Choices(values) => values
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("|"),
        }
    }
}

/// A declared search space: a registered predictor name plus one
/// [`Dimension`] per parameter key. Keys are held in sorted order, so
/// enumeration, sampling, and the rendered grammar are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    predictor: String,
    dims: BTreeMap<String, Dimension>,
}

impl SearchSpace {
    /// A space over `predictor` with no axes yet (a single candidate:
    /// the registry defaults).
    pub fn new(predictor: &str) -> Self {
        Self {
            predictor: predictor.to_owned(),
            dims: BTreeMap::new(),
        }
    }

    /// Builder-style inclusive integer range axis (step 1).
    pub fn range(self, key: &str, lo: i64, hi: i64) -> Self {
        self.range_step(key, lo, hi, 1)
    }

    /// Builder-style inclusive integer range axis with a step.
    pub fn range_step(mut self, key: &str, lo: i64, hi: i64, step: i64) -> Self {
        self.dims
            .insert(key.to_owned(), Dimension::Range { lo, hi, step });
        self
    }

    /// Builder-style explicit-choices axis.
    pub fn choices(mut self, key: &str, values: Vec<ParamValue>) -> Self {
        self.dims.insert(key.to_owned(), Dimension::Choices(values));
        self
    }

    /// Parses the `--space` grammar:
    /// `name[:key=lo..hi[/step],key=a|b|c,key=value,...]`.
    ///
    /// A range is two integers joined by `..` (inclusive) with an
    /// optional `/step`; `|` separates explicit alternatives; a bare
    /// value is a single-choice axis. Values use the same typing rules
    /// as predictor specs (bool, int, float, string in that order).
    ///
    /// # Errors
    ///
    /// Returns [`TuneError::Space`] on an empty name, a malformed pair,
    /// a non-integer or descending range, or a non-positive step.
    pub fn parse(text: &str) -> Result<Self, TuneError> {
        let (name, params_text) = match text.split_once(':') {
            Some((h, p)) => (h, Some(p)),
            None => (text, None),
        };
        if name.is_empty() {
            return Err(TuneError::space(format!(
                "empty predictor name in {text:?}"
            )));
        }
        let mut space = SearchSpace::new(name);
        for pair in params_text
            .unwrap_or("")
            .split(',')
            .filter(|p| !p.is_empty())
        {
            let Some((key, value)) = pair.split_once('=') else {
                return Err(TuneError::space(format!(
                    "axis {pair:?} is not key=range-or-choices"
                )));
            };
            space.dims.insert(key.to_owned(), parse_dimension(value)?);
        }
        Ok(space)
    }

    /// The canonical rendering of the space — parseable back with
    /// [`SearchSpace::parse`] and part of the tuner-state fingerprint.
    pub fn render(&self) -> String {
        if self.dims.is_empty() {
            return self.predictor.clone();
        }
        let axes = self
            .dims
            .iter()
            .map(|(k, d)| format!("{k}={}", d.render()))
            .collect::<Vec<_>>()
            .join(",");
        format!("{}:{axes}", self.predictor)
    }

    /// The predictor name the space is declared over.
    pub fn predictor(&self) -> &str {
        &self.predictor
    }

    /// The axes in key order.
    pub fn dims(&self) -> impl Iterator<Item = (&str, &Dimension)> {
        self.dims.iter().map(|(k, d)| (k.as_str(), d))
    }

    /// Total number of points in the grid (product of axis lengths).
    pub fn cardinality(&self) -> u64 {
        self.dims
            .values()
            .map(|d| d.len() as u64)
            .fold(1u64, u64::saturating_mul)
    }

    /// Validates the space against the registry: the predictor must be
    /// registered and every axis key must be one of its declared
    /// parameters. Surfaces the registry's typed errors (which name the
    /// accepted keys) as [`TuneError::Space`].
    pub fn validate(&self, registry: &PredictorRegistry) -> Result<(), TuneError> {
        let defaults = registry.defaults(&self.predictor).ok_or_else(|| {
            TuneError::space(format!(
                "unknown predictor {:?}; registered: {}",
                self.predictor,
                registry.names().join(", ")
            ))
        })?;
        for (key, dim) in &self.dims {
            if dim.is_empty() {
                return Err(TuneError::space(format!("axis {key:?} is empty")));
            }
            let mut probe = Params::new();
            probe.insert(key, dim.value(0));
            defaults
                .merged_with(&probe)
                .map_err(|e| TuneError::space(e.to_string()))?;
        }
        Ok(())
    }

    /// Exhaustive grid enumeration, in sorted-key row-major order
    /// (last key varies fastest). Each returned [`Params`] holds only
    /// the overrides; registry defaults fill the rest at build time.
    pub fn grid(&self) -> Vec<Params> {
        let keys: Vec<&String> = self.dims.keys().collect();
        let sizes: Vec<usize> = self.dims.values().map(Dimension::len).collect();
        if sizes.contains(&0) {
            return Vec::new();
        }
        let total = self.cardinality() as usize;
        let mut out = Vec::with_capacity(total);
        let mut index = vec![0usize; keys.len()];
        for _ in 0..total {
            let mut params = Params::new();
            for (d, key) in keys.iter().enumerate() {
                params.insert(key, self.dims[*key].value(index[d]));
            }
            out.push(params);
            for d in (0..index.len()).rev() {
                index[d] += 1;
                if index[d] < sizes[d] {
                    break;
                }
                index[d] = 0;
            }
        }
        out
    }

    /// Deterministic seeded sampling of up to `n` distinct points.
    /// Falls back to the full grid when `n` covers it. The same seed
    /// always yields the same candidates in the same order, which is
    /// what makes the tuner journal resumable without storing them.
    pub fn sample(&self, seed: u64, n: usize) -> Vec<Params> {
        if n == 0 || n as u64 >= self.cardinality() {
            return self.grid();
        }
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::with_capacity(n);
        // Each draw picks one value per axis; duplicates are skipped.
        // The attempt budget guards against tiny spaces where n is
        // close to the cardinality and rejection sampling stalls.
        let mut attempts = 0usize;
        while out.len() < n && attempts < n.saturating_mul(64) + 64 {
            attempts += 1;
            let mut params = Params::new();
            for (key, dim) in &self.dims {
                let i = rng.below(dim.len() as u64) as usize;
                params.insert(key, dim.value(i));
            }
            if seen.insert(params.summary()) {
                out.push(params);
            }
        }
        out
    }
}

fn parse_dimension(text: &str) -> Result<Dimension, TuneError> {
    if let Some((range, step)) = split_range(text) {
        let (lo_text, hi_text) = range;
        let lo: i64 = lo_text
            .parse()
            .map_err(|_| TuneError::space(format!("range start {lo_text:?} is not an integer")))?;
        let hi: i64 = hi_text
            .parse()
            .map_err(|_| TuneError::space(format!("range end {hi_text:?} is not an integer")))?;
        let step: i64 = match step {
            Some(s) => s
                .parse()
                .map_err(|_| TuneError::space(format!("range step {s:?} is not an integer")))?,
            None => 1,
        };
        if step <= 0 {
            return Err(TuneError::space(format!("range step {step} must be > 0")));
        }
        if lo > hi {
            return Err(TuneError::space(format!("range {lo}..{hi} is descending")));
        }
        return Ok(Dimension::Range { lo, hi, step });
    }
    let values: Vec<ParamValue> = text
        .split('|')
        .filter(|v| !v.is_empty())
        .map(ParamValue::parse)
        .collect();
    if values.is_empty() {
        return Err(TuneError::space(format!("axis value {text:?} is empty")));
    }
    Ok(Dimension::Choices(values))
}

/// Splits `lo..hi` or `lo..hi/step` into its parts; `None` when `text`
/// is not a range.
fn split_range(text: &str) -> Option<((&str, &str), Option<&str>)> {
    let (lo, rest) = text.split_once("..")?;
    match rest.split_once('/') {
        Some((hi, step)) => Some(((lo, hi), Some(step))),
        None => Some(((lo, rest), None)),
    }
}

/// Why a tuning run could not start or finish.
#[derive(Debug, Clone, PartialEq)]
pub enum TuneError {
    /// The search space is malformed or does not validate against the
    /// registry (the message names the accepted parameter keys).
    Space {
        /// Human-readable reason.
        reason: String,
    },
    /// No candidate fits the storage budget (or every one failed to
    /// build); nothing to search.
    NoFeasible {
        /// Points declared by the space (after sampling).
        declared: usize,
        /// Points rejected because `total_bits` exceeds the budget.
        over_budget: usize,
        /// Points whose predictor failed to build.
        rejected: usize,
    },
    /// A rung's sweep failed to start.
    Sweep(SweepError),
    /// The `bfbp-tune/1` state file could not be read, written, or does
    /// not belong to this (space, budget, suite) fingerprint.
    State {
        /// Human-readable reason.
        reason: String,
    },
}

impl TuneError {
    fn space(reason: impl Into<String>) -> Self {
        TuneError::Space {
            reason: reason.into(),
        }
    }

    fn state(reason: impl Into<String>) -> Self {
        TuneError::State {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::Space { reason } => write!(f, "invalid search space: {reason}"),
            TuneError::NoFeasible {
                declared,
                over_budget,
                rejected,
            } => write!(
                f,
                "no feasible candidate: {declared} declared, {over_budget} over budget, \
                 {rejected} failed to build"
            ),
            TuneError::Sweep(e) => write!(f, "rung sweep failed: {e}"),
            TuneError::State { reason } => write!(f, "tuner state: {reason}"),
        }
    }
}

impl std::error::Error for TuneError {}

impl From<SweepError> for TuneError {
    fn from(e: SweepError) -> Self {
        TuneError::Sweep(e)
    }
}

/// Tuning-run knobs beyond the space and budget.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// Keep the best `1/eta` of the field per rung (>= 2).
    pub eta: usize,
    /// Number of successive-halving rungs (>= 1). Rung `r` of `R`
    /// evaluates `full_len / eta^(R-1-r)` records per trace, so the
    /// final rung always runs the full scaled length.
    pub rungs: usize,
    /// Seeded-sample at most this many candidates; `0` enumerates the
    /// full grid.
    pub samples: usize,
    /// Seed for [`SearchSpace::sample`].
    pub seed: u64,
    /// Trace-length scale factor (1.0 = the suite's default lengths).
    pub scale: f64,
    /// Path of the crash-consistent `bfbp-tune/1` state file; `None`
    /// disables journaling (and resume).
    pub state: Option<PathBuf>,
    /// Re-enter an interrupted run from [`TuneOptions::state`]: rungs
    /// recorded there are not re-simulated. The state must match this
    /// run's (space, budget, schedule, suite) fingerprint exactly.
    pub resume: bool,
    /// Engine options every rung's sweep inherits (threads, retries,
    /// timeouts, events journal, metrics, ...). Per-rung job journals
    /// are derived from [`TuneOptions::state`] — the `journal` /
    /// `resume_from` fields here are overridden per rung, so a killed
    /// run does not even re-simulate completed jobs of the rung it
    /// died in.
    pub sweep: SweepOptions,
}

impl Default for TuneOptions {
    fn default() -> Self {
        Self {
            eta: 2,
            rungs: 3,
            samples: 0,
            seed: 0xB1A5_F7EE,
            scale: 1.0,
            state: None,
            resume: false,
            sweep: SweepOptions::default(),
        }
    }
}

/// One feasible candidate configuration: its stable index in the
/// declared candidate order, its parameter overrides, and its storage.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Index in declaration order — stable across runs and resumes, and
    /// the basis of the `c<index>` series labels.
    pub index: usize,
    /// Parameter overrides (registry defaults fill the rest).
    pub params: Params,
    /// Full component breakdown at build time.
    pub storage: StorageBreakdown,
}

impl Candidate {
    /// The deterministic series label used in sweeps and reports.
    pub fn label(&self) -> String {
        format!("c{}", self.index)
    }

    /// Total storage in bits.
    pub fn total_bits(&self) -> u64 {
        self.storage.total_bits()
    }
}

/// The outcome of one rung: every surviving candidate's mean MPKI at
/// that rung's record count.
#[derive(Debug, Clone)]
pub struct RungOutcome {
    /// Rung index, `0..rungs`.
    pub rung: usize,
    /// The divisor applied to each trace's full scaled length.
    pub divisor: u64,
    /// `(candidate index, mean MPKI)` for every candidate evaluated at
    /// this rung, in candidate order. Failed candidates score
    /// `f64::INFINITY` and never survive.
    pub scores: Vec<(usize, f64)>,
    /// Whether the rung was restored from the `bfbp-tune/1` state
    /// instead of simulated.
    pub restored: bool,
}

/// One Pareto-optimal configuration in the frontier report.
#[derive(Debug, Clone)]
pub struct FrontierPoint {
    /// Candidate index (provenance into the declared candidate order).
    pub candidate: usize,
    /// Parameter overrides of the winning configuration.
    pub params: Params,
    /// Mean MPKI over the suite at the final (full-length) rung.
    pub mean_mpki: f64,
    /// Total storage in bits.
    pub total_bits: u64,
    /// Component breakdown.
    pub storage: StorageBreakdown,
    /// Mean MPKI at every rung the candidate was evaluated at, in rung
    /// order — the provenance trail of the winning configuration.
    pub mpki_by_rung: Vec<f64>,
}

/// Everything a finished tuning run knows, plus the deterministic
/// `bfbp-frontier/1` renderer.
#[derive(Debug)]
pub struct TuneReport {
    space_text: String,
    predictor: String,
    budget_bits: u64,
    eta: usize,
    rungs: usize,
    samples: usize,
    seed: u64,
    trace_names: Vec<String>,
    declared: usize,
    over_budget: usize,
    rejected: usize,
    candidates: Vec<Candidate>,
    outcomes: Vec<RungOutcome>,
    frontier: Vec<FrontierPoint>,
    simulated_records: u64,
    wall: std::time::Duration,
}

impl TuneReport {
    /// The Pareto-optimal configurations, cheapest first.
    pub fn frontier(&self) -> &[FrontierPoint] {
        &self.frontier
    }

    /// Every feasible candidate that entered rung 0.
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Per-rung outcomes in rung order.
    pub fn outcomes(&self) -> &[RungOutcome] {
        &self.outcomes
    }

    /// Points declared by the space (after sampling), including the
    /// infeasible ones.
    pub fn declared(&self) -> usize {
        self.declared
    }

    /// Points rejected up-front for exceeding the budget.
    pub fn over_budget(&self) -> usize {
        self.over_budget
    }

    /// Candidate evaluations performed across all simulated rungs
    /// (restored rungs count too — they were evaluated by the run that
    /// journaled them).
    pub fn configs_evaluated(&self) -> usize {
        self.outcomes.iter().map(|o| o.scores.len()).sum()
    }

    /// Trace records actually simulated by this process (resumed rungs
    /// excluded) — the denominator of configs-per-second throughput.
    pub fn simulated_records(&self) -> u64 {
        self.simulated_records
    }

    /// Wall-clock time of the tuning run.
    pub fn wall(&self) -> std::time::Duration {
        self.wall
    }

    /// The storage budget every frontier point satisfies.
    pub fn budget_bits(&self) -> u64 {
        self.budget_bits
    }

    /// Renders the deterministic `bfbp-frontier/1` document. Contains
    /// no timings, hostnames, or thread counts — byte-identical across
    /// machines for the same (space, budget, schedule, suite).
    pub fn frontier_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"schema\": {},\n",
            json_string(FRONTIER_SCHEMA)
        ));
        out.push_str(&format!(
            "  \"predictor\": {},\n",
            json_string(&self.predictor)
        ));
        out.push_str(&format!(
            "  \"space\": {},\n",
            json_string(&self.space_text)
        ));
        out.push_str(&format!("  \"budget_bits\": {},\n", self.budget_bits));
        out.push_str(&format!("  \"eta\": {},\n", self.eta));
        out.push_str(&format!("  \"rungs\": {},\n", self.rungs));
        out.push_str(&format!("  \"samples\": {},\n", self.samples));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        let traces = self
            .trace_names
            .iter()
            .map(|t| json_string(t))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("  \"traces\": [{traces}],\n"));
        out.push_str(&format!(
            "  \"candidates\": {{\"declared\": {}, \"feasible\": {}, \"over_budget\": {}, \
             \"rejected\": {}}},\n",
            self.declared,
            self.candidates.len(),
            self.over_budget,
            self.rejected
        ));
        let divisors = self
            .outcomes
            .iter()
            .map(|o| o.divisor.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("  \"rung_divisors\": [{divisors}],\n"));
        let survivors = self
            .outcomes
            .iter()
            .map(|o| {
                let ids = o
                    .scores
                    .iter()
                    .map(|(i, _)| i.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("[{ids}]")
            })
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("  \"rung_candidates\": [{survivors}],\n"));
        out.push_str("  \"frontier\": [");
        for (i, point) in self.frontier.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"candidate\": {},\n", point.candidate));
            out.push_str(&format!(
                "      \"label\": {},\n",
                json_string(&format!("c{}", point.candidate))
            ));
            out.push_str(&format!(
                "      \"params\": {},\n",
                params_json(&point.params)
            ));
            out.push_str(&format!(
                "      \"mean_mpki\": {},\n",
                json_f64(point.mean_mpki)
            ));
            out.push_str(&format!("      \"total_bits\": {},\n", point.total_bits));
            out.push_str(&format!(
                "      \"total_kb\": {},\n",
                json_f64((point.total_bits as f64 / 8192.0 * 10.0).round() / 10.0)
            ));
            out.push_str("      \"storage\": [");
            for (j, item) in point.storage.items().iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"component\": {}, \"bits\": {}}}",
                    json_string(item.label()),
                    item.bits()
                ));
            }
            out.push_str("],\n");
            let trail = point
                .mpki_by_rung
                .iter()
                .map(|m| json_f64(*m))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("      \"mpki_by_rung\": [{trail}]\n"));
            out.push_str("    }");
        }
        if !self.frontier.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Writes the frontier document atomically (tmp + rename), so a
    /// crash mid-write never leaves a torn report.
    ///
    /// # Errors
    ///
    /// Returns the underlying io error.
    pub fn write_frontier(&self, path: &Path) -> std::io::Result<()> {
        write_atomic(path, self.frontier_json().as_bytes())
    }
}

/// Renders [`Params`] as a deterministic JSON object with native types
/// (ints and floats unquoted, bools bare, strings escaped).
fn params_json(params: &Params) -> String {
    let fields = params
        .iter()
        .map(|(k, v)| {
            let value = match v {
                ParamValue::Int(i) => i.to_string(),
                ParamValue::Float(x) => json_f64(*x),
                ParamValue::Bool(b) => b.to_string(),
                ParamValue::Str(s) => json_string(s),
            };
            format!("{}: {value}", json_string(k))
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!("{{{fields}}}")
}

/// Runs the full successive-halving search and returns the report.
///
/// `budget_bits` is the hardware storage budget: candidates whose
/// [`StorageBreakdown::total_bits`] exceeds it are rejected before any
/// simulation. `traces` is the evaluation suite (order defines the
/// job matrix and is part of the state fingerprint).
///
/// # Errors
///
/// Returns [`TuneError::Space`] when the space does not validate,
/// [`TuneError::NoFeasible`] when no candidate fits the budget,
/// [`TuneError::State`] on a corrupt or mismatched state file, and
/// [`TuneError::Sweep`] when a rung cannot start.
pub fn tune(
    registry: &PredictorRegistry,
    space: &SearchSpace,
    budget_bits: u64,
    traces: &[TraceSpec],
    options: &TuneOptions,
) -> Result<TuneReport, TuneError> {
    let started = std::time::Instant::now();
    if options.eta < 2 {
        return Err(TuneError::space("eta must be >= 2"));
    }
    if options.rungs == 0 {
        return Err(TuneError::space("rungs must be >= 1"));
    }
    if traces.is_empty() {
        return Err(TuneError::space("no traces given"));
    }
    space.validate(registry)?;

    // Candidate generation is deterministic, so resumed runs recompute
    // the exact candidate list instead of trusting state-file copies.
    let declared_params = space.sample(options.seed, options.samples);
    let declared = declared_params.len();
    let mut candidates = Vec::new();
    let mut over_budget = 0usize;
    let mut rejected = 0usize;
    for (index, params) in declared_params.into_iter().enumerate() {
        match registry.build(space.predictor(), &params) {
            Ok(predictor) => {
                let storage = predictor.storage();
                if storage.total_bits() > budget_bits {
                    over_budget += 1;
                } else {
                    candidates.push(Candidate {
                        index,
                        params,
                        storage,
                    });
                }
            }
            Err(_) => rejected += 1,
        }
    }
    if candidates.is_empty() {
        return Err(TuneError::NoFeasible {
            declared,
            over_budget,
            rejected,
        });
    }

    let base_lens: Vec<usize> = traces
        .iter()
        .map(|t| scaled_len(t, options.scale))
        .collect();
    let tune_id = fingerprint(space, budget_bits, options, traces, &base_lens);

    let events = options
        .sweep
        .events
        .as_ref()
        .and_then(|path| EventJournal::open(path).ok());
    if let Some(journal) = &events {
        journal.emit(
            Event::new("tune_open")
                .str("space", &space.render())
                .num("budget_bits", budget_bits)
                .num("eta", options.eta as u64)
                .num("rungs", options.rungs as u64)
                .num("declared", declared as u64)
                .num("feasible", candidates.len() as u64)
                .num("over_budget", over_budget as u64)
                .num("tune_id", tune_id),
        );
    }

    // Restore completed rungs from the crash-consistent state file.
    let mut restored: Vec<RungOutcome> = Vec::new();
    if options.resume {
        let path = options
            .state
            .as_ref()
            .ok_or_else(|| TuneError::state("resume requested but no state path given"))?;
        if path.exists() {
            restored = read_tune_state(path, tune_id)?;
        }
    }

    let cache = TraceCache::from_env();
    let mut outcomes: Vec<RungOutcome> = Vec::new();
    let mut survivors: Vec<usize> = candidates.iter().map(|c| c.index).collect();
    let by_index: BTreeMap<usize, &Candidate> = candidates.iter().map(|c| (c.index, c)).collect();
    let mut simulated_records = 0u64;

    for rung in 0..options.rungs {
        let divisor = (options.eta as u64)
            .saturating_pow((options.rungs - 1 - rung) as u32)
            .max(1);
        let outcome = if let Some(prior) = restored.get(rung) {
            if prior.divisor != divisor {
                return Err(TuneError::state(format!(
                    "state rung {rung} ran divisor {} but this schedule wants {divisor}",
                    prior.divisor
                )));
            }
            let mut restored_outcome = prior.clone();
            restored_outcome.restored = true;
            restored_outcome
        } else {
            if let Some(journal) = &events {
                journal.emit(
                    Event::new("tune_rung_open")
                        .num("rung", rung as u64)
                        .num("divisor", divisor)
                        .num("candidates", survivors.len() as u64),
                );
            }
            let specs: Vec<PredictorSpec> = survivors
                .iter()
                .map(|&i| spec_for(space.predictor(), by_index[&i]))
                .collect();
            let inputs: Vec<TraceInput> = traces
                .iter()
                .zip(&base_lens)
                .map(|(spec, &full)| {
                    let records = rung_records(full, divisor);
                    let (trace, _) = cache.fetch(spec, records);
                    TraceInput::ready(trace)
                })
                .collect();
            simulated_records +=
                inputs.iter().map(TraceInput::n_records).sum::<u64>() * survivors.len() as u64;
            let mut rung_options = options.sweep.clone();
            rung_options.journal = None;
            rung_options.resume_from = None;
            if let Some(state) = &options.state {
                // Per-rung job journal beside the tuner state: a kill
                // mid-rung resumes the rung's completed jobs too. The
                // fingerprint in the name keeps stale runs out.
                let journal = state.with_extension(format!("rung{rung}-{tune_id:016x}.journal"));
                if options.resume && journal.exists() {
                    rung_options.resume_from = Some(journal.clone());
                }
                rung_options.journal = Some(journal);
            }
            let report = engine::sweep_inputs(registry, &specs, &inputs, &rung_options)?;
            let scores = survivors
                .iter()
                .map(|&i| (i, score(&report, &by_index[&i].label())))
                .collect();
            let outcome = RungOutcome {
                rung,
                divisor,
                scores,
                restored: false,
            };
            if let Some(journal) = &events {
                let best = best_score(&outcome.scores);
                journal.emit(
                    Event::new("tune_rung_close")
                        .num("rung", rung as u64)
                        .num("divisor", divisor)
                        .num("evaluated", outcome.scores.len() as u64)
                        .float("best_mpki", best),
                );
            }
            outcome
        };
        outcomes.push(outcome);
        // Journal after every rung: the state file always holds the
        // exact set of completed rungs.
        if let Some(path) = &options.state {
            write_tune_state(path, tune_id, &outcomes)
                .map_err(|e| TuneError::state(format!("{}: {e}", path.display())))?;
            // The rung's job journal has served its purpose.
            let journal = path.with_extension(format!("rung{rung}-{tune_id:016x}.journal"));
            let _ = std::fs::remove_file(journal);
        }
        survivors = halve(&outcomes[rung].scores, options.eta);
        if survivors.is_empty() {
            break;
        }
    }

    let frontier = build_frontier(&outcomes, &by_index);
    if let Some(journal) = &events {
        journal.emit(
            Event::new("tune_close")
                .num("frontier", frontier.len() as u64)
                .num(
                    "evaluations",
                    outcomes.iter().map(|o| o.scores.len() as u64).sum(),
                )
                .float("wall_ms", started.elapsed().as_secs_f64() * 1e3),
        );
    }

    Ok(TuneReport {
        space_text: space.render(),
        predictor: space.predictor().to_owned(),
        budget_bits,
        eta: options.eta,
        rungs: options.rungs,
        samples: options.samples,
        seed: options.seed,
        trace_names: traces.iter().map(|t| t.name().to_owned()).collect(),
        declared,
        over_budget,
        rejected,
        candidates,
        outcomes,
        frontier,
        simulated_records,
        wall: started.elapsed(),
    })
}

/// Records per trace at a rung: the full scaled length divided by the
/// rung's divisor, floored at [`MIN_RUNG_RECORDS`] (but never above the
/// full length).
pub fn rung_records(full_len: usize, divisor: u64) -> usize {
    (full_len / divisor as usize).max(MIN_RUNG_RECORDS.min(full_len))
}

fn spec_for(predictor: &str, candidate: &Candidate) -> PredictorSpec {
    let mut spec = PredictorSpec::new(predictor).labeled(&candidate.label());
    for (key, value) in candidate.params.iter() {
        spec = spec.with(key, value.clone());
    }
    spec
}

/// A candidate's rung score: mean MPKI across every trace, or infinity
/// when any job did not finish cleanly (a failing configuration must
/// never out-rank a working one).
fn score(report: &engine::SweepReport, label: &str) -> f64 {
    let Some(series) = report.series().iter().position(|s| s.label == label) else {
        return f64::INFINITY;
    };
    let mut results: Vec<SimResult> = Vec::new();
    for trace in 0..report.trace_names().len() {
        match report.job(series, trace).map(|j| &j.status) {
            Some(JobStatus::Ok(record)) => results.push(record.result.clone()),
            _ => return f64::INFINITY,
        }
    }
    crate::simulate::mean_mpki(&results)
}

fn best_score(scores: &[(usize, f64)]) -> f64 {
    scores.iter().map(|(_, m)| *m).fold(f64::INFINITY, f64::min)
}

/// Survivor selection: the best `ceil(n/eta)` candidates by (MPKI,
/// index), returned in candidate-index order. Infinite scores never
/// survive unless nothing else exists.
fn halve(scores: &[(usize, f64)], eta: usize) -> Vec<usize> {
    let mut ranked: Vec<(usize, f64)> = scores.to_vec();
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    let keep = ranked.len().div_ceil(eta).max(1);
    let mut survivors: Vec<usize> = ranked
        .into_iter()
        .take(keep)
        .filter(|(_, m)| m.is_finite())
        .map(|(i, _)| i)
        .collect();
    survivors.sort_unstable();
    survivors
}

/// The Pareto frontier over the final rung's finite scores: sorted by
/// storage, a point survives only when it strictly improves MPKI over
/// every cheaper point.
fn build_frontier(
    outcomes: &[RungOutcome],
    by_index: &BTreeMap<usize, &Candidate>,
) -> Vec<FrontierPoint> {
    let Some(last) = outcomes.last() else {
        return Vec::new();
    };
    let mut points: Vec<(u64, f64, usize)> = last
        .scores
        .iter()
        .filter(|(_, m)| m.is_finite())
        .map(|&(i, m)| (by_index[&i].total_bits(), m, i))
        .collect();
    points.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut frontier = Vec::new();
    let mut best = f64::INFINITY;
    for (bits, mpki, index) in points {
        if mpki < best {
            best = mpki;
            let candidate = by_index[&index];
            let mpki_by_rung = outcomes
                .iter()
                .filter_map(|o| o.scores.iter().find(|(i, _)| *i == index).map(|(_, m)| *m))
                .collect();
            frontier.push(FrontierPoint {
                candidate: index,
                params: candidate.params.clone(),
                mean_mpki: mpki,
                total_bits: bits,
                storage: candidate.storage.clone(),
                mpki_by_rung,
            });
        }
    }
    frontier
}

/// The run fingerprint guarding state-file resume: everything that
/// shapes the candidate list and schedule.
fn fingerprint(
    space: &SearchSpace,
    budget_bits: u64,
    options: &TuneOptions,
    traces: &[TraceSpec],
    base_lens: &[usize],
) -> u64 {
    let mut text = String::new();
    text.push_str(&space.render());
    text.push('\x1f');
    text.push_str(&format!(
        "{budget_bits},{},{},{},{},{}",
        options.eta,
        options.rungs,
        options.samples,
        options.seed,
        options.scale.to_bits()
    ));
    for (spec, len) in traces.iter().zip(base_lens) {
        text.push('\x1f');
        text.push_str(spec.name());
        text.push(':');
        text.push_str(&len.to_string());
    }
    fnv1a(text.as_bytes())
}

/// Atomically writes the `bfbp-tune/1` state: magic, payload,
/// little-endian payload length, FNV-1a trailer — the `bfbp-ckpt/1`
/// file discipline under a tuner magic.
fn write_tune_state(path: &Path, tune_id: u64, outcomes: &[RungOutcome]) -> std::io::Result<()> {
    let mut w = StateWriter::new();
    w.u64(tune_id);
    w.usize(outcomes.len());
    for outcome in outcomes {
        w.usize(outcome.rung);
        w.u64(outcome.divisor);
        w.usize(outcome.scores.len());
        for (index, mpki) in &outcome.scores {
            w.usize(*index);
            w.u64(mpki.to_bits());
        }
    }
    let payload = w.into_bytes();
    let mut bytes = Vec::with_capacity(TUNE_MAGIC.len() + payload.len() + 16);
    bytes.extend_from_slice(TUNE_MAGIC);
    bytes.extend_from_slice(&payload);
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    write_atomic(path, &bytes)
}

/// Reads and validates a `bfbp-tune/1` state file written by
/// [`write_tune_state`]; rejects wrong magic, torn payloads, checksum
/// mismatches, and fingerprints of other runs.
fn read_tune_state(path: &Path, tune_id: u64) -> Result<Vec<RungOutcome>, TuneError> {
    let payload = read_tune_payload(path)
        .map_err(|e| TuneError::state(format!("{}: {e}", path.display())))?;
    let mut r = StateReader::new(&payload);
    let parse = |r: &mut StateReader<'_>| -> Result<(u64, Vec<RungOutcome>), CodecError> {
        let stored_id = r.u64()?;
        let n_rungs = r.usize()?;
        let mut outcomes = Vec::with_capacity(n_rungs.min(1024));
        for _ in 0..n_rungs {
            let rung = r.usize()?;
            let divisor = r.u64()?;
            let n_scores = r.usize()?;
            let mut scores = Vec::with_capacity(n_scores.min(65_536));
            for _ in 0..n_scores {
                let index = r.usize()?;
                let mpki = f64::from_bits(r.u64()?);
                scores.push((index, mpki));
            }
            outcomes.push(RungOutcome {
                rung,
                divisor,
                scores,
                restored: true,
            });
        }
        r.finish()?;
        Ok((stored_id, outcomes))
    };
    let (stored_id, outcomes) =
        parse(&mut r).map_err(|e| TuneError::state(format!("{}: {e}", path.display())))?;
    if stored_id != tune_id {
        return Err(TuneError::state(format!(
            "{}: belongs to a different run (fingerprint {stored_id:016x}, \
             this run is {tune_id:016x}) — delete it or drop --resume",
            path.display()
        )));
    }
    Ok(outcomes)
}

fn read_tune_payload(path: &Path) -> Result<Vec<u8>, CodecError> {
    let bytes = std::fs::read(path)?;
    let body = bytes.strip_prefix(TUNE_MAGIC).ok_or(CodecError::BadMagic)?;
    if body.len() < 16 {
        return Err(CodecError::Truncated);
    }
    let (payload, trailer) = body.split_at(body.len() - 16);
    let stored_len = u64::from_le_bytes(trailer[..8].try_into().unwrap());
    let stored_sum = u64::from_le_bytes(trailer[8..].try_into().unwrap());
    if stored_len != payload.len() as u64 {
        return Err(CodecError::Truncated);
    }
    if stored_sum != fnv1a(payload) {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_roundtrip() {
        let space = SearchSpace::parse("bf-isl-tage:tables=4..10,sc=true|false").unwrap();
        assert_eq!(space.predictor(), "bf-isl-tage");
        assert_eq!(space.cardinality(), 14);
        assert_eq!(space.render(), "bf-isl-tage:sc=true|false,tables=4..10");
        let again = SearchSpace::parse(&space.render()).unwrap();
        assert_eq!(space, again);
    }

    #[test]
    fn parse_range_with_step_and_bare_value() {
        let space = SearchSpace::parse("gshare:log-size=10..20/5").unwrap();
        let (_, dim) = space.dims().next().unwrap();
        assert_eq!(dim.len(), 3);
        assert_eq!(dim.value(2), ParamValue::Int(20));

        let single = SearchSpace::parse("tage:tables=7").unwrap();
        assert_eq!(single.cardinality(), 1);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(SearchSpace::parse("").is_err());
        assert!(SearchSpace::parse("x:k").is_err());
        assert!(SearchSpace::parse("x:k=10..4").is_err());
        assert!(SearchSpace::parse("x:k=1..5/0").is_err());
        assert!(SearchSpace::parse("x:k=a..b").is_err());
    }

    #[test]
    fn grid_is_row_major_and_complete() {
        let space = SearchSpace::new("p")
            .range("a", 1, 2)
            .choices("b", vec![ParamValue::Bool(true), ParamValue::Bool(false)]);
        let grid = space.grid();
        assert_eq!(grid.len(), 4);
        let rendered: Vec<String> = grid.iter().map(Params::summary).collect();
        assert_eq!(
            rendered,
            vec!["a=1,b=true", "a=1,b=false", "a=2,b=true", "a=2,b=false"]
        );
    }

    #[test]
    fn sampling_is_seeded_and_distinct() {
        let space = SearchSpace::new("p").range("a", 0, 99).range("b", 0, 99);
        let s1 = space.sample(7, 20);
        let s2 = space.sample(7, 20);
        assert_eq!(s1.len(), 20);
        let r1: Vec<String> = s1.iter().map(Params::summary).collect();
        let r2: Vec<String> = s2.iter().map(Params::summary).collect();
        assert_eq!(r1, r2);
        let mut dedup = r1.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 20);
        // A different seed gives a different draw.
        let r3: Vec<String> = space.sample(8, 20).iter().map(Params::summary).collect();
        assert_ne!(r1, r3);
    }

    #[test]
    fn sample_covering_the_grid_falls_back_to_enumeration() {
        let space = SearchSpace::new("p").range("a", 1, 3);
        assert_eq!(space.sample(1, 0).len(), 3);
        assert_eq!(space.sample(1, 10).len(), 3);
    }

    #[test]
    fn validate_names_accepted_keys() {
        let registry = PredictorRegistry::with_builtins();
        let bad = SearchSpace::parse("static-taken:tables=1..4").unwrap();
        let err = bad.validate(&registry).unwrap_err();
        assert!(err.to_string().contains("tables"), "{err}");
        assert!(SearchSpace::parse("static-taken")
            .unwrap()
            .validate(&registry)
            .is_ok());
        assert!(SearchSpace::parse("no-such")
            .unwrap()
            .validate(&registry)
            .is_err());
    }

    #[test]
    fn halving_keeps_best_and_drops_failures() {
        let scores = vec![(0, 5.0), (1, f64::INFINITY), (2, 3.0), (3, 4.0), (4, 3.0)];
        // ceil(5/2) = 3 kept: candidates 2, 4 (tie broken by index), 3.
        assert_eq!(halve(&scores, 2), vec![2, 3, 4]);
        // All-failed field keeps nobody.
        assert_eq!(halve(&[(0, f64::INFINITY)], 2), Vec::<usize>::new());
    }

    #[test]
    fn rung_records_floors_and_divides() {
        assert_eq!(rung_records(100_000, 4), 25_000);
        assert_eq!(rung_records(100_000, 1), 100_000);
        assert_eq!(rung_records(2_000, 16), MIN_RUNG_RECORDS);
        assert_eq!(rung_records(500, 4), 500);
    }

    #[test]
    fn state_file_roundtrip_and_fingerprint_guard() {
        let dir = std::env::temp_dir().join(format!("bfbp-tune-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tune.state");
        let outcomes = vec![RungOutcome {
            rung: 0,
            divisor: 2,
            scores: vec![(0, 4.25), (3, f64::INFINITY)],
            restored: false,
        }];
        write_tune_state(&path, 0xABCD, &outcomes).unwrap();
        let restored = read_tune_state(&path, 0xABCD).unwrap();
        assert_eq!(restored.len(), 1);
        assert_eq!(restored[0].divisor, 2);
        assert_eq!(restored[0].scores[0], (0, 4.25));
        assert!(restored[0].scores[1].1.is_infinite());
        assert!(restored[0].restored);
        // Wrong fingerprint is refused, not silently reused.
        assert!(read_tune_state(&path, 0x1234).is_err());
        // A corrupt byte is detected by the FNV trailer.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[TUNE_MAGIC.len() + 2] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_tune_state(&path, 0xABCD).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn frontier_is_pareto_minimal() {
        let candidates = [
            Candidate {
                index: 0,
                params: Params::new(),
                storage: StorageBreakdown::from_iter([crate::storage::StorageItem::new("t", 100)]),
            },
            Candidate {
                index: 1,
                params: Params::new(),
                storage: StorageBreakdown::from_iter([crate::storage::StorageItem::new("t", 200)]),
            },
            Candidate {
                index: 2,
                params: Params::new(),
                storage: StorageBreakdown::from_iter([crate::storage::StorageItem::new("t", 300)]),
            },
        ];
        let by_index: BTreeMap<usize, &Candidate> =
            candidates.iter().map(|c| (c.index, c)).collect();
        // 200 bits / 5.0 MPKI is dominated by 100 bits / 4.0; 300 bits
        // / 3.0 improves and stays.
        let outcomes = vec![RungOutcome {
            rung: 0,
            divisor: 1,
            scores: vec![(0, 4.0), (1, 5.0), (2, 3.0)],
            restored: false,
        }];
        let frontier = build_frontier(&outcomes, &by_index);
        let picks: Vec<(usize, u64)> = frontier
            .iter()
            .map(|p| (p.candidate, p.total_bits))
            .collect();
        assert_eq!(picks, vec![(0, 100), (2, 300)]);
    }
}
