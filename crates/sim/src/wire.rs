//! `bfbp-wire/1`: the length-prefixed binary protocol the prediction
//! service speaks over TCP.
//!
//! Every frame on the wire is
//!
//! ```text
//! +---------+------+-----------+------------+
//! | len u32 | kind | payload   | check u64  |
//! +---------+------+-----------+------------+
//!   little-   u8     len-1       FNV-1a over
//!   endian           bytes       kind+payload
//! ```
//!
//! `len` counts the body (kind byte plus payload) and is capped at
//! [`MAX_FRAME`]; the trailing checksum is the same FNV-1a the
//! `bfbp-ckpt/1` container uses ([`crate::ckpt::fnv1a`]), so a flipped
//! bit anywhere in the body is detected before the payload is decoded.
//! Reads are torn-frame tolerant: a clean close at a frame boundary is
//! `Ok(None)`, while EOF *inside* a frame is the typed
//! [`WireError::Torn`].
//!
//! Integers are little-endian; strings are `u32` length + UTF-8;
//! boolean arrays are bit-packed LSB-first ([`pack_bits`]). The batched
//! frames (`PREDICT_BATCH`, `OUTCOME_BATCH`, `PREDICT_REPLY`) have
//! dedicated `encode_*`/`decode_*_into` entry points that reuse caller
//! scratch so the serving hot loop stays allocation-free; the owned
//! [`Frame`] enum covers every frame type for control paths and tests,
//! and delegates to the same layout code.

use std::fmt;
use std::io::{self, Read};

use bfbp_trace::record::{BranchKind, BranchRecord};
use bfbp_trace::source::TraceChunk;

use crate::ckpt::fnv1a;
use crate::predictor::PredictorCaps;

/// Protocol identifier exchanged in the HELLO handshake.
pub const WIRE_PROTOCOL: &str = "bfbp-wire/1";

/// Upper bound on the frame body (kind + payload) in bytes. Large
/// enough for ~50k-record batches, small enough that a corrupted
/// length prefix cannot make a reader allocate gigabytes.
pub const MAX_FRAME: usize = 1 << 20;

/// Frame discriminants, one per message the protocol defines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: protocol + client identification.
    Hello = 1,
    /// Server → client: protocol + server identification + the
    /// predictor catalogue with capability bits.
    HelloAck = 2,
    /// Client → server: open (or re-attach to) a session.
    Open = 3,
    /// Server → client: session is live; carries capability bits,
    /// whether existing state was resumed, and the current counters.
    OpenAck = 4,
    /// Client → server: a run of conditional branches to predict and
    /// train on.
    PredictBatch = 5,
    /// Server → client: per-record misprediction flags for the batch.
    PredictReply = 6,
    /// Client → server: a run of non-conditional control transfers.
    OutcomeBatch = 7,
    /// Server → client: outcome batch applied.
    OutcomeAck = 8,
    /// Client → server: report session counters.
    Stats = 9,
    /// Server → client: the session counters.
    StatsReply = 10,
    /// Client → server: persist the session now.
    Checkpoint = 11,
    /// Server → client: checkpoint result (`persisted` is false when
    /// the server has no checkpoint directory or the predictor is not
    /// checkpointable).
    CheckpointAck = 12,
    /// Client → server: close the session and discard its checkpoint.
    Close = 13,
    /// Server → client: final counters for the closed session.
    CloseAck = 14,
    /// Client → server: persist all sessions and stop serving.
    Shutdown = 15,
    /// Server → client: shutting down; carries the persisted-session
    /// count.
    ShutdownAck = 16,
    /// Server → client: a typed error ([`ErrorCode`]).
    Error = 17,
}

impl FrameKind {
    /// All frame kinds, for exhaustive round-trip tests.
    pub const ALL: [FrameKind; 17] = [
        FrameKind::Hello,
        FrameKind::HelloAck,
        FrameKind::Open,
        FrameKind::OpenAck,
        FrameKind::PredictBatch,
        FrameKind::PredictReply,
        FrameKind::OutcomeBatch,
        FrameKind::OutcomeAck,
        FrameKind::Stats,
        FrameKind::StatsReply,
        FrameKind::Checkpoint,
        FrameKind::CheckpointAck,
        FrameKind::Close,
        FrameKind::CloseAck,
        FrameKind::Shutdown,
        FrameKind::ShutdownAck,
        FrameKind::Error,
    ];

    /// Decodes a kind byte.
    pub fn from_u8(byte: u8) -> Option<FrameKind> {
        Self::ALL.get(byte.wrapping_sub(1) as usize).copied()
    }
}

/// Typed error codes carried by [`FrameKind::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The peer violated the protocol (unexpected frame, bad handshake).
    Protocol = 1,
    /// The frame referenced a session id the server does not hold.
    UnknownSession = 2,
    /// OPEN named an unbuildable predictor spec, or re-attached with a
    /// spec that does not match the live session.
    BadSpec = 3,
    /// Load shed: the server is at its connection bound; retry later.
    Retry = 4,
    /// The server failed internally (e.g. checkpoint I/O).
    Internal = 5,
}

impl ErrorCode {
    /// Decodes an error-code byte.
    pub fn from_u8(byte: u8) -> Option<ErrorCode> {
        match byte {
            1 => Some(ErrorCode::Protocol),
            2 => Some(ErrorCode::UnknownSession),
            3 => Some(ErrorCode::BadSpec),
            4 => Some(ErrorCode::Retry),
            5 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ErrorCode::Protocol => "protocol",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::BadSpec => "bad-spec",
            ErrorCode::Retry => "retry",
            ErrorCode::Internal => "internal",
        })
    }
}

/// Per-session accounting counters, mirroring the `SimCheckpoint`
/// quartet so served sessions and offline runs are compared field for
/// field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Trace records applied (conditional + other).
    pub records: u64,
    /// Instructions represented by those records.
    pub instructions: u64,
    /// Conditional branches predicted.
    pub conditional_branches: u64,
    /// Conditional branches predicted wrongly.
    pub mispredictions: u64,
}

/// One predictor catalogue row in the HELLO_ACK frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictorInfo {
    /// Registry name (`"bf-tage"`, …).
    pub name: String,
    /// Its capability descriptor.
    pub caps: PredictorCaps,
}

/// A decoded run of conditional branches: the SoA buffers a
/// `PREDICT_BATCH` frame carries, reusable across frames.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CondBatch {
    /// Branch program counters.
    pub pcs: Vec<u64>,
    /// Taken targets.
    pub targets: Vec<u64>,
    /// Instructions since the previous record, per record.
    pub gaps: Vec<u32>,
    /// Resolved directions.
    pub takens: Vec<bool>,
}

impl CondBatch {
    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }
}

/// Every `bfbp-wire/1` frame as owned data. Control paths and tests
/// use this enum; the serving hot loop uses the scratch-reusing
/// `encode_*`/`decode_*_into` functions, which share the layout code.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// See [`FrameKind::Hello`].
    Hello {
        /// Must equal [`WIRE_PROTOCOL`].
        protocol: String,
        /// Free-form client identification.
        client: String,
    },
    /// See [`FrameKind::HelloAck`].
    HelloAck {
        /// Must equal [`WIRE_PROTOCOL`].
        protocol: String,
        /// Free-form server identification.
        server: String,
        /// The registry catalogue with capability bits.
        predictors: Vec<PredictorInfo>,
    },
    /// See [`FrameKind::Open`].
    Open {
        /// Client-chosen session id.
        session: u64,
        /// Predictor spec (`PredictorSpec::parse` grammar).
        spec: String,
    },
    /// See [`FrameKind::OpenAck`].
    OpenAck {
        /// Echoed session id.
        session: u64,
        /// The live predictor's capability descriptor.
        caps: PredictorCaps,
        /// True when the session already existed (restored from a
        /// checkpoint or still live from an earlier connection).
        resumed: bool,
        /// Counters at attach time; a resuming client fast-forwards its
        /// trace cursor to `stats.records`.
        stats: SessionStats,
    },
    /// See [`FrameKind::PredictBatch`].
    PredictBatch {
        /// Target session.
        session: u64,
        /// The conditional run.
        batch: CondBatch,
    },
    /// See [`FrameKind::PredictReply`].
    PredictReply {
        /// Echoed session id.
        session: u64,
        /// Per-record misprediction flags.
        miss: Vec<bool>,
    },
    /// See [`FrameKind::OutcomeBatch`].
    OutcomeBatch {
        /// Target session.
        session: u64,
        /// The non-conditional run, in commit order.
        records: Vec<BranchRecord>,
    },
    /// See [`FrameKind::OutcomeAck`].
    OutcomeAck {
        /// Echoed session id.
        session: u64,
    },
    /// See [`FrameKind::Stats`].
    Stats {
        /// Target session.
        session: u64,
    },
    /// See [`FrameKind::StatsReply`].
    StatsReply {
        /// Echoed session id.
        session: u64,
        /// Current counters.
        stats: SessionStats,
    },
    /// See [`FrameKind::Checkpoint`].
    Checkpoint {
        /// Target session.
        session: u64,
    },
    /// See [`FrameKind::CheckpointAck`].
    CheckpointAck {
        /// Echoed session id.
        session: u64,
        /// Whether a `bfbp-ckpt/1` file was actually written.
        persisted: bool,
    },
    /// See [`FrameKind::Close`].
    Close {
        /// Target session.
        session: u64,
    },
    /// See [`FrameKind::CloseAck`].
    CloseAck {
        /// Echoed session id.
        session: u64,
        /// Final counters.
        stats: SessionStats,
    },
    /// See [`FrameKind::Shutdown`].
    Shutdown,
    /// See [`FrameKind::ShutdownAck`].
    ShutdownAck {
        /// Sessions persisted on the way down.
        sessions: u64,
    },
    /// See [`FrameKind::Error`].
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// The session the error concerns (0 when none).
        session: u64,
        /// Human-readable detail.
        message: String,
    },
}

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum WireError {
    /// EOF in the middle of a frame (clean close at a boundary is
    /// `Ok(None)` from [`FrameReader::read_from`], not an error).
    Torn,
    /// The FNV-1a trailer did not match the body.
    Checksum,
    /// The length prefix was zero or exceeded [`MAX_FRAME`].
    TooLarge(usize),
    /// The kind byte is not a known [`FrameKind`].
    UnknownKind(u8),
    /// The payload did not decode (truncated array, bad UTF-8,
    /// unknown enum byte, trailing garbage).
    Malformed(&'static str),
    /// The underlying transport failed.
    Io(io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Torn => write!(f, "torn frame: EOF inside a frame"),
            WireError::Checksum => write!(f, "frame checksum mismatch"),
            WireError::TooLarge(len) => {
                write!(f, "frame length {len} outside 1..={MAX_FRAME}")
            }
            WireError::UnknownKind(byte) => write!(f, "unknown frame kind {byte:#04x}"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
            WireError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Packs booleans LSB-first into `ceil(n/8)` bytes appended to `out`.
pub fn pack_bits(bits: &[bool], out: &mut Vec<u8>) {
    for chunk in bits.chunks(8) {
        let mut byte = 0u8;
        for (i, &b) in chunk.iter().enumerate() {
            byte |= u8::from(b) << i;
        }
        out.push(byte);
    }
}

/// Unpacks `n` LSB-first booleans from `bytes` into `out` (cleared
/// first). `bytes` must hold exactly `ceil(n/8)` bytes; the caller
/// (the payload decoder) guarantees that.
pub fn unpack_bits(bytes: &[u8], n: usize, out: &mut Vec<bool>) {
    out.clear();
    out.reserve(n);
    for i in 0..n {
        out.push(bytes[i / 8] >> (i % 8) & 1 != 0);
    }
}

const fn bits_len(n: usize) -> usize {
    n.div_ceil(8)
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Starts a frame in `out` (cleared first): length placeholder + kind.
fn begin_frame(out: &mut Vec<u8>, kind: FrameKind) {
    out.clear();
    out.extend_from_slice(&[0u8; 4]);
    out.push(kind as u8);
}

/// Patches the length prefix and appends the FNV-1a trailer. `out`
/// then holds exactly one complete frame, ready for a single write.
fn finish_frame(out: &mut Vec<u8>) {
    let len = out.len() - 4;
    debug_assert!((1..=MAX_FRAME).contains(&len), "frame body {len} bytes");
    out[..4].copy_from_slice(&(len as u32).to_le_bytes());
    let check = fnv1a(&out[4..]);
    out.extend_from_slice(&check.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_stats(out: &mut Vec<u8>, stats: SessionStats) {
    put_u64(out, stats.records);
    put_u64(out, stats.instructions);
    put_u64(out, stats.conditional_branches);
    put_u64(out, stats.mispredictions);
}

fn put_u64s(out: &mut Vec<u8>, vs: &[u64]) {
    for &v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_u32s(out: &mut Vec<u8>, vs: &[u32]) {
    for &v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Encodes a `PREDICT_BATCH` frame into `out` (cleared first). The
/// four slices must be equally long; this is the client hot-path
/// encoder and the single source of truth for the batch layout.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn encode_predict_batch(
    session: u64,
    pcs: &[u64],
    targets: &[u64],
    gaps: &[u32],
    takens: &[bool],
    out: &mut Vec<u8>,
) {
    let n = pcs.len();
    assert!(n == targets.len() && n == gaps.len() && n == takens.len());
    begin_frame(out, FrameKind::PredictBatch);
    put_u64(out, session);
    put_u32(out, n as u32);
    put_u64s(out, pcs);
    put_u64s(out, targets);
    put_u32s(out, gaps);
    pack_bits(takens, out);
    finish_frame(out);
}

/// Encodes a `PREDICT_REPLY` frame into `out` (cleared first): the
/// server hot-path encoder.
pub fn encode_predict_reply(session: u64, miss: &[bool], out: &mut Vec<u8>) {
    begin_frame(out, FrameKind::PredictReply);
    put_u64(out, session);
    put_u32(out, miss.len() as u32);
    pack_bits(miss, out);
    finish_frame(out);
}

/// Encodes an `OUTCOME_BATCH` frame into `out` (cleared first) from a
/// run `start..end` of records inside `chunk` — the same shape
/// `ConditionalPredictor::update_batch` consumes on the far side.
pub fn encode_outcome_batch(
    session: u64,
    chunk: &TraceChunk,
    start: usize,
    end: usize,
    out: &mut Vec<u8>,
) {
    begin_frame(out, FrameKind::OutcomeBatch);
    put_u64(out, session);
    put_u32(out, (end - start) as u32);
    put_u64s(out, &chunk.pcs()[start..end]);
    put_u64s(out, &chunk.targets()[start..end]);
    put_u32s(out, &chunk.inst_gaps()[start..end]);
    for &kind in &chunk.kinds()[start..end] {
        out.push(kind as u8);
    }
    pack_bits(&chunk.takens()[start..end], out);
    finish_frame(out);
}

impl Frame {
    /// The frame's discriminant.
    pub fn kind(&self) -> FrameKind {
        match self {
            Frame::Hello { .. } => FrameKind::Hello,
            Frame::HelloAck { .. } => FrameKind::HelloAck,
            Frame::Open { .. } => FrameKind::Open,
            Frame::OpenAck { .. } => FrameKind::OpenAck,
            Frame::PredictBatch { .. } => FrameKind::PredictBatch,
            Frame::PredictReply { .. } => FrameKind::PredictReply,
            Frame::OutcomeBatch { .. } => FrameKind::OutcomeBatch,
            Frame::OutcomeAck { .. } => FrameKind::OutcomeAck,
            Frame::Stats { .. } => FrameKind::Stats,
            Frame::StatsReply { .. } => FrameKind::StatsReply,
            Frame::Checkpoint { .. } => FrameKind::Checkpoint,
            Frame::CheckpointAck { .. } => FrameKind::CheckpointAck,
            Frame::Close { .. } => FrameKind::Close,
            Frame::CloseAck { .. } => FrameKind::CloseAck,
            Frame::Shutdown => FrameKind::Shutdown,
            Frame::ShutdownAck { .. } => FrameKind::ShutdownAck,
            Frame::Error { .. } => FrameKind::Error,
        }
    }

    /// Encodes the complete frame (header, body, checksum) into `out`
    /// (cleared first).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello { protocol, client } => {
                begin_frame(out, FrameKind::Hello);
                put_str(out, protocol);
                put_str(out, client);
            }
            Frame::HelloAck {
                protocol,
                server,
                predictors,
            } => {
                begin_frame(out, FrameKind::HelloAck);
                put_str(out, protocol);
                put_str(out, server);
                put_u32(out, predictors.len() as u32);
                for p in predictors {
                    put_str(out, &p.name);
                    out.push(p.caps.bits());
                }
            }
            Frame::Open { session, spec } => {
                begin_frame(out, FrameKind::Open);
                put_u64(out, *session);
                put_str(out, spec);
            }
            Frame::OpenAck {
                session,
                caps,
                resumed,
                stats,
            } => {
                begin_frame(out, FrameKind::OpenAck);
                put_u64(out, *session);
                out.push(caps.bits());
                out.push(u8::from(*resumed));
                put_stats(out, *stats);
            }
            Frame::PredictBatch { session, batch } => {
                encode_predict_batch(
                    *session,
                    &batch.pcs,
                    &batch.targets,
                    &batch.gaps,
                    &batch.takens,
                    out,
                );
                return;
            }
            Frame::PredictReply { session, miss } => {
                encode_predict_reply(*session, miss, out);
                return;
            }
            Frame::OutcomeBatch { session, records } => {
                let mut chunk = TraceChunk::with_capacity(records.len());
                for record in records {
                    chunk.push(record);
                }
                encode_outcome_batch(*session, &chunk, 0, records.len(), out);
                return;
            }
            Frame::OutcomeAck { session } => {
                begin_frame(out, FrameKind::OutcomeAck);
                put_u64(out, *session);
            }
            Frame::Stats { session } => {
                begin_frame(out, FrameKind::Stats);
                put_u64(out, *session);
            }
            Frame::StatsReply { session, stats } => {
                begin_frame(out, FrameKind::StatsReply);
                put_u64(out, *session);
                put_stats(out, *stats);
            }
            Frame::Checkpoint { session } => {
                begin_frame(out, FrameKind::Checkpoint);
                put_u64(out, *session);
            }
            Frame::CheckpointAck { session, persisted } => {
                begin_frame(out, FrameKind::CheckpointAck);
                put_u64(out, *session);
                out.push(u8::from(*persisted));
            }
            Frame::Close { session } => {
                begin_frame(out, FrameKind::Close);
                put_u64(out, *session);
            }
            Frame::CloseAck { session, stats } => {
                begin_frame(out, FrameKind::CloseAck);
                put_u64(out, *session);
                put_stats(out, *stats);
            }
            Frame::Shutdown => {
                begin_frame(out, FrameKind::Shutdown);
            }
            Frame::ShutdownAck { sessions } => {
                begin_frame(out, FrameKind::ShutdownAck);
                put_u64(out, *sessions);
            }
            Frame::Error {
                code,
                session,
                message,
            } => {
                begin_frame(out, FrameKind::Error);
                out.push(*code as u8);
                put_u64(out, *session);
                put_str(out, message);
            }
        }
        finish_frame(out);
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Bounds-checked cursor over a frame payload.
struct Cur<'a> {
    buf: &'a [u8],
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Malformed("payload truncated"));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("boolean byte not 0 or 1")),
        }
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<&'a str, WireError> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|_| WireError::Malformed("string not UTF-8"))
    }

    fn stats(&mut self) -> Result<SessionStats, WireError> {
        Ok(SessionStats {
            records: self.u64()?,
            instructions: self.u64()?,
            conditional_branches: self.u64()?,
            mispredictions: self.u64()?,
        })
    }

    fn caps(&mut self) -> Result<PredictorCaps, WireError> {
        PredictorCaps::from_bits(self.u8()?).ok_or(WireError::Malformed("unknown capability bits"))
    }

    /// Batch count: bounded by what a [`MAX_FRAME`] body could carry,
    /// so hostile counts cannot drive huge allocations.
    fn count(&mut self) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n > MAX_FRAME {
            return Err(WireError::Malformed("batch count exceeds frame bound"));
        }
        Ok(n)
    }

    fn u64s_into(&mut self, n: usize, out: &mut Vec<u64>) -> Result<(), WireError> {
        let raw = self.take(n * 8)?;
        out.clear();
        out.reserve(n);
        out.extend(
            raw.chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap())),
        );
        Ok(())
    }

    fn u32s_into(&mut self, n: usize, out: &mut Vec<u32>) -> Result<(), WireError> {
        let raw = self.take(n * 4)?;
        out.clear();
        out.reserve(n);
        out.extend(
            raw.chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap())),
        );
        Ok(())
    }

    fn bits_into(&mut self, n: usize, out: &mut Vec<bool>) -> Result<(), WireError> {
        let raw = self.take(bits_len(n))?;
        unpack_bits(raw, n, out);
        Ok(())
    }

    fn finish(self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after payload"))
        }
    }
}

/// Decodes a `PREDICT_BATCH` payload into reusable scratch buffers;
/// returns the session id. The server hot-path decoder.
pub fn decode_predict_batch_into(payload: &[u8], batch: &mut CondBatch) -> Result<u64, WireError> {
    let mut cur = Cur::new(payload);
    let session = cur.u64()?;
    let n = cur.count()?;
    cur.u64s_into(n, &mut batch.pcs)?;
    cur.u64s_into(n, &mut batch.targets)?;
    cur.u32s_into(n, &mut batch.gaps)?;
    cur.bits_into(n, &mut batch.takens)?;
    cur.finish()?;
    Ok(session)
}

/// Decodes a `PREDICT_REPLY` payload into a reusable flag buffer;
/// returns the session id. The client hot-path decoder.
pub fn decode_predict_reply_into(payload: &[u8], miss: &mut Vec<bool>) -> Result<u64, WireError> {
    let mut cur = Cur::new(payload);
    let session = cur.u64()?;
    let n = cur.count()?;
    cur.bits_into(n, miss)?;
    cur.finish()?;
    Ok(session)
}

/// Decodes an `OUTCOME_BATCH` payload into a reusable [`TraceChunk`]
/// (cleared first); returns the session id. The chunk then feeds
/// `ConditionalPredictor::update_batch` directly.
pub fn decode_outcome_batch_into(payload: &[u8], chunk: &mut TraceChunk) -> Result<u64, WireError> {
    let mut cur = Cur::new(payload);
    let session = cur.u64()?;
    let n = cur.count()?;
    let pcs = cur.take(n * 8)?;
    let targets = cur.take(n * 8)?;
    let gaps = cur.take(n * 4)?;
    let kinds = cur.take(n)?;
    let takens = cur.take(bits_len(n))?;
    cur.finish()?;
    chunk.clear();
    for i in 0..n {
        let kind = BranchKind::from_u8(kinds[i])
            .ok_or(WireError::Malformed("unknown branch kind byte"))?;
        chunk.push(&BranchRecord {
            pc: u64::from_le_bytes(pcs[i * 8..i * 8 + 8].try_into().unwrap()),
            target: u64::from_le_bytes(targets[i * 8..i * 8 + 8].try_into().unwrap()),
            taken: takens[i / 8] >> (i % 8) & 1 != 0,
            kind,
            non_branch_insts: u32::from_le_bytes(gaps[i * 4..i * 4 + 4].try_into().unwrap()),
        });
    }
    Ok(session)
}

impl Frame {
    /// Decodes a frame payload the generic, owned way. The batched
    /// kinds route through the same `decode_*_into` functions the hot
    /// paths use, so there is exactly one layout decoder per frame.
    pub fn decode(kind: FrameKind, payload: &[u8]) -> Result<Frame, WireError> {
        let mut cur = Cur::new(payload);
        let frame = match kind {
            FrameKind::Hello => Frame::Hello {
                protocol: cur.str()?.to_owned(),
                client: cur.str()?.to_owned(),
            },
            FrameKind::HelloAck => {
                let protocol = cur.str()?.to_owned();
                let server = cur.str()?.to_owned();
                let n = cur.count()?;
                let mut predictors = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    predictors.push(PredictorInfo {
                        name: cur.str()?.to_owned(),
                        caps: cur.caps()?,
                    });
                }
                Frame::HelloAck {
                    protocol,
                    server,
                    predictors,
                }
            }
            FrameKind::Open => Frame::Open {
                session: cur.u64()?,
                spec: cur.str()?.to_owned(),
            },
            FrameKind::OpenAck => Frame::OpenAck {
                session: cur.u64()?,
                caps: cur.caps()?,
                resumed: cur.bool()?,
                stats: cur.stats()?,
            },
            FrameKind::PredictBatch => {
                let mut batch = CondBatch::default();
                let session = decode_predict_batch_into(payload, &mut batch)?;
                return Ok(Frame::PredictBatch { session, batch });
            }
            FrameKind::PredictReply => {
                let mut miss = Vec::new();
                let session = decode_predict_reply_into(payload, &mut miss)?;
                return Ok(Frame::PredictReply { session, miss });
            }
            FrameKind::OutcomeBatch => {
                let mut chunk = TraceChunk::new();
                let session = decode_outcome_batch_into(payload, &mut chunk)?;
                let records = (0..chunk.len()).map(|i| chunk.record(i)).collect();
                return Ok(Frame::OutcomeBatch { session, records });
            }
            FrameKind::OutcomeAck => Frame::OutcomeAck {
                session: cur.u64()?,
            },
            FrameKind::Stats => Frame::Stats {
                session: cur.u64()?,
            },
            FrameKind::StatsReply => Frame::StatsReply {
                session: cur.u64()?,
                stats: cur.stats()?,
            },
            FrameKind::Checkpoint => Frame::Checkpoint {
                session: cur.u64()?,
            },
            FrameKind::CheckpointAck => Frame::CheckpointAck {
                session: cur.u64()?,
                persisted: cur.bool()?,
            },
            FrameKind::Close => Frame::Close {
                session: cur.u64()?,
            },
            FrameKind::CloseAck => Frame::CloseAck {
                session: cur.u64()?,
                stats: cur.stats()?,
            },
            FrameKind::Shutdown => Frame::Shutdown,
            FrameKind::ShutdownAck => Frame::ShutdownAck {
                sessions: cur.u64()?,
            },
            FrameKind::Error => {
                let code = ErrorCode::from_u8(cur.u8()?)
                    .ok_or(WireError::Malformed("unknown error code"))?;
                Frame::Error {
                    code,
                    session: cur.u64()?,
                    message: cur.str()?.to_owned(),
                }
            }
        };
        cur.finish()?;
        Ok(frame)
    }
}

// ---------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------

/// What one fill attempt saw.
enum Fill {
    /// The buffer was filled completely.
    Full,
    /// EOF before the first byte — a clean close.
    Closed,
}

/// Fills `buf` from `r`, tolerating short reads. EOF with zero bytes
/// consumed is [`Fill::Closed`]; EOF after at least one byte is
/// [`WireError::Torn`].
fn fill(r: &mut impl Read, buf: &mut [u8]) -> Result<Fill, WireError> {
    let mut pos = 0;
    while pos < buf.len() {
        match r.read(&mut buf[pos..]) {
            Ok(0) if pos == 0 => return Ok(Fill::Closed),
            Ok(0) => return Err(WireError::Torn),
            Ok(n) => pos += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(Fill::Full)
}

/// Reads frames off a byte stream into a reusable buffer: one
/// `FrameReader` per connection gives an allocation-free steady state.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// A reader with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the next frame: `Ok(None)` on a clean close at a frame
    /// boundary, `Ok(Some((kind, payload)))` for a verified frame, and
    /// a typed [`WireError`] for everything else (torn frame, checksum
    /// mismatch, absurd length, unknown kind).
    pub fn read_from(
        &mut self,
        r: &mut impl Read,
    ) -> Result<Option<(FrameKind, &[u8])>, WireError> {
        let mut head = [0u8; 4];
        match fill(r, &mut head)? {
            Fill::Closed => return Ok(None),
            Fill::Full => {}
        }
        let len = u32::from_le_bytes(head) as usize;
        if len == 0 || len > MAX_FRAME {
            return Err(WireError::TooLarge(len));
        }
        self.buf.resize(len + 8, 0);
        match fill(r, &mut self.buf)? {
            Fill::Closed => return Err(WireError::Torn),
            Fill::Full => {}
        }
        let (body, trailer) = self.buf.split_at(len);
        let check = u64::from_le_bytes(trailer.try_into().unwrap());
        if fnv1a(body) != check {
            return Err(WireError::Checksum);
        }
        let kind = FrameKind::from_u8(body[0]).ok_or(WireError::UnknownKind(body[0]))?;
        Ok(Some((kind, &self.buf[1..len])))
    }

    /// Reads and fully decodes the next frame the owned way (control
    /// paths and tests; the hot loops pair [`read_from`] with the
    /// `decode_*_into` functions instead).
    ///
    /// [`read_from`]: FrameReader::read_from
    pub fn read_frame(&mut self, r: &mut impl Read) -> Result<Option<Frame>, WireError> {
        match self.read_from(r)? {
            None => Ok(None),
            Some((kind, payload)) => Ok(Some(Frame::decode(kind, payload)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_kind_bytes_round_trip() {
        for kind in FrameKind::ALL {
            assert_eq!(FrameKind::from_u8(kind as u8), Some(kind));
        }
        assert_eq!(FrameKind::from_u8(0), None);
        assert_eq!(FrameKind::from_u8(18), None);
    }

    #[test]
    fn hello_round_trips() {
        let frame = Frame::Hello {
            protocol: WIRE_PROTOCOL.to_owned(),
            client: "unit".to_owned(),
        };
        let mut out = Vec::new();
        frame.encode_into(&mut out);
        let mut reader = FrameReader::new();
        let decoded = reader.read_frame(&mut &out[..]).unwrap().unwrap();
        assert_eq!(decoded, frame);
        // And the stream is now cleanly closed.
        assert!(reader.read_frame(&mut &[][..]).unwrap().is_none());
    }

    #[test]
    fn batch_decoders_reuse_scratch() {
        let frame = Frame::PredictBatch {
            session: 7,
            batch: CondBatch {
                pcs: vec![0x40, 0x80, 0xc0],
                targets: vec![0x44, 0x84, 0xc4],
                gaps: vec![1, 2, 3],
                takens: vec![true, false, true],
            },
        };
        let mut out = Vec::new();
        frame.encode_into(&mut out);
        let mut reader = FrameReader::new();
        let (kind, payload) = reader.read_from(&mut &out[..]).unwrap().unwrap();
        assert_eq!(kind, FrameKind::PredictBatch);
        let mut batch = CondBatch::default();
        let session = decode_predict_batch_into(payload, &mut batch).unwrap();
        assert_eq!(session, 7);
        assert_eq!(batch.pcs, [0x40, 0x80, 0xc0]);
        assert_eq!(batch.takens, [true, false, true]);
    }

    #[test]
    fn corrupt_frames_are_typed() {
        let mut out = Vec::new();
        Frame::Stats { session: 3 }.encode_into(&mut out);
        let mut reader = FrameReader::new();

        // Flip a payload bit: checksum.
        let mut bad = out.clone();
        bad[6] ^= 0x40;
        assert!(matches!(
            reader.read_frame(&mut &bad[..]),
            Err(WireError::Checksum)
        ));

        // Truncate: torn.
        assert!(matches!(
            reader.read_frame(&mut &out[..out.len() - 3]),
            Err(WireError::Torn)
        ));

        // Zero length prefix: rejected without reading a body.
        assert!(matches!(
            reader.read_frame(&mut &[0u8; 12][..]),
            Err(WireError::TooLarge(0))
        ));
    }
}
