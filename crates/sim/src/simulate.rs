//! The trace-driven simulation loop and its result type.
//!
//! The hot loop consumes structure-of-arrays [`TraceChunk`]s from any
//! [`TraceSource`], so a simulation's working set is O(chunk) whether
//! the trace is materialized, decoded from disk, or generated on the
//! fly. Each chunk is segmented into maximal runs of same-kind records
//! and handed to the predictor's batch kernels
//! ([`ConditionalPredictor::predict_batch`] /
//! [`ConditionalPredictor::update_batch`]); totals, interval windows,
//! and observer callbacks are reconstructed from the per-record
//! misprediction flags in a scalar post-pass, so batching never changes
//! a single count. The [`Simulation`] builder is the one entry point.

use std::fmt;

use bfbp_trace::record::{BranchRecord, Trace};
use bfbp_trace::source::{ReplaySource, TraceChunk, TraceSource};
use bfbp_trace::TraceFormatError;

use crate::ckpt::{SimCheckpoint, StateWriter};
use crate::obs::{FlightEntry, FlightRecorder};
use crate::predictor::ConditionalPredictor;

/// The outcome of running one predictor over one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    trace_name: String,
    predictor_name: String,
    conditional_branches: u64,
    mispredictions: u64,
    instructions: u64,
}

impl SimResult {
    /// Creates a result from raw counts (primarily for tests; use
    /// [`simulate`] to produce real results).
    pub fn from_counts(
        trace_name: impl Into<String>,
        predictor_name: impl Into<String>,
        conditional_branches: u64,
        mispredictions: u64,
        instructions: u64,
    ) -> Self {
        Self {
            trace_name: trace_name.into(),
            predictor_name: predictor_name.into(),
            conditional_branches,
            mispredictions,
            instructions,
        }
    }

    /// Name of the simulated trace.
    pub fn trace_name(&self) -> &str {
        &self.trace_name
    }

    /// Name of the predictor configuration.
    pub fn predictor_name(&self) -> &str {
        &self.predictor_name
    }

    /// Number of predicted conditional branches.
    pub fn conditional_branches(&self) -> u64 {
        self.conditional_branches
    }

    /// Number of mispredicted conditional branches.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Total committed instructions.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Mispredictions per 1000 instructions — the paper's headline metric.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        1000.0 * self.mispredictions as f64 / self.instructions as f64
    }

    /// Fraction of conditional branches predicted correctly, in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.conditional_branches == 0 {
            return 1.0;
        }
        1.0 - self.mispredictions as f64 / self.conditional_branches as f64
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {:.3} MPKI ({:.2}% accuracy, {}/{} mispredicted)",
            self.predictor_name,
            self.trace_name,
            self.mpki(),
            100.0 * self.accuracy(),
            self.mispredictions,
            self.conditional_branches
        )
    }
}

/// One window of a simulation: counts accumulated over (about)
/// `interval_insts` committed instructions. Windowed MPKI exposes
/// warm-up and phase behavior that a whole-trace average hides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalPoint {
    /// Instructions committed in this window.
    pub instructions: u64,
    /// Conditional branches predicted in this window.
    pub conditional_branches: u64,
    /// Mispredictions in this window.
    pub mispredictions: u64,
}

impl IntervalPoint {
    /// Mispredictions per 1000 instructions within this window.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        1000.0 * self.mispredictions as f64 / self.instructions as f64
    }
}

/// Runs `predictor` over every record of `trace`, in commit order.
///
/// Conditional records are predicted and then immediately used for
/// training; other records are passed to
/// [`ConditionalPredictor::track_other`]. Shorthand for an unadorned
/// [`Simulation`] run.
pub fn simulate<P: ConditionalPredictor + ?Sized>(predictor: &mut P, trace: &Trace) -> SimResult {
    match Simulation::new(predictor).run_trace(trace) {
        Ok((result, _)) => result,
        Err(e) => unreachable!("uncancellable replay cannot fail: {e}"),
    }
}

/// Marker error: a cancellable simulation observed its cancellation
/// signal and stopped before finishing the trace. Partial counts are
/// intentionally discarded — an aborted job has no result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulationAborted;

impl fmt::Display for SimulationAborted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation aborted by cancellation signal")
    }
}

impl std::error::Error for SimulationAborted {}

/// How many records a cancellable simulation processes between
/// cancellation checks — also the default [`Simulation`] chunk size, so
/// a chunk boundary doubles as a cancellation point. Coarse enough to
/// keep the signal off the hot path, fine enough that a watchdogged job
/// stops within microseconds of its flag being raised.
pub const CANCEL_CHECK_RECORDS: u64 = 4096;

/// Error from a [`Simulation`] run.
#[derive(Debug)]
pub enum SimulationError {
    /// The cancellation hook returned `true`; partial counts are
    /// discarded.
    Aborted,
    /// A streaming source failed to decode its byte stream. Replayed
    /// and synthetic sources never produce this.
    Source(TraceFormatError),
    /// Fault injection: the run was killed at a [`Simulation::kill_after`]
    /// record boundary, mimicking a process death mid-job. Carries the
    /// number of records that were fully processed before the kill.
    Killed(u64),
    /// A [`Simulation::resume_from`] point could not be reached — the
    /// checkpoint claims more records than the source delivers.
    Resume(&'static str),
}

impl fmt::Display for SimulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulationError::Aborted => write!(f, "{SimulationAborted}"),
            SimulationError::Source(e) => write!(f, "trace source failed: {e}"),
            SimulationError::Killed(records) => {
                write!(
                    f,
                    "simulation killed by fault injection after {records} records"
                )
            }
            SimulationError::Resume(msg) => write!(f, "cannot resume: {msg}"),
        }
    }
}

impl std::error::Error for SimulationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimulationError::Source(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceFormatError> for SimulationError {
    fn from(e: TraceFormatError) -> Self {
        SimulationError::Source(e)
    }
}

/// Builder for one simulation run: a predictor plus optional interval
/// collection, a cancellation hook, and a per-branch observation hook.
///
/// ```
/// use bfbp_sim::predictor::StaticPredictor;
/// use bfbp_sim::simulate::Simulation;
/// use bfbp_trace::record::{BranchRecord, Trace};
///
/// let trace = Trace::new("t", vec![BranchRecord::cond(0x40, 0x80, true, 4)]);
/// let mut predictor = StaticPredictor::always_taken();
/// let (result, _intervals) = Simulation::new(&mut predictor)
///     .intervals(100)
///     .run_trace(&trace)
///     .unwrap();
/// assert_eq!(result.mispredictions(), 0);
/// ```
///
/// [`Simulation::run`] accepts any [`TraceSource`], consuming it in
/// structure-of-arrays chunks so memory stays O(chunk); the record
/// sequence — and therefore every count, interval window, and
/// observation — is identical whichever source delivers the trace.
pub struct Simulation<'a, P: ConditionalPredictor + ?Sized> {
    predictor: &'a mut P,
    interval_insts: u64,
    chunk_records: usize,
    cancel: Option<&'a mut dyn FnMut() -> bool>,
    observer: Option<&'a mut dyn FnMut(u64, bool, bool)>,
    checkpoint_every: u64,
    checkpoint_sink: Option<&'a mut dyn FnMut(SimCheckpoint)>,
    kill_after: Option<u64>,
    resume: Option<SimCheckpoint>,
    recorder: Option<&'a mut FlightRecorder>,
}

impl<P: ConditionalPredictor + ?Sized> fmt::Debug for Simulation<'_, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("predictor", &self.predictor.name())
            .field("interval_insts", &self.interval_insts)
            .field("chunk_records", &self.chunk_records)
            .field("cancel", &self.cancel.is_some())
            .field("observer", &self.observer.is_some())
            .field("checkpoint_every", &self.checkpoint_every)
            .field("kill_after", &self.kill_after)
            .field("resume", &self.resume.as_ref().map(|c| c.records))
            .field("recorder", &self.recorder.is_some())
            .finish()
    }
}

impl<'a, P: ConditionalPredictor + ?Sized> Simulation<'a, P> {
    /// Starts a run of `predictor` with no intervals, no cancellation,
    /// and no observer.
    pub fn new(predictor: &'a mut P) -> Self {
        Self {
            predictor,
            interval_insts: 0,
            chunk_records: CANCEL_CHECK_RECORDS as usize,
            cancel: None,
            observer: None,
            checkpoint_every: 0,
            checkpoint_sink: None,
            kill_after: None,
            resume: None,
            recorder: None,
        }
    }

    /// Collects windowed counts every `interval_insts` committed
    /// instructions (`0`, the default, disables collection).
    ///
    /// Window boundaries land on record boundaries, so a window may
    /// overrun `interval_insts` by at most one record; the final
    /// (possibly short) window is always emitted when any instructions
    /// remain. Summing the interval counts always reproduces the totals
    /// in the [`SimResult`].
    pub fn intervals(mut self, interval_insts: u64) -> Self {
        self.interval_insts = interval_insts;
        self
    }

    /// Overrides the chunk size in records (default
    /// [`CANCEL_CHECK_RECORDS`]). Results never depend on the chunk
    /// size; only memory footprint and cancellation latency do.
    pub fn chunk_records(mut self, n: usize) -> Self {
        self.chunk_records = n.max(1);
        self
    }

    /// Installs a cooperative cancellation hook, polled at every chunk
    /// boundary; a `true` return abandons the run with
    /// [`SimulationError::Aborted`].
    ///
    /// This is the mechanism behind the sweep engine's per-job
    /// wall-clock timeout — the watchdog raises a flag, the simulation
    /// loop observes it here. Cancellation never alters results: a run
    /// that completes is bit-identical to an uncancellable one.
    pub fn cancel(mut self, cancelled: &'a mut dyn FnMut() -> bool) -> Self {
        self.cancel = Some(cancelled);
        self
    }

    /// Installs a per-branch observation hook: `observe(pc, taken,
    /// mispredicted)` fires for every conditional branch *after* its
    /// prediction resolves — the attribution tap behind
    /// [`crate::obs::H2pTable`]. Observation never feeds back into the
    /// predictor, so observed and unobserved runs produce identical
    /// results.
    pub fn observer(mut self, observe: &'a mut dyn FnMut(u64, bool, bool)) -> Self {
        self.observer = Some(observe);
        self
    }

    /// Emits a [`SimCheckpoint`] into `sink` at the first chunk boundary
    /// at or after every multiple of `every` records (`0` disables).
    ///
    /// The checkpoint carries the full accounting state plus the
    /// predictor's serialized [`crate::ckpt::Restorable`] state, captured
    /// at the same instant. Predictors without the checkpointing
    /// capability never fire the sink. Checkpointing never alters
    /// results: the snapshot is taken between chunks, where the
    /// predictor holds no in-flight prediction.
    pub fn checkpoint_every(mut self, every: u64, sink: &'a mut dyn FnMut(SimCheckpoint)) -> Self {
        self.checkpoint_every = every;
        self.checkpoint_sink = Some(sink);
        self
    }

    /// Fault injection: abandon the run with [`SimulationError::Killed`]
    /// at the first chunk boundary at or after `records` processed
    /// records — before any checkpoint due at the same boundary, so the
    /// kill always loses whatever progress followed the last snapshot,
    /// exactly like a real process death.
    pub fn kill_after(mut self, records: u64) -> Self {
        self.kill_after = Some(records);
        self
    }

    /// Installs a [`FlightRecorder`]: every record (conditional or not)
    /// is pushed into the ring as it commits, with the predictor's
    /// [`last_provenance`] sampled between predict and update for
    /// conditionals.
    ///
    /// A recorded run drives the predictor per-record (provenance is
    /// per-prediction scratch a fused batch kernel would overwrite), but
    /// by the [`predict_batch`] contract the per-record and batched
    /// drives are observationally identical — recording never changes a
    /// count, a window, or an observation.
    ///
    /// [`last_provenance`]: ConditionalPredictor::last_provenance
    /// [`predict_batch`]: ConditionalPredictor::predict_batch
    pub fn recorder(mut self, recorder: &'a mut FlightRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Resumes accounting from a previously captured checkpoint: the
    /// first `ckpt.records` source records are skipped (without touching
    /// the predictor) and all counters, interval windows, and the open
    /// window continue from the checkpointed values.
    ///
    /// Restoring the *predictor* from `ckpt.predictor` is the caller's
    /// responsibility, before the run starts — the split keeps a failed
    /// blob restore (torn file) recoverable by rebuilding the predictor,
    /// which `Simulation` cannot do.
    pub fn resume_from(mut self, ckpt: SimCheckpoint) -> Self {
        self.resume = Some(ckpt);
        self
    }

    /// Runs the simulation over `source`, chunk by chunk, to
    /// completion.
    ///
    /// # Errors
    ///
    /// [`SimulationError::Aborted`] when the cancellation hook fires,
    /// [`SimulationError::Source`] when the source fails to decode.
    pub fn run<S: TraceSource + ?Sized>(
        self,
        source: &mut S,
    ) -> Result<(SimResult, Vec<IntervalPoint>), SimulationError> {
        let Simulation {
            predictor,
            interval_insts,
            chunk_records,
            mut cancel,
            mut observer,
            checkpoint_every,
            mut checkpoint_sink,
            kill_after,
            resume,
            mut recorder,
        } = self;
        let trace_name = source.name().to_owned();
        let mut conditional_branches = 0u64;
        let mut mispredictions = 0u64;
        let mut instructions = 0u64;
        let mut intervals = Vec::new();
        let mut window = IntervalPoint {
            instructions: 0,
            conditional_branches: 0,
            mispredictions: 0,
        };
        let mut records_done = 0u64;
        let mut chunk = TraceChunk::with_capacity(chunk_records);
        if let Some(ckpt) = resume {
            // Fast-forward the source past the already-processed prefix.
            // The records are decoded and discarded — the predictor was
            // restored by the caller and must not see them again.
            let mut to_skip = ckpt.records;
            while to_skip > 0 {
                let ask = (to_skip as usize).min(chunk_records);
                let n = source.fill_chunk(&mut chunk, ask)?;
                if n == 0 {
                    return Err(SimulationError::Resume(
                        "checkpoint lies beyond the end of the trace",
                    ));
                }
                to_skip -= n as u64;
            }
            records_done = ckpt.records;
            conditional_branches = ckpt.conditional_branches;
            mispredictions = ckpt.mispredictions;
            instructions = ckpt.instructions;
            intervals = ckpt.intervals;
            window = ckpt.window;
        }
        // Next checkpoint boundary strictly after `records`; `u64::MAX`
        // (never reached) when checkpointing is disabled.
        let next_ckpt_after = |records: u64| {
            records
                .checked_div(checkpoint_every)
                .map_or(u64::MAX, |n| (n + 1) * checkpoint_every)
        };
        let mut next_ckpt = next_ckpt_after(records_done);
        // The batched drive needs exclusive use of the predictor's
        // per-prediction scratch (fused kernels overwrite it every
        // record), so a recorded run — which samples `last_provenance`
        // between predict and update — always drives per-record. So do
        // predictors whose capability descriptor declares no batch
        // advantage. Both drives are observationally identical by the
        // `predict_batch` contract.
        let use_batch = recorder.is_none() && predictor.capabilities().batch_preferred;
        let mut miss = vec![false; if use_batch { chunk_records } else { 0 }];
        loop {
            let n = source.fill_chunk(&mut chunk, chunk_records)?;
            if n == 0 {
                break;
            }
            // The chunk boundary is the cancellation point: with the
            // default chunk size this polls at the same record indices
            // the per-record loop historically did, and a completed
            // trace is never aborted by a trailing poll.
            if let Some(cancelled) = cancel.as_mut() {
                if cancelled() {
                    return Err(SimulationError::Aborted);
                }
            }
            let pcs = &chunk.pcs()[..n];
            let targets = &chunk.targets()[..n];
            let kinds = &chunk.kinds()[..n];
            let takens = &chunk.takens()[..n];
            let gaps = &chunk.inst_gaps()[..n];
            if use_batch {
                if miss.len() < n {
                    miss.resize(n, false);
                }
                // Drive the predictor over maximal same-kind runs: one
                // (virtual) batch call per run instead of two per record.
                // The fused predict+update kernel records each branch's
                // misprediction flag; nothing downstream of the flags feeds
                // back into the predictor, so the accounting can run as a
                // separate scalar pass without changing any count.
                let mut i = 0;
                while i < n {
                    let conditional = kinds[i].is_conditional();
                    let mut j = i + 1;
                    while j < n && kinds[j].is_conditional() == conditional {
                        j += 1;
                    }
                    if conditional {
                        predictor.predict_batch(
                            &pcs[i..j],
                            &targets[i..j],
                            &takens[i..j],
                            &mut miss[i..j],
                        );
                    } else {
                        predictor.update_batch(&chunk, i, j);
                    }
                    i = j;
                }
                if interval_insts == 0 && observer.is_none() {
                    // No windows and no observer: totals reduce to three
                    // straight-line sums, amortized once per chunk.
                    for i in 0..n {
                        instructions += u64::from(gaps[i]) + 1;
                        if kinds[i].is_conditional() {
                            conditional_branches += 1;
                            mispredictions += u64::from(miss[i]);
                        }
                    }
                } else {
                    for i in 0..n {
                        let insts = u64::from(gaps[i]) + 1;
                        instructions += insts;
                        window.instructions += insts;
                        if kinds[i].is_conditional() {
                            conditional_branches += 1;
                            window.conditional_branches += 1;
                            if miss[i] {
                                mispredictions += 1;
                                window.mispredictions += 1;
                            }
                            if let Some(observe) = observer.as_mut() {
                                observe(pcs[i], takens[i], miss[i]);
                            }
                        }
                        // Interval windows close on exact record boundaries;
                        // this check cannot move to the chunk boundary without
                        // breaking byte-identity with the materialized path.
                        if interval_insts > 0 && window.instructions >= interval_insts {
                            intervals.push(window);
                            window = IntervalPoint {
                                instructions: 0,
                                conditional_branches: 0,
                                mispredictions: 0,
                            };
                        }
                    }
                }
            } else if interval_insts == 0 && observer.is_none() && recorder.is_none() {
                // Per-record fast path (cheap predictors that declare no
                // batch advantage): one pass, no miss buffer, no
                // segmentation — the shape of `simulate_stream`.
                for i in 0..n {
                    instructions += u64::from(gaps[i]) + 1;
                    if kinds[i].is_conditional() {
                        conditional_branches += 1;
                        let guess = predictor.predict(pcs[i]);
                        mispredictions += u64::from(guess != takens[i]);
                        predictor.update(pcs[i], takens[i], targets[i]);
                    } else {
                        predictor.track_other(&chunk.record(i));
                    }
                }
            } else {
                // Per-record full path: intervals, observer, and flight
                // recorder in one pass. Provenance is sampled between
                // predict and update, the only point where it is valid.
                for i in 0..n {
                    let insts = u64::from(gaps[i]) + 1;
                    instructions += insts;
                    window.instructions += insts;
                    if kinds[i].is_conditional() {
                        conditional_branches += 1;
                        window.conditional_branches += 1;
                        let guess = predictor.predict(pcs[i]);
                        let missed = guess != takens[i];
                        if let Some(rec) = recorder.as_mut() {
                            rec.record(FlightEntry {
                                index: records_done + i as u64,
                                pc: pcs[i],
                                kind: kinds[i],
                                predicted: guess,
                                outcome: takens[i],
                                provenance: predictor.last_provenance(),
                            });
                        }
                        predictor.update(pcs[i], takens[i], targets[i]);
                        if missed {
                            mispredictions += 1;
                            window.mispredictions += 1;
                        }
                        if let Some(observe) = observer.as_mut() {
                            observe(pcs[i], takens[i], missed);
                        }
                    } else {
                        if let Some(rec) = recorder.as_mut() {
                            // Non-conditionals are never predicted; the
                            // entry mirrors the committed direction and
                            // carries no provenance.
                            rec.record(FlightEntry {
                                index: records_done + i as u64,
                                pc: pcs[i],
                                kind: kinds[i],
                                predicted: takens[i],
                                outcome: takens[i],
                                provenance: None,
                            });
                        }
                        predictor.track_other(&chunk.record(i));
                    }
                    if interval_insts > 0 && window.instructions >= interval_insts {
                        intervals.push(window);
                        window = IntervalPoint {
                            instructions: 0,
                            conditional_branches: 0,
                            mispredictions: 0,
                        };
                    }
                }
            }
            records_done += n as u64;
            // The kill fires before any checkpoint due at this boundary:
            // a real SIGKILL never leaves a snapshot of the work it
            // destroys.
            if kill_after.is_some_and(|k| records_done >= k) {
                return Err(SimulationError::Killed(records_done));
            }
            if records_done >= next_ckpt {
                next_ckpt = next_ckpt_after(records_done);
                if let Some(sink) = checkpoint_sink.as_mut() {
                    if let Some(restorable) = predictor.checkpointing() {
                        let mut w = StateWriter::new();
                        restorable.save_state(&mut w);
                        sink(SimCheckpoint {
                            records: records_done,
                            instructions,
                            conditional_branches,
                            mispredictions,
                            intervals: intervals.clone(),
                            window,
                            predictor: w.into_bytes(),
                        });
                    }
                }
            }
        }
        if interval_insts > 0 && window.instructions > 0 {
            intervals.push(window);
        }
        let result = SimResult {
            trace_name,
            predictor_name: predictor.name().into_owned(),
            conditional_branches,
            mispredictions,
            instructions,
        };
        Ok((result, intervals))
    }

    /// [`Simulation::run`] over an already-materialized trace (replayed
    /// in chunks; no copy of the records is made).
    ///
    /// # Errors
    ///
    /// [`SimulationError::Aborted`] when the cancellation hook fires;
    /// replay cannot fail to decode.
    pub fn run_trace(
        self,
        trace: &Trace,
    ) -> Result<(SimResult, Vec<IntervalPoint>), SimulationError> {
        self.run(&mut ReplaySource::new(trace))
    }
}

/// Runs `predictor` over a stream of records without collecting a trace
/// first; useful for direct-from-disk simulation via
/// [`bfbp_trace::TraceReader`].
pub fn simulate_stream<P, I>(predictor: &mut P, trace_name: &str, records: I) -> SimResult
where
    P: ConditionalPredictor + ?Sized,
    I: IntoIterator<Item = BranchRecord>,
{
    let mut conditional_branches = 0u64;
    let mut mispredictions = 0u64;
    let mut instructions = 0u64;
    for record in records {
        instructions += record.instructions();
        if record.kind.is_conditional() {
            conditional_branches += 1;
            let guess = predictor.predict(record.pc);
            if guess != record.taken {
                mispredictions += 1;
            }
            predictor.update(record.pc, record.taken, record.target);
        } else {
            predictor.track_other(&record);
        }
    }
    SimResult {
        trace_name: trace_name.to_owned(),
        predictor_name: predictor.name().into_owned(),
        conditional_branches,
        mispredictions,
        instructions,
    }
}

/// Arithmetic-mean MPKI over a set of results — the aggregate the paper
/// reports ("average (arithmetic mean) MPKI").
///
/// Returns 0 for an empty slice.
pub fn mean_mpki(results: &[SimResult]) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().map(SimResult::mpki).sum::<f64>() / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::StaticPredictor;
    use bfbp_trace::record::{BranchKind, BranchRecord};

    fn trace_tnt() -> Trace {
        Trace::new(
            "tnt",
            vec![
                BranchRecord::cond(0x10, 0x20, true, 4),  // 5 insts
                BranchRecord::cond(0x10, 0x20, false, 4), // 5 insts
                BranchRecord::uncond(0x30, 0x40, BranchKind::Call, 9), // 10 insts
                BranchRecord::cond(0x10, 0x20, true, 4),  // 5 insts
            ],
        )
    }

    #[test]
    fn static_taken_counts_mispredictions() {
        let mut p = StaticPredictor::always_taken();
        let result = simulate(&mut p, &trace_tnt());
        assert_eq!(result.conditional_branches(), 3);
        assert_eq!(result.mispredictions(), 1);
        assert_eq!(result.instructions(), 25);
        assert!((result.mpki() - 40.0).abs() < 1e-9);
        assert!((result.accuracy() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn static_not_taken_mirror() {
        let mut p = StaticPredictor::always_not_taken();
        let result = simulate(&mut p, &trace_tnt());
        assert_eq!(result.mispredictions(), 2);
    }

    #[test]
    fn stream_and_trace_agree() {
        let trace = trace_tnt();
        let mut p1 = StaticPredictor::always_taken();
        let mut p2 = StaticPredictor::always_taken();
        let a = simulate(&mut p1, &trace);
        let b = simulate_stream(&mut p2, "tnt", trace.records().iter().copied());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_trace_result() {
        let mut p = StaticPredictor::always_taken();
        let result = simulate(&mut p, &Trace::new("empty", vec![]));
        assert_eq!(result.mpki(), 0.0);
        assert_eq!(result.accuracy(), 1.0);
    }

    #[test]
    fn intervals_sum_to_totals() {
        let trace = trace_tnt();
        let mut p = StaticPredictor::always_taken();
        let (result, intervals) = Simulation::new(&mut p)
            .intervals(10)
            .run_trace(&trace)
            .unwrap();
        // 25 instructions in windows of >= 10: records of 5,5,10,5 insts
        // close windows at 10 and 20, leaving a 5-inst tail.
        assert_eq!(intervals.len(), 3);
        assert_eq!(
            intervals.iter().map(|iv| iv.instructions).sum::<u64>(),
            result.instructions()
        );
        assert_eq!(
            intervals.iter().map(|iv| iv.mispredictions).sum::<u64>(),
            result.mispredictions()
        );
        assert_eq!(
            intervals
                .iter()
                .map(|iv| iv.conditional_branches)
                .sum::<u64>(),
            result.conditional_branches()
        );

        // interval_insts = 0 disables collection.
        let mut p2 = StaticPredictor::always_taken();
        let (r2, none) = Simulation::new(&mut p2).run_trace(&trace).unwrap();
        assert_eq!(r2, result);
        assert!(none.is_empty());
    }

    #[test]
    fn cancellable_simulation_aborts_and_completes() {
        let trace = trace_tnt();
        // Immediate cancellation aborts before any record.
        let mut p = StaticPredictor::always_taken();
        let mut always = || true;
        assert!(matches!(
            Simulation::new(&mut p)
                .cancel(&mut always)
                .run_trace(&trace),
            Err(SimulationError::Aborted)
        ));
        // A never-firing signal reproduces the plain path exactly.
        let mut p1 = StaticPredictor::always_taken();
        let mut p2 = StaticPredictor::always_taken();
        let plain = Simulation::new(&mut p1)
            .intervals(10)
            .run_trace(&trace)
            .unwrap();
        let mut never = || false;
        let cancellable = Simulation::new(&mut p2)
            .intervals(10)
            .cancel(&mut never)
            .run_trace(&trace)
            .unwrap();
        assert_eq!(plain, cancellable);
        assert!(!format!("{SimulationAborted}").is_empty());
        assert!(!format!("{}", SimulationError::Aborted).is_empty());
    }

    #[test]
    fn observed_run_matches_plain_and_sees_every_branch() {
        let trace = trace_tnt();
        let mut p1 = StaticPredictor::always_taken();
        let mut p2 = StaticPredictor::always_taken();
        let plain = Simulation::new(&mut p1)
            .intervals(10)
            .run_trace(&trace)
            .unwrap();
        let mut seen = Vec::new();
        let mut observe = |pc, taken, mispredicted| seen.push((pc, taken, mispredicted));
        let observed = Simulation::new(&mut p2)
            .intervals(10)
            .observer(&mut observe)
            .run_trace(&trace)
            .unwrap();
        assert_eq!(plain, observed);
        assert_eq!(
            seen,
            vec![
                (0x10, true, false),
                (0x10, false, true),
                (0x10, true, false)
            ]
        );
    }

    #[test]
    fn chunk_size_never_changes_results() {
        let spec = bfbp_trace::synth::suite::find("FP2").unwrap();
        let trace = spec.generate_len(2500);
        let mut p0 = StaticPredictor::always_taken();
        let reference = Simulation::new(&mut p0)
            .intervals(500)
            .run_trace(&trace)
            .unwrap();
        for chunk in [1usize, 7, 100, 2500, 10_000] {
            let mut p = StaticPredictor::always_taken();
            let chunked = Simulation::new(&mut p)
                .intervals(500)
                .chunk_records(chunk)
                .run_trace(&trace)
                .unwrap();
            assert_eq!(chunked, reference, "chunk_records = {chunk}");
        }
    }

    #[test]
    fn streamed_synthetic_source_matches_replay() {
        let spec = bfbp_trace::synth::suite::find("SPEC03").unwrap();
        let trace = spec.generate_len(3000);
        let mut p1 = StaticPredictor::always_taken();
        let replayed = Simulation::new(&mut p1)
            .intervals(400)
            .run_trace(&trace)
            .unwrap();
        let mut p2 = StaticPredictor::always_taken();
        let streamed = Simulation::new(&mut p2)
            .intervals(400)
            .run(&mut spec.stream_len(3000))
            .unwrap();
        assert_eq!(replayed, streamed);
    }

    #[test]
    fn mean_mpki_averages() {
        let a = SimResult::from_counts("a", "p", 100, 10, 1000); // 10 MPKI
        let b = SimResult::from_counts("b", "p", 100, 30, 1000); // 30 MPKI
        assert!((mean_mpki(&[a, b]) - 20.0).abs() < 1e-9);
        assert_eq!(mean_mpki(&[]), 0.0);
    }

    #[test]
    fn display_mentions_names() {
        let r = SimResult::from_counts("tr", "pred", 10, 1, 100);
        let s = format!("{r}");
        assert!(s.contains("tr") && s.contains("pred"));
    }

    #[test]
    fn tracking_receives_non_conditionals() {
        struct Counter {
            tracked: usize,
        }
        impl ConditionalPredictor for Counter {
            fn name(&self) -> std::borrow::Cow<'_, str> {
                "counter".into()
            }
            fn predict(&mut self, _: u64) -> bool {
                true
            }
            fn update(&mut self, _: u64, _: bool, _: u64) {}
            fn track_other(&mut self, _: &BranchRecord) {
                self.tracked += 1;
            }
            fn storage(&self) -> crate::storage::StorageBreakdown {
                crate::storage::StorageBreakdown::new()
            }
        }
        let mut p = Counter { tracked: 0 };
        simulate(&mut p, &trace_tnt());
        assert_eq!(p.tracked, 1);
    }
}
