//! # bfbp-sim
//!
//! Trace-driven branch-predictor simulation: the predictor trait (a Rust
//! rendering of the CBP-4 simulation contract), the commit-order
//! simulation loop with MPKI accounting, a suite runner, a predictor
//! registry with a parallel sweep engine, and hardware storage
//! accounting.
//!
//! ```
//! use bfbp_sim::predictor::StaticPredictor;
//! use bfbp_sim::simulate::simulate;
//! use bfbp_trace::record::{BranchRecord, Trace};
//!
//! let trace = Trace::new("t", vec![BranchRecord::cond(0x40, 0x80, true, 4)]);
//! let mut predictor = StaticPredictor::always_taken();
//! let result = simulate(&mut predictor, &trace);
//! assert_eq!(result.mispredictions(), 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ckpt;
pub mod engine;
pub mod fault;
pub mod forensics;
pub mod journal;
pub mod obs;
pub mod predictor;
pub mod registry;
pub mod runner;
pub mod service;
pub mod simulate;
pub mod storage;
pub mod tune;
pub mod wire;

pub use ckpt::{
    CodecError, JobCheckpoint, Restorable, SimCheckpoint, StateReader, StateWriter, CKPT_MAGIC,
};
pub use engine::{
    sweep, sweep_inputs, sweep_serial, JobOutcome, JobRecord, JobStatus, RetryPolicy, RunSummary,
    StreamedTrace, SweepError, SweepOptions, SweepReport, TraceInput,
};
pub use fault::{Fault, FaultPlan, FaultPlanParseError};
pub use forensics::{
    chrome_trace, parse_events, parse_json, read_events, EventsError, JsonError, JsonValue,
    ParsedEvent,
};
pub use journal::{Journal, JournalError};
pub use obs::{
    postmortem_json, saturation_fraction, BranchStats, Event, EventJournal, FlightEntry,
    FlightRecorder, H2pTable, Histogram, JobObs, Metrics, PredictorIntrospect, Progress,
    EVENTS_SCHEMA, H2P_TOP_N, METRICS_SCHEMA, POSTMORTEM_SCHEMA,
};
pub use predictor::{ConditionalPredictor, PredictorCaps, Provenance};
pub use registry::{BuildError, ParamValue, Params, PredictorRegistry, PredictorSpec};
pub use service::{ServeClient, ServeError, ServeOptions, Server, ServerHandle};
pub use simulate::{
    mean_mpki, simulate, IntervalPoint, SimResult, Simulation, SimulationAborted, SimulationError,
};
pub use storage::StorageBreakdown;
pub use tune::{
    tune, Candidate, Dimension, FrontierPoint, RungOutcome, SearchSpace, TuneError, TuneOptions,
    TuneReport, FRONTIER_SCHEMA, TUNE_MAGIC,
};
pub use wire::{
    ErrorCode, Frame, FrameKind, FrameReader, PredictorInfo, SessionStats, WireError, MAX_FRAME,
    WIRE_PROTOCOL,
};
