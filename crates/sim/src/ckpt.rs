//! Crash-consistent checkpoint codec: the `bfbp-ckpt/1` binary format.
//!
//! Long-horizon jobs (hundreds of millions of records) must survive
//! preemption without restarting from record zero. This module provides
//! the three layers that make that possible:
//!
//! 1. a tiny fixed-width, little-endian, length-prefixed state codec
//!    ([`StateWriter`] / [`StateReader`]) with no external dependencies;
//! 2. the [`Restorable`] capability trait — an object-safe
//!    snapshot/restore surface that every registry predictor implements
//!    (exposed through
//!    [`ConditionalPredictor::checkpointing`](crate::predictor::ConditionalPredictor::checkpointing));
//! 3. the on-disk `bfbp-ckpt/1` container: a magic header, an opaque
//!    payload, and a length + FNV-1a checksum trailer, written
//!    atomically (temp file + rename) so a reader can never observe a
//!    torn file under the final name.
//!
//! The format is deliberately strict on read: any truncation, checksum
//! mismatch, version skew, or structural surprise surfaces as a
//! [`CodecError`], and callers degrade to a from-zero re-run — a bad
//! checkpoint may cost time, never correctness.

use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::simulate::IntervalPoint;

/// Magic line opening every checkpoint file; doubles as the format
/// version. Any layout change must bump the `/1`.
pub const CKPT_MAGIC: &[u8; 12] = b"bfbp-ckpt/1\n";

/// FNV-1a 64-bit hash over `bytes` — the same hash the trace format and
/// journal use, so the whole repo shares one checksum story.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Why a checkpoint payload could not be decoded.
///
/// Every variant means the same thing to a caller — the checkpoint is
/// unusable, fall back to a from-zero run — but the distinction matters
/// for the quarantine journal event.
#[derive(Debug)]
pub enum CodecError {
    /// The byte stream ended before the value it promised.
    Truncated,
    /// The file does not start with [`CKPT_MAGIC`] (wrong file, or a
    /// future format version).
    BadMagic,
    /// The payload checksum does not match the trailer (torn or
    /// corrupted write).
    ChecksumMismatch,
    /// A length prefix or discriminant is structurally impossible.
    Malformed(&'static str),
    /// The underlying file could not be read.
    Io(std::io::Error),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "checkpoint truncated"),
            CodecError::BadMagic => write!(f, "not a bfbp-ckpt/1 file"),
            CodecError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CodecError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            CodecError::Io(e) => write!(f, "checkpoint io error: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// Serializer for predictor and simulation state: fixed-width
/// little-endian scalars, `u64` length prefixes on all variable-size
/// values.
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The serialized bytes so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i8` as its two's-complement byte.
    pub fn i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    /// Writes a little-endian two's-complement `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian two's-complement `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (the format is 64-bit everywhere).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a `bool` as one byte (`0` / `1`).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes a length-prefixed `i8` slice (weight tables).
    pub fn i8_slice(&mut self, v: &[i8]) {
        self.u64(v.len() as u64);
        self.buf.extend(v.iter().map(|&x| x as u8));
    }

    /// Writes a length-prefixed `i32` slice.
    pub fn i32_slice(&mut self, v: &[i32]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.i32(x);
        }
    }

    /// Writes a length-prefixed `u32` slice.
    pub fn u32_slice(&mut self, v: &[u32]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u32(x);
        }
    }

    /// Writes a length-prefixed `u64` slice.
    pub fn u64_slice(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x);
        }
    }
}

/// Deserializer matching [`StateWriter`], byte for byte.
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Reads from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte has been consumed — structural drift
    /// (e.g. a predictor built with different parameters) must not pass
    /// silently.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Malformed("trailing bytes"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `i8`.
    pub fn i8(&mut self) -> Result<i8, CodecError> {
        Ok(self.u8()? as i8)
    }

    /// Reads a little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32, CodecError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` (stored as `u64`); fails if it cannot fit.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::Malformed("usize overflow"))
    }

    /// Reads a `bool`; any byte other than `0`/`1` is malformed.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Malformed("bool out of range")),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| CodecError::Malformed("invalid utf-8"))
    }

    /// Reads a length-prefixed `i8` slice into a fresh vector.
    pub fn i8_vec(&mut self) -> Result<Vec<i8>, CodecError> {
        Ok(self.bytes()?.iter().map(|&b| b as i8).collect())
    }

    /// Reads a length-prefixed `i8` slice into `out`, which must already
    /// have the expected length (catches parameter drift).
    pub fn i8_into(&mut self, out: &mut [i8]) -> Result<(), CodecError> {
        let n = self.usize()?;
        if n != out.len() {
            return Err(CodecError::Malformed("i8 slice length mismatch"));
        }
        let src = self.take(n)?;
        for (dst, &b) in out.iter_mut().zip(src) {
            *dst = b as i8;
        }
        Ok(())
    }

    /// Reads a length-prefixed `i32` slice.
    pub fn i32_vec(&mut self) -> Result<Vec<i32>, CodecError> {
        let n = self.usize()?;
        if self.remaining() < n.saturating_mul(4) {
            return Err(CodecError::Truncated);
        }
        (0..n).map(|_| self.i32()).collect()
    }

    /// Reads a length-prefixed `u32` slice.
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, CodecError> {
        let n = self.usize()?;
        if self.remaining() < n.saturating_mul(4) {
            return Err(CodecError::Truncated);
        }
        (0..n).map(|_| self.u32()).collect()
    }

    /// Reads a length-prefixed `u64` slice.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, CodecError> {
        let n = self.usize()?;
        if self.remaining() < n.saturating_mul(8) {
            return Err(CodecError::Truncated);
        }
        (0..n).map(|_| self.u64()).collect()
    }
}

/// The snapshot/restore capability: a predictor (or component) that can
/// serialize its complete mutable state and later restore it exactly.
///
/// The contract is *bit-exactness*: after `save_state` → `load_state`
/// into a freshly built instance of the same configuration, every
/// subsequent `predict`/`update`/`introspect` result must be identical
/// to the original instance's — including observability counters, RNG
/// streams, and derived caches. Per-prediction scratch that is fully
/// overwritten by the next `predict` call may be skipped.
pub trait Restorable {
    /// Appends this value's complete mutable state to `w`.
    fn save_state(&self, w: &mut StateWriter);

    /// Restores state previously produced by [`Restorable::save_state`]
    /// on an identically configured instance.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when the bytes are truncated or
    /// structurally incompatible (e.g. a table length differs); the
    /// value may be left partially modified and must be discarded.
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError>;
}

/// Simulation-level accounting captured at a chunk boundary, together
/// with the predictor snapshot taken at the same instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimCheckpoint {
    /// Trace records fully processed.
    pub records: u64,
    /// Instructions accounted so far.
    pub instructions: u64,
    /// Conditional branches predicted so far.
    pub conditional_branches: u64,
    /// Mispredictions so far.
    pub mispredictions: u64,
    /// Interval windows already closed.
    pub intervals: Vec<IntervalPoint>,
    /// The open (partial) interval window.
    pub window: IntervalPoint,
    /// The predictor's serialized [`Restorable`] state.
    pub predictor: Vec<u8>,
}

impl SimCheckpoint {
    /// Serializes the checkpoint into `w`.
    pub fn encode_into(&self, w: &mut StateWriter) {
        w.u64(self.records);
        w.u64(self.instructions);
        w.u64(self.conditional_branches);
        w.u64(self.mispredictions);
        w.u64(self.intervals.len() as u64);
        for p in self.intervals.iter().chain(std::iter::once(&self.window)) {
            w.u64(p.instructions);
            w.u64(p.conditional_branches);
            w.u64(p.mispredictions);
        }
        w.bytes(&self.predictor);
    }

    /// Decodes a checkpoint serialized by [`SimCheckpoint::encode_into`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or malformed input.
    pub fn decode(r: &mut StateReader<'_>) -> Result<Self, CodecError> {
        let records = r.u64()?;
        let instructions = r.u64()?;
        let conditional_branches = r.u64()?;
        let mispredictions = r.u64()?;
        let n = r.usize()?;
        if r.remaining() < n.saturating_mul(24) {
            return Err(CodecError::Truncated);
        }
        let mut point = || -> Result<IntervalPoint, CodecError> {
            Ok(IntervalPoint {
                instructions: r.u64()?,
                conditional_branches: r.u64()?,
                mispredictions: r.u64()?,
            })
        };
        let intervals = (0..n).map(|_| point()).collect::<Result<Vec<_>, _>>()?;
        let window = point()?;
        let predictor = r.bytes()?.to_vec();
        Ok(Self {
            records,
            instructions,
            conditional_branches,
            mispredictions,
            intervals,
            window,
            predictor,
        })
    }
}

/// One job's complete on-disk checkpoint: identity (so a stale file for
/// a different matrix or predictor can never restore into the wrong
/// job), the simulation snapshot, and opaque engine-level observer
/// state (H2P attribution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobCheckpoint {
    /// The sweep matrix fingerprint this checkpoint belongs to.
    pub matrix_id: u64,
    /// Job index within the matrix.
    pub job_index: u64,
    /// Predictor display name, as a secondary identity check.
    pub predictor: String,
    /// Trace name, as a secondary identity check.
    pub trace: String,
    /// The mid-run simulation snapshot.
    pub sim: SimCheckpoint,
    /// Serialized engine-level observer state (empty when observability
    /// is off).
    pub observer: Vec<u8>,
}

impl JobCheckpoint {
    /// Serializes this checkpoint to the `bfbp-ckpt/1` payload layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.u64(self.matrix_id);
        w.u64(self.job_index);
        w.str(&self.predictor);
        w.str(&self.trace);
        self.sim.encode_into(&mut w);
        w.bytes(&self.observer);
        w.into_bytes()
    }

    /// Decodes a payload produced by [`JobCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = StateReader::new(bytes);
        let ckpt = Self {
            matrix_id: r.u64()?,
            job_index: r.u64()?,
            predictor: r.str()?.to_owned(),
            trace: r.str()?.to_owned(),
            sim: SimCheckpoint::decode(&mut r)?,
            observer: r.bytes()?.to_vec(),
        };
        r.finish()?;
        Ok(ckpt)
    }

    /// Writes this checkpoint to `path` atomically.
    ///
    /// # Errors
    ///
    /// Returns the underlying io error; callers treat a failed write as
    /// "no checkpoint taken" (the previous file, if any, stays valid).
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        write_ckpt_file(path, &self.to_bytes())
    }

    /// Reads and fully validates a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when the file is missing, torn,
    /// corrupted, or not a `bfbp-ckpt/1` document.
    pub fn read_from(path: &Path) -> Result<Self, CodecError> {
        Self::from_bytes(&read_ckpt_file(path)?)
    }
}

/// Frames `payload` as a `bfbp-ckpt/1` file and writes it atomically: a
/// temporary sibling is written, flushed, and renamed over `path`, so a
/// crash mid-write leaves either the old file or no file — never a torn
/// one under the final name.
///
/// # Errors
///
/// Returns the underlying io error (the temporary file is removed).
pub fn write_ckpt_file(path: &Path, payload: &[u8]) -> std::io::Result<()> {
    let mut bytes = Vec::with_capacity(CKPT_MAGIC.len() + payload.len() + 16);
    bytes.extend_from_slice(CKPT_MAGIC);
    bytes.extend_from_slice(payload);
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&fnv1a(payload).to_le_bytes());
    write_atomic(path, &bytes)
}

/// Writes `bytes` to `path` atomically — a temporary sibling is written,
/// synced, and renamed over `path`, so a crash mid-write leaves either
/// the old file or no file under the final name, never a torn one. The
/// crash-consistency idiom shared by checkpoint files and postmortem
/// dumps.
///
/// # Errors
///
/// Returns the underlying io error (the temporary file is removed).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    fs::create_dir_all(dir)?;
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let result = (|| {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Reads a `bfbp-ckpt/1` file and returns its validated payload.
///
/// # Errors
///
/// Returns a [`CodecError`] when the file cannot be read, the magic or
/// trailer is wrong, or the checksum does not match.
pub fn read_ckpt_file(path: &Path) -> Result<Vec<u8>, CodecError> {
    let bytes = fs::read(path)?;
    let body = bytes.strip_prefix(CKPT_MAGIC).ok_or(CodecError::BadMagic)?;
    if body.len() < 16 {
        return Err(CodecError::Truncated);
    }
    let (payload, trailer) = body.split_at(body.len() - 16);
    let stored_len = u64::from_le_bytes(trailer[..8].try_into().unwrap());
    let stored_sum = u64::from_le_bytes(trailer[8..].try_into().unwrap());
    if stored_len != payload.len() as u64 {
        return Err(CodecError::Truncated);
    }
    if stored_sum != fnv1a(payload) {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok(payload.to_vec())
}

/// Moves an unusable checkpoint aside (same directory,
/// `.quarantined` suffix) so it can be inspected post-mortem without
/// ever being retried. Best-effort: if the rename fails the file is
/// removed instead, and if that fails too the caller still proceeds
/// from zero.
pub fn quarantine_ckpt(path: &Path) -> Option<PathBuf> {
    let mut name = path.file_name()?.to_os_string();
    name.push(".quarantined");
    let target = path.with_file_name(name);
    if fs::rename(path, &target).is_ok() {
        Some(target)
    } else {
        let _ = fs::remove_file(path);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = StateWriter::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.i8(-5);
        w.i32(-123_456);
        w.i64(i64::MIN + 1);
        w.usize(99);
        w.bool(true);
        w.bool(false);
        w.str("bfbp");
        w.i8_slice(&[-1, 0, 1, 127, -128]);
        w.u32_slice(&[1, 2, 3]);
        w.u64_slice(&[u64::MAX]);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i8().unwrap(), -5);
        assert_eq!(r.i32().unwrap(), -123_456);
        assert_eq!(r.i64().unwrap(), i64::MIN + 1);
        assert_eq!(r.usize().unwrap(), 99);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "bfbp");
        assert_eq!(r.i8_vec().unwrap(), vec![-1, 0, 1, 127, -128]);
        assert_eq!(r.u32_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.u64_vec().unwrap(), vec![u64::MAX]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_detected_not_panicking() {
        let mut w = StateWriter::new();
        w.u64_slice(&[1, 2, 3, 4]);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = StateReader::new(&bytes[..cut]);
            assert!(r.u64_vec().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn bogus_length_prefix_does_not_allocate_absurdly() {
        let mut w = StateWriter::new();
        w.u64(u64::MAX); // a length prefix promising 2^64 elements
        let bytes = w.into_bytes();
        assert!(StateReader::new(&bytes).u64_vec().is_err());
        assert!(StateReader::new(&bytes).u32_vec().is_err());
        assert!(StateReader::new(&bytes).bytes().is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = StateWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        r.u8().unwrap();
        assert!(r.finish().is_err());
        r.u8().unwrap();
        r.finish().unwrap();
    }

    fn sample_job_ckpt() -> JobCheckpoint {
        JobCheckpoint {
            matrix_id: 0xABCD_EF01,
            job_index: 17,
            predictor: "bf-tage".into(),
            trace: "SERV1".into(),
            sim: SimCheckpoint {
                records: 123_456,
                instructions: 900_000,
                conditional_branches: 100_000,
                mispredictions: 4_242,
                intervals: vec![
                    IntervalPoint {
                        instructions: 500_000,
                        conditional_branches: 60_000,
                        mispredictions: 2_000,
                    },
                    IntervalPoint {
                        instructions: 300_000,
                        conditional_branches: 30_000,
                        mispredictions: 1_999,
                    },
                ],
                window: IntervalPoint {
                    instructions: 100_000,
                    conditional_branches: 10_000,
                    mispredictions: 243,
                },
                predictor: vec![9, 8, 7, 6],
            },
            observer: vec![1, 2, 3],
        }
    }

    #[test]
    fn job_checkpoint_round_trips_in_memory() {
        let ckpt = sample_job_ckpt();
        let back = JobCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn file_round_trip_and_every_torn_prefix_rejected() {
        let dir = std::env::temp_dir().join(format!("bfbp-ckpt-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("job-17.ckpt");
        let ckpt = sample_job_ckpt();
        ckpt.write_to(&path).unwrap();
        assert_eq!(JobCheckpoint::read_from(&path).unwrap(), ckpt);

        // Every strict prefix must fail validation (never a wrong read).
        let full = fs::read(&path).unwrap();
        for cut in [0, 1, CKPT_MAGIC.len(), full.len() / 2, full.len() - 1] {
            fs::write(&path, &full[..cut]).unwrap();
            assert!(JobCheckpoint::read_from(&path).is_err(), "prefix {cut}");
        }
        // A single flipped payload byte must fail the checksum.
        let mut flipped = full.clone();
        flipped[CKPT_MAGIC.len() + 3] ^= 0x40;
        fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            JobCheckpoint::read_from(&path),
            Err(CodecError::ChecksumMismatch)
        ));

        // Quarantine moves the bad file aside.
        let q = quarantine_ckpt(&path).unwrap();
        assert!(!path.exists());
        assert!(q.exists());
        assert!(q.to_string_lossy().ends_with(".quarantined"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
