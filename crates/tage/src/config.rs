//! TAGE configurations: history-length series and per-table geometries
//! for 4–15 tagged tables inside a common ~51 KiB tagged-storage budget
//! (matching the paper's "sized to fit into the storage budget required
//! in the baseline ISL-TAGE with corresponding number of tables").

use std::error::Error;
use std::fmt;

/// The conventional ISL-TAGE 15-table history-length series (footnote 2
/// of the paper). A conventional `n`-table TAGE uses its first `n`
/// entries, so e.g. 10 tables reach 195 branches and 7 tables 67.
pub const CONVENTIONAL_LENGTHS_15: [usize; 15] = [
    3, 8, 12, 17, 33, 35, 67, 97, 138, 195, 330, 517, 1193, 1741, 1930,
];

/// The BF-TAGE history-length series in *compressed* BF-GHR entries
/// (§VI-C): "The best set of history lengths found for a 10 tagged table
/// BF-TAGE in our experiments is {3, 8, 14, 26, 40, 54, 70, 94, 118,
/// 142}".
pub const BIAS_FREE_LENGTHS_10: [usize; 10] = [3, 8, 14, 26, 40, 54, 70, 94, 118, 142];

/// Geometry of one tagged table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableGeometry {
    /// log2 of the entry count.
    pub log_size: u32,
    /// Partial tag width in bits.
    pub tag_bits: u32,
    /// History length used to index this table (raw branches for
    /// conventional TAGE, compressed BF-GHR entries for BF-TAGE).
    pub history_len: usize,
}

/// A complete TAGE configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TageConfig {
    /// Base (bimodal) table log2 size.
    pub base_log_size: u32,
    /// Tagged table geometries, shortest history first.
    pub tables: Vec<TableGeometry>,
    /// Period (in updates) of the alternating usefulness-bit reset.
    pub u_reset_period: u64,
    /// Path-history bits mixed into table indices.
    pub path_bits: u32,
}

/// Error returned for unsupported table counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedTables(pub usize);

impl fmt::Display for UnsupportedTables {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported tagged-table count {}", self.0)
    }
}

impl Error for UnsupportedTables {}

/// Per-table (log_size, tag_bits) presets keeping every table count near
/// the same ~51 KiB tagged budget. Indexed by `n_tables`.
fn geometry_preset(n_tables: usize) -> Option<(Vec<u32>, Vec<u32>)> {
    let (sizes, tags): (&[u32], &[u32]) = match n_tables {
        4 => (&[13, 13, 13, 12], &[9, 10, 11, 12]),
        5 => (&[13, 13, 12, 12, 12], &[9, 10, 11, 12, 13]),
        6 => (&[13, 12, 12, 12, 12, 11], &[8, 9, 10, 11, 12, 13]),
        7 => (&[12, 12, 12, 12, 12, 12, 11], &[8, 9, 10, 11, 12, 13, 14]),
        8 => (
            &[12, 12, 12, 12, 12, 11, 11, 11],
            &[8, 8, 9, 10, 11, 12, 13, 14],
        ),
        9 => (
            &[12, 12, 12, 12, 11, 11, 11, 11, 11],
            &[7, 8, 9, 10, 11, 12, 13, 14, 15],
        ),
        // Table I of the paper: Kentries 2,2,2,4,4,4,2,2,1,1 and tag
        // widths 7,7,8,9,10,11,11,13,14,15.
        10 => (
            &[11, 11, 11, 12, 12, 12, 11, 11, 10, 10],
            &[7, 7, 8, 9, 10, 11, 11, 13, 14, 15],
        ),
        11 => (
            &[11, 11, 11, 12, 12, 12, 11, 11, 10, 10, 10],
            &[7, 7, 8, 9, 10, 10, 11, 12, 13, 14, 15],
        ),
        12 => (
            &[11, 11, 11, 11, 12, 12, 11, 11, 10, 10, 10, 10],
            &[7, 7, 8, 8, 9, 10, 11, 12, 13, 13, 14, 15],
        ),
        13 => (
            &[11, 11, 11, 11, 11, 12, 12, 11, 11, 10, 10, 10, 10],
            &[7, 7, 8, 8, 9, 10, 10, 11, 12, 13, 13, 14, 15],
        ),
        14 => (
            &[11, 11, 11, 11, 12, 12, 11, 11, 11, 10, 10, 10, 10, 10],
            &[7, 7, 8, 8, 9, 9, 10, 11, 12, 12, 13, 14, 14, 15],
        ),
        15 => (
            &[11, 11, 11, 11, 11, 11, 11, 11, 11, 11, 10, 10, 10, 10, 10],
            &[7, 7, 8, 8, 9, 10, 10, 11, 12, 12, 13, 13, 14, 15, 15],
        ),
        _ => return None,
    };
    Some((sizes.to_vec(), tags.to_vec()))
}

impl TageConfig {
    /// A conventional ISL-TAGE-style configuration with `n_tables` tagged
    /// tables (4..=15), indexed with the first `n_tables` entries of
    /// [`CONVENTIONAL_LENGTHS_15`].
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedTables`] for table counts outside 4..=15.
    pub fn conventional(n_tables: usize) -> Result<Self, UnsupportedTables> {
        let (sizes, tags) = geometry_preset(n_tables).ok_or(UnsupportedTables(n_tables))?;
        let tables = sizes
            .into_iter()
            .zip(tags)
            .zip(CONVENTIONAL_LENGTHS_15.iter().copied())
            .map(|((log_size, tag_bits), history_len)| TableGeometry {
                log_size,
                tag_bits,
                history_len,
            })
            .collect();
        Ok(Self {
            base_log_size: 14,
            tables,
            u_reset_period: 1 << 16,
            path_bits: 16,
        })
    }

    /// A BF-TAGE configuration with `n_tables` tagged tables (4..=10),
    /// indexed with the first `n_tables` entries of
    /// [`BIAS_FREE_LENGTHS_10`] (compressed BF-GHR entries). Table
    /// geometries match the conventional configuration of the same table
    /// count, so budgets are directly comparable.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedTables`] for table counts outside 4..=10.
    pub fn bias_free(n_tables: usize) -> Result<Self, UnsupportedTables> {
        if !(4..=10).contains(&n_tables) {
            return Err(UnsupportedTables(n_tables));
        }
        let (sizes, tags) = geometry_preset(n_tables).ok_or(UnsupportedTables(n_tables))?;
        let tables = sizes
            .into_iter()
            .zip(tags)
            .zip(BIAS_FREE_LENGTHS_10.iter().copied())
            .map(|((log_size, tag_bits), history_len)| TableGeometry {
                log_size,
                tag_bits,
                history_len,
            })
            .collect();
        Ok(Self {
            base_log_size: 14,
            tables,
            u_reset_period: 1 << 16,
            path_bits: 16,
        })
    }

    /// Number of tagged tables.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// Longest history length used.
    pub fn max_history(&self) -> usize {
        self.tables.iter().map(|t| t.history_len).max().unwrap_or(0)
    }

    /// Total tagged-table storage in bits (excluding the base predictor).
    pub fn tagged_bits(&self) -> u64 {
        self.tables
            .iter()
            .map(|t| (1u64 << t.log_size) * (3 + u64::from(t.tag_bits) + 2))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_lengths_match_paper_footnote() {
        let c = TageConfig::conventional(15).unwrap();
        let lengths: Vec<usize> = c.tables.iter().map(|t| t.history_len).collect();
        assert_eq!(lengths, CONVENTIONAL_LENGTHS_15.to_vec());
        assert_eq!(c.max_history(), 1930);
    }

    #[test]
    fn conventional_ten_reaches_195() {
        let c = TageConfig::conventional(10).unwrap();
        assert_eq!(c.max_history(), 195);
    }

    #[test]
    fn seventh_table_uses_about_70_bits_in_both() {
        // §VI-C: "BF-TAGE and conventional TAGE both index the 7th tagged
        // table using about 70 history bits."
        let conv = TageConfig::conventional(7).unwrap();
        let bf = TageConfig::bias_free(7).unwrap();
        assert_eq!(conv.tables[6].history_len, 67);
        assert_eq!(bf.tables[6].history_len, 70);
    }

    #[test]
    fn bias_free_lengths_match_paper() {
        let c = TageConfig::bias_free(10).unwrap();
        let lengths: Vec<usize> = c.tables.iter().map(|t| t.history_len).collect();
        assert_eq!(lengths, BIAS_FREE_LENGTHS_10.to_vec());
    }

    #[test]
    fn budgets_are_comparable_across_table_counts() {
        // All presets must land in the same ~51 KiB window so Figure 10's
        // "same storage" comparison is honest.
        for n in 4..=15 {
            let c = TageConfig::conventional(n).unwrap();
            let kib = c.tagged_bits() as f64 / 8192.0;
            assert!(
                (40.0..60.0).contains(&kib),
                "{n} tables: {kib:.1} KiB tagged storage"
            );
        }
    }

    #[test]
    fn matched_budget_between_conventional_and_bias_free() {
        for n in 4..=10 {
            let conv = TageConfig::conventional(n).unwrap();
            let bf = TageConfig::bias_free(n).unwrap();
            assert_eq!(conv.tagged_bits(), bf.tagged_bits(), "{n} tables");
        }
    }

    #[test]
    fn unsupported_counts_error() {
        assert!(TageConfig::conventional(3).is_err());
        assert!(TageConfig::conventional(16).is_err());
        assert!(TageConfig::bias_free(11).is_err());
        assert!(TageConfig::bias_free(3).is_err());
        let e = TageConfig::conventional(99).unwrap_err();
        assert!(format!("{e}").contains("99"));
    }

    #[test]
    fn lengths_form_increasing_series() {
        for n in 4..=15 {
            let c = TageConfig::conventional(n).unwrap();
            for w in c.tables.windows(2) {
                assert!(w[0].history_len < w[1].history_len);
            }
        }
        for n in 4..=10 {
            let c = TageConfig::bias_free(n).unwrap();
            for w in c.tables.windows(2) {
                assert!(w[0].history_len < w[1].history_len);
            }
        }
    }
}
