//! Partially tagged predictor tables — the `Ti` components of TAGE
//! (Figure 6 of the paper).
//!
//! Each entry holds a 3-bit signed prediction counter, a partial tag and
//! a 2-bit usefulness counter. Index and tag values are computed by the
//! surrounding predictor (conventional TAGE folds its global history;
//! BF-TAGE folds the bias-free history), keeping this module reusable by
//! both.

use bfbp_sim::ckpt::{CodecError, Restorable, StateReader, StateWriter};

/// One tagged entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaggedEntry {
    /// 3-bit signed prediction counter in `[-4, 3]`; sign = direction.
    pub ctr: i8,
    /// Partial tag.
    pub tag: u16,
    /// 2-bit usefulness counter.
    pub useful: u8,
}

impl TaggedEntry {
    /// Direction predicted by the counter.
    pub fn prediction(&self) -> bool {
        self.ctr >= 0
    }

    /// Whether the counter is in a weak (newly allocated) state.
    pub fn is_weak(&self) -> bool {
        self.ctr == 0 || self.ctr == -1
    }
}

/// A tagged table with `2^log_size` entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaggedTable {
    entries: Vec<TaggedEntry>,
    log_size: u32,
    tag_bits: u32,
    history_len: usize,
}

impl TaggedTable {
    /// Creates a table.
    ///
    /// # Panics
    ///
    /// Panics if `log_size` is 0 or greater than 24, or `tag_bits` is 0 or
    /// greater than 16.
    pub fn new(log_size: u32, tag_bits: u32, history_len: usize) -> Self {
        assert!((1..=24).contains(&log_size), "log_size must be 1..=24");
        assert!((1..=16).contains(&tag_bits), "tag_bits must be 1..=16");
        Self {
            entries: vec![TaggedEntry::default(); 1 << log_size],
            log_size,
            tag_bits,
            history_len,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always `false` (tables are non-empty by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// log2 of the entry count.
    pub fn log_size(&self) -> u32 {
        self.log_size
    }

    /// Partial tag width in bits.
    pub fn tag_bits(&self) -> u32 {
        self.tag_bits
    }

    /// The (raw or compressed) history length this table is indexed with.
    pub fn history_len(&self) -> usize {
        self.history_len
    }

    /// Masks an index into range.
    pub fn mask_index(&self, raw: u64) -> usize {
        (raw & ((1u64 << self.log_size) - 1)) as usize
    }

    /// Masks a tag to this table's width.
    pub fn mask_tag(&self, raw: u64) -> u16 {
        (raw & ((1u64 << self.tag_bits) - 1)) as u16
    }

    /// Returns the entry at `index` if its tag matches.
    pub fn lookup(&self, index: usize, tag: u16) -> Option<&TaggedEntry> {
        let e = &self.entries[index];
        (e.tag == tag).then_some(e)
    }

    /// Returns the entry at `index` unconditionally (for update paths
    /// that already verified the tag).
    pub fn entry_mut(&mut self, index: usize) -> &mut TaggedEntry {
        &mut self.entries[index]
    }

    /// Immutable entry access.
    pub fn entry(&self, index: usize) -> &TaggedEntry {
        &self.entries[index]
    }

    /// Trains the prediction counter at `index` toward `taken` (3-bit
    /// saturating). Branchless: the ±1 step plus clamp compiles to
    /// straight-line min/max, which the mispredict-heavy update path
    /// rewards.
    pub fn train(&mut self, index: usize, taken: bool) {
        let e = &mut self.entries[index];
        let delta = (taken as i8) * 2 - 1;
        e.ctr = (e.ctr + delta).clamp(-4, 3);
    }

    /// Adjusts the usefulness counter at `index` (2-bit saturating,
    /// branchless like [`TaggedTable::train`]).
    pub fn touch_useful(&mut self, index: usize, up: bool) {
        let e = &mut self.entries[index];
        let delta = (up as i8) * 2 - 1;
        e.useful = (e.useful as i8 + delta).clamp(0, 3) as u8;
    }

    /// Allocates the entry at `index` for `tag`, weakly biased toward
    /// `taken`, with zero usefulness.
    pub fn allocate(&mut self, index: usize, tag: u16, taken: bool) {
        self.entries[index] = TaggedEntry {
            ctr: if taken { 0 } else { -1 },
            tag,
            useful: 0,
        };
    }

    /// Ages usefulness counters: clears the given bit (0 = LSB, 1 = MSB)
    /// of every `useful` counter, as TAGE's periodic reset does.
    pub fn reset_useful_bit(&mut self, bit: u32) {
        let mask = !(1u8 << bit);
        for e in &mut self.entries {
            e.useful &= mask;
        }
    }

    /// Storage in bits: (3 + tag + 2) per entry.
    pub fn storage_bits(&self) -> u64 {
        self.entries.len() as u64 * (3 + u64::from(self.tag_bits) + 2)
    }
}

impl Restorable for TaggedTable {
    fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.entries.len());
        for e in &self.entries {
            w.i8(e.ctr);
            w.u16(e.tag);
            w.u8(e.useful);
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        if r.usize()? != self.entries.len() {
            return Err(CodecError::Malformed("tagged table size mismatch"));
        }
        for e in &mut self.entries {
            *e = TaggedEntry {
                ctr: r.i8()?,
                tag: r.u16()?,
                useful: r.u8()?,
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_requires_tag_match() {
        let mut t = TaggedTable::new(4, 8, 10);
        assert!(t.lookup(3, 0).is_some(), "zeroed entries match tag 0");
        t.allocate(3, 0xAB, true);
        assert!(t.lookup(3, 0xAB).is_some());
        assert!(t.lookup(3, 0xAC).is_none());
    }

    #[test]
    fn allocate_sets_weak_counter() {
        let mut t = TaggedTable::new(4, 8, 10);
        t.allocate(0, 1, true);
        assert_eq!(t.entry(0).ctr, 0);
        assert!(t.entry(0).prediction());
        assert!(t.entry(0).is_weak());
        t.allocate(0, 1, false);
        assert_eq!(t.entry(0).ctr, -1);
        assert!(!t.entry(0).prediction());
        assert!(t.entry(0).is_weak());
    }

    #[test]
    fn counter_saturates_three_bit() {
        let mut t = TaggedTable::new(4, 8, 10);
        for _ in 0..10 {
            t.train(0, true);
        }
        assert_eq!(t.entry(0).ctr, 3);
        for _ in 0..20 {
            t.train(0, false);
        }
        assert_eq!(t.entry(0).ctr, -4);
        assert!(!t.entry(0).is_weak());
    }

    #[test]
    fn useful_saturates_two_bit() {
        let mut t = TaggedTable::new(4, 8, 10);
        for _ in 0..10 {
            t.touch_useful(0, true);
        }
        assert_eq!(t.entry(0).useful, 3);
        for _ in 0..10 {
            t.touch_useful(0, false);
        }
        assert_eq!(t.entry(0).useful, 0);
    }

    #[test]
    fn reset_useful_clears_requested_bit() {
        let mut t = TaggedTable::new(2, 8, 10);
        for i in 0..4 {
            t.entry_mut(i).useful = 3;
        }
        t.reset_useful_bit(0);
        assert!(t.entries.iter().all(|e| e.useful == 2));
        t.reset_useful_bit(1);
        assert!(t.entries.iter().all(|e| e.useful == 0));
    }

    #[test]
    fn masks_fit_table_geometry() {
        let t = TaggedTable::new(10, 9, 33);
        assert_eq!(t.mask_index(u64::MAX), (1 << 10) - 1);
        assert_eq!(t.mask_tag(u64::MAX), (1 << 9) - 1);
        assert_eq!(t.len(), 1024);
        assert_eq!(t.history_len(), 33);
    }

    #[test]
    fn storage_formula() {
        let t = TaggedTable::new(10, 9, 33);
        assert_eq!(t.storage_bits(), 1024 * (3 + 9 + 2));
    }
}
