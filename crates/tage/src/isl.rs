//! ISL-TAGE composition: TAGE plus the loop predictor and statistical
//! corrector side components (Seznec, CBP-3).
//!
//! The wrapper is generic over any [`TageEngine`], so the same loop/SC
//! components serve both the conventional baseline (`Isl<Tage>`) and the
//! paper's BF-ISL-TAGE ("BF-ISL-TAGE inherits the SC and the IUM
//! components from the ISL-TAGE", §VI-C).
//!
//! **Immediate Update Mimicker (IUM).** The IUM of ISL-TAGE replays
//! not-yet-committed in-flight predictions so the predictor behaves as if
//! it were updated immediately. Our trace-driven simulation *is* updated
//! immediately — every prediction is followed by its commit before the
//! next prediction — so the IUM is exactly the identity and is not
//! materialized. This substitution is recorded in `DESIGN.md` §1.

use bfbp_predictors::counter::CounterTable;
use bfbp_predictors::history::mix64;
use bfbp_predictors::loop_pred::LoopPredictor;
use bfbp_sim::ckpt::{CodecError, Restorable, StateReader, StateWriter};
use bfbp_sim::predictor::{ConditionalPredictor, Provenance};
use bfbp_sim::storage::StorageBreakdown;
use bfbp_trace::record::BranchRecord;

use crate::tage::{ProviderStats, Tage};

/// Interface a TAGE-style predictor exposes so ISL side components can
/// wrap it.
///
/// [`Restorable`] is a supertrait so the `Isl<T>` wrapper can serialize
/// the engine it wraps as part of its own checkpoint.
pub trait TageEngine: ConditionalPredictor + Restorable {
    /// Counter value of the provider entry of the most recent prediction
    /// (0 when the base predictor provided).
    fn last_provider_ctr(&self) -> i8;

    /// Provider statistics accumulated so far.
    fn provider_stats(&self) -> &ProviderStats;

    /// Clears provider statistics.
    fn reset_provider_stats(&mut self);
}

/// The statistical corrector: learns contexts in which the TAGE
/// prediction is statistically wrong and inverts it there.
///
/// A compact rendition of ISL-TAGE's SC: a table of 6-bit signed
/// agreement counters indexed by (PC, predicted direction, provider
/// counter value). A strongly negative counter means "in this context
/// TAGE is usually wrong" and flips the prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatisticalCorrector {
    table: CounterTable,
    mask: u64,
    invert_threshold: i32,
}

impl StatisticalCorrector {
    /// Creates an SC with `2^log_size` 6-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `log_size` is 0 or greater than 24.
    pub fn new(log_size: u32) -> Self {
        assert!((1..=24).contains(&log_size));
        Self {
            table: CounterTable::new(1 << log_size, 6),
            mask: (1u64 << log_size) - 1,
            invert_threshold: -8,
        }
    }

    fn index(&self, pc: u64, tage_pred: bool, provider_ctr: i8) -> usize {
        let key = (pc >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (u64::from(tage_pred) << 61)
            ^ ((provider_ctr as u64 & 0xF) << 52);
        (mix64(key) & self.mask) as usize
    }

    /// Possibly inverts `tage_pred` for this context.
    pub fn correct(&self, pc: u64, tage_pred: bool, provider_ctr: i8) -> bool {
        let idx = self.index(pc, tage_pred, provider_ctr);
        if self.table.get(idx) <= self.invert_threshold {
            !tage_pred
        } else {
            tage_pred
        }
    }

    /// Trains the context counter: did TAGE's (uncorrected) prediction
    /// agree with the outcome?
    pub fn train(&mut self, pc: u64, tage_pred: bool, provider_ctr: i8, taken: bool) {
        let idx = self.index(pc, tage_pred, provider_ctr);
        self.table.train(idx, tage_pred == taken);
    }

    /// Storage in bits.
    pub fn storage_bits(&self) -> u64 {
        self.table.storage_bits()
    }
}

impl Restorable for StatisticalCorrector {
    fn save_state(&self, w: &mut StateWriter) {
        self.table.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        self.table.load_state(r)
    }
}

impl TageEngine for Tage {
    fn last_provider_ctr(&self) -> i8 {
        Tage::last_provider_ctr(self)
    }

    fn provider_stats(&self) -> &ProviderStats {
        Tage::provider_stats(self)
    }

    fn reset_provider_stats(&mut self) {
        Tage::reset_provider_stats(self)
    }
}

/// ISL composition: a TAGE engine plus loop predictor and statistical
/// corrector.
#[derive(Debug, Clone)]
pub struct Isl<T> {
    tage: T,
    name: String,
    loop_pred: LoopPredictor,
    sc: StatisticalCorrector,
    sc_enabled: bool,
    last_tage_pred: bool,
    last_provider_ctr: i8,
    last_final_pred: bool,
    last_loop_used: bool,
}

impl<T: TageEngine> Isl<T> {
    /// Wraps a TAGE engine with the paper's side components: a 64-entry
    /// loop predictor and a statistical corrector.
    pub fn new(tage: T) -> Self {
        Self {
            name: format!("isl-{}", tage.name()),
            tage,
            loop_pred: LoopPredictor::paper_64_entry(),
            sc: StatisticalCorrector::new(12),
            sc_enabled: true,
            last_tage_pred: false,
            last_provider_ctr: 0,
            last_final_pred: false,
            last_loop_used: false,
        }
    }

    /// Wraps a TAGE engine with the loop predictor only — the paper's
    /// Figure 8 baseline is "TAGE ... does not include the statistical
    /// corrector (SC) and the immediate update mimicker (IUM)" but keeps
    /// a same-sized loop predictor.
    pub fn without_sc(tage: T) -> Self {
        Self {
            sc_enabled: false,
            ..Self::new(tage)
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &T {
        &self.tage
    }

    /// Mutable access to the wrapped engine.
    pub fn engine_mut(&mut self) -> &mut T {
        &mut self.tage
    }
}

impl<T: TageEngine> ConditionalPredictor for Isl<T> {
    fn name(&self) -> std::borrow::Cow<'_, str> {
        std::borrow::Cow::Borrowed(&self.name)
    }

    fn predict(&mut self, pc: u64) -> bool {
        let tage_pred = self.tage.predict(pc);
        self.last_tage_pred = tage_pred;
        self.last_provider_ctr = self.tage.last_provider_ctr();
        let corrected = if self.sc_enabled {
            self.sc.correct(pc, tage_pred, self.last_provider_ctr)
        } else {
            tage_pred
        };
        let (final_pred, loop_used) = match self.loop_pred.predict(pc) {
            Some(lp) if lp.confident => (lp.taken, true),
            _ => (corrected, false),
        };
        self.last_final_pred = final_pred;
        self.last_loop_used = loop_used;
        final_pred
    }

    fn update(&mut self, pc: u64, taken: bool, target: u64) {
        let mispredicted = self.last_final_pred != taken;
        self.loop_pred.update(pc, taken, mispredicted);
        self.sc
            .train(pc, self.last_tage_pred, self.last_provider_ctr, taken);
        self.tage.update(pc, taken, target);
    }

    fn track_other(&mut self, record: &BranchRecord) {
        self.tage.track_other(record);
    }

    fn storage(&self) -> StorageBreakdown {
        let mut s = self.tage.storage();
        s.push_nested("loop", &self.loop_pred.storage());
        if self.sc_enabled {
            s.push("statistical corrector", self.sc.storage_bits());
        }
        s
    }

    fn last_provenance(&self) -> Option<Provenance> {
        if self.last_loop_used {
            // A confident loop prediction overrode the TAGE side; the
            // TAGE (post-SC) prediction is the alternate.
            return Some(Provenance {
                component: "loop",
                prediction: self.last_final_pred,
                alternate: Some(self.last_tage_pred),
                ..Default::default()
            });
        }
        if self.last_final_pred != self.last_tage_pred {
            // The statistical corrector inverted TAGE's prediction.
            return Some(Provenance {
                component: "sc",
                prediction: self.last_final_pred,
                alternate: Some(self.last_tage_pred),
                counter: Some(i32::from(self.last_provider_ctr)),
                ..Default::default()
            });
        }
        self.tage
            .last_provenance()
            .or(Some(Provenance::of("tage", self.last_final_pred)))
    }

    fn introspection(&self) -> Option<&dyn bfbp_sim::obs::PredictorIntrospect> {
        // Delegate to the wrapped engine: the TAGE-side counters are
        // where the insight is; the loop/SC components are stateless by
        // comparison.
        self.tage.introspection()
    }

    fn checkpointing(&mut self) -> Option<&mut dyn Restorable> {
        Some(self)
    }
}

impl<T: TageEngine> Restorable for Isl<T> {
    fn save_state(&self, w: &mut StateWriter) {
        // The `last_*` fields are per-prediction scratch (rewritten by
        // the next `predict` before `update` reads them); the engine,
        // loop table, and SC counters are the durable state.
        self.tage.save_state(w);
        self.loop_pred.save_state(w);
        self.sc.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        self.tage.load_state(r)?;
        self.loop_pred.load_state(r)?;
        self.sc.load_state(r)
    }
}

impl<T: TageEngine> TageEngine for Isl<T> {
    fn last_provider_ctr(&self) -> i8 {
        self.last_provider_ctr
    }

    fn provider_stats(&self) -> &ProviderStats {
        self.tage.provider_stats()
    }

    fn reset_provider_stats(&mut self) {
        self.tage.reset_provider_stats();
    }
}

/// Conventional ISL-TAGE: `Isl<Tage>` with `n` tagged tables.
pub type IslTage = Isl<Tage>;

/// Creates a conventional ISL-TAGE with `n` tagged tables.
///
/// # Panics
///
/// Panics if `n` is outside 4..=15.
pub fn isl_tage(n_tables: usize) -> IslTage {
    Isl::new(Tage::with_tables(n_tables))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfbp_sim::simulate::simulate;
    use bfbp_trace::synth::builder::ProgramBuilder;

    #[test]
    fn loop_component_fixes_constant_trip_loops() {
        // A constant-trip loop: TAGE alone mispredicts some exits during
        // warm-up and whenever history aliasing hits; the loop predictor
        // nails the exit after a few observations.
        let mut b = ProgramBuilder::new(5);
        b.add_loop_kernel(37, 2, 1); // long trip strains plain history
        b.add_noise_run(12, (0.4, 0.6), 1); // noise disturbs global history
        let trace = b.build().emit("loops", 60_000, 3);

        let mut plain = Tage::with_tables(5);
        let mut isl = isl_tage(5);
        let rp = simulate(&mut plain, &trace);
        let ri = simulate(&mut isl, &trace);
        assert!(
            ri.mpki() <= rp.mpki() * 1.02,
            "isl {:.3} vs plain {:.3}",
            ri.mpki(),
            rp.mpki()
        );
    }

    #[test]
    fn sc_inverts_consistently_wrong_contexts() {
        let mut sc = StatisticalCorrector::new(8);
        // TAGE always predicts taken, branch always not taken.
        for _ in 0..40 {
            sc.train(0x40, true, 3, false);
        }
        assert!(!sc.correct(0x40, true, 3));
        // Different context untouched.
        assert!(sc.correct(0x44, true, 3));
    }

    #[test]
    fn sc_does_not_invert_agreeing_contexts() {
        let mut sc = StatisticalCorrector::new(8);
        for _ in 0..40 {
            sc.train(0x40, true, 3, true);
        }
        assert!(sc.correct(0x40, true, 3));
    }

    #[test]
    fn name_and_storage_include_components() {
        let isl = isl_tage(7);
        assert!(isl.name().contains("isl"));
        let storage = isl.storage();
        let labels: Vec<&str> = storage.items().iter().map(|i| i.label()).collect();
        assert!(labels.iter().any(|l| l.contains("loop")));
        assert!(labels.iter().any(|l| l.contains("statistical")));
    }

    #[test]
    fn engine_accessors_expose_stats() {
        let mut isl = isl_tage(4);
        for i in 0..100u64 {
            isl.predict(0x40 + (i % 3) * 4);
            isl.update(0x40 + (i % 3) * 4, i % 2 == 0, 0);
        }
        assert_eq!(isl.provider_stats().total(), 100);
        isl.reset_provider_stats();
        assert_eq!(isl.engine().provider_stats().total(), 0);
        let _ = isl.engine_mut();
    }
}
