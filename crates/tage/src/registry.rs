//! Registry hooks: registers the conventional-history TAGE baselines
//! with a [`PredictorRegistry`].

use bfbp_sim::registry::{BuildError, Params, PredictorRegistry};

use crate::config::TageConfig;
use crate::isl::Isl;
use crate::tage::Tage;

fn conventional_config(params: &Params) -> Result<TageConfig, BuildError> {
    let tables = params.usize("tables")?;
    TageConfig::conventional(tables).map_err(|e| BuildError::invalid("tables", e.to_string()))
}

/// Registers `tage` (conventional TAGE, default 10 tagged tables) and
/// `isl-tage` (TAGE + loop predictor, optional statistical corrector,
/// default 15 tables as in the paper's Figure 8 baseline).
///
/// # Panics
///
/// Panics if either name is already registered.
pub fn register(registry: &mut PredictorRegistry) {
    registry.register(
        "tage",
        "conventional TAGE over raw global history",
        Params::new().set("tables", 10usize),
        |p| Ok(Box::new(Tage::new(&conventional_config(p)?))),
    );
    registry.register(
        "isl-tage",
        "ISL-TAGE: TAGE + loop predictor + statistical corrector (sc=false drops the SC)",
        Params::new().set("tables", 15usize).set("sc", true),
        |p| {
            let tage = Tage::new(&conventional_config(p)?);
            Ok(Box::new(if p.bool("sc")? {
                Isl::new(tage)
            } else {
                Isl::without_sc(tage)
            }))
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> PredictorRegistry {
        let mut r = PredictorRegistry::new();
        register(&mut r);
        r
    }

    #[test]
    fn defaults_build_the_paper_baselines() {
        let r = registry();
        let tage = r.build("tage", &Params::new()).unwrap();
        assert_eq!(tage.name(), "tage-10t");
        let isl = r.build("isl-tage", &Params::new()).unwrap();
        assert_eq!(isl.name(), "isl-tage-15t");
        assert!(isl.storage().total_bits() > 0);
    }

    #[test]
    fn table_count_is_validated() {
        let r = registry();
        assert!(r
            .build("tage", &Params::new().set("tables", 3usize))
            .is_err());
        assert!(r
            .build("isl-tage", &Params::new().set("tables", 99usize))
            .is_err());
    }

    #[test]
    fn sc_flag_switches_composition() {
        let r = registry();
        let with_sc = r.build("isl-tage", &Params::new()).unwrap();
        let without = r
            .build("isl-tage", &Params::new().set("sc", false))
            .unwrap();
        // Same name either way (composition, not geometry), but the SC's
        // table disappears from the storage breakdown.
        assert_eq!(with_sc.name(), without.name());
        assert!(with_sc.storage().total_bits() > without.storage().total_bits());
    }
}
