//! The TAGE engine: provider/alternate selection, usefulness management,
//! allocation — plus the conventional (raw global history) TAGE
//! predictor built on it.
//!
//! The engine ([`TageCore`]) is deliberately agnostic about *how* table
//! indices and tags are computed: conventional TAGE folds its raw global
//! history incrementally, while BF-TAGE (in `bfbp-core`) hashes its
//! compressed bias-free history. Both share the provider logic below,
//! mirroring the paper's "the remaining mechanism of the prediction
//! computation stays the same as in \[4\]" (§V-B3).

use bfbp_predictors::bimodal::Bimodal;
use bfbp_predictors::history::{mix64, ManagedHistory, PathHistory};
use bfbp_sim::ckpt::{CodecError, Restorable, StateReader, StateWriter};
use bfbp_sim::obs::{Metrics, PredictorIntrospect};
use bfbp_sim::predictor::{ConditionalPredictor, Provenance};
use bfbp_sim::storage::StorageBreakdown;
use bfbp_trace::record::BranchRecord;
use bfbp_trace::source::TraceChunk;

use crate::config::TageConfig;
use crate::table::TaggedTable;

/// Which component provided a prediction: `None` = base predictor,
/// `Some(i)` = tagged table `i` (0-based, shortest history first).
pub type Provider = Option<usize>;

/// Per-component provider statistics (Figure 12 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProviderStats {
    counts: Vec<u64>,
}

impl ProviderStats {
    fn new(n_tables: usize) -> Self {
        Self {
            counts: vec![0; n_tables + 1],
        }
    }

    fn record(&mut self, provider: Provider) {
        match provider {
            None => self.counts[0] += 1,
            Some(i) => self.counts[i + 1] += 1,
        }
    }

    /// Predictions provided by the base predictor.
    pub fn base_count(&self) -> u64 {
        self.counts[0]
    }

    /// Predictions provided by tagged table `i` (0-based).
    pub fn table_count(&self, i: usize) -> u64 {
        self.counts[i + 1]
    }

    /// Total recorded predictions.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Percentage of predictions provided by tagged table `i` — the
    /// quantity plotted in Figure 12 ("% of Branch-Hits").
    pub fn table_percent(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        100.0 * self.table_count(i) as f64 / total as f64
    }

    /// Number of tagged tables covered.
    pub fn n_tables(&self) -> usize {
        self.counts.len() - 1
    }
}

/// Scratch state carried from a prediction to its update.
///
/// The `indices`/`tags` buffers are owned here and recycled across
/// predictions (cleared and refilled by [`TageCore::predict`], handed
/// back after [`TageCore::update`]), so the steady-state loop performs
/// no heap allocation.
#[derive(Debug, Clone, Default)]
struct PredContext {
    indices: Vec<usize>,
    tags: Vec<u16>,
    provider: Provider,
    alt: Provider,
    provider_pred: bool,
    alt_pred: bool,
    final_pred: bool,
    provider_weak: bool,
}

/// The shared TAGE engine over externally computed indices and tags.
#[derive(Debug, Clone)]
pub struct TageCore {
    base: Bimodal,
    tables: Vec<TaggedTable>,
    use_alt_on_na: i32,
    tick: u64,
    u_reset_period: u64,
    reset_msb_next: bool,
    rng_state: u64,
    stats: ProviderStats,
    ctx: PredContext,
    last_provider_ctr: i8,
    /// Successful allocations per tagged table (observability only).
    allocs: Vec<u64>,
    /// Mispredictions where every candidate entry was useful, so the
    /// all-useful decrement path ran instead of an allocation.
    alloc_failures: u64,
    /// Periodic useful-bit aging sweeps performed.
    useful_resets: u64,
}

impl TageCore {
    /// Creates an engine from a configuration.
    pub fn new(config: &TageConfig) -> Self {
        let tables = config
            .tables
            .iter()
            .map(|g| TaggedTable::new(g.log_size, g.tag_bits, g.history_len))
            .collect::<Vec<_>>();
        let n = tables.len();
        Self {
            base: Bimodal::new(config.base_log_size, 2),
            tables,
            use_alt_on_na: 0,
            tick: 0,
            u_reset_period: config.u_reset_period,
            reset_msb_next: true,
            rng_state: 0xDEAD_BEEF_CAFE_1234,
            stats: ProviderStats::new(n),
            ctx: PredContext::default(),
            last_provider_ctr: 0,
            allocs: vec![0; n],
            alloc_failures: 0,
            useful_resets: 0,
        }
    }

    /// Counter value of the most recent prediction's provider entry
    /// (0 when the base predictor provided).
    pub fn last_provider_ctr(&self) -> i8 {
        self.last_provider_ctr
    }

    /// The tagged tables (shortest history first).
    pub fn tables(&self) -> &[TaggedTable] {
        &self.tables
    }

    /// Provenance of the most recent prediction: which component
    /// provided it (`"base"` or tagged table `1..=n` as `"tage"`), the
    /// alternate prediction, and the provider counter. Shared by every
    /// predictor wrapping a [`TageCore`].
    pub fn last_provenance(&self) -> Provenance {
        Provenance {
            component: if self.ctx.provider.is_some() {
                "tage"
            } else {
                "base"
            },
            table: self.ctx.provider.map(|i| i as u32 + 1),
            prediction: self.ctx.final_pred,
            alternate: Some(self.ctx.alt_pred),
            counter: Some(i32::from(self.last_provider_ctr)),
            margin: None,
            history_len: self
                .ctx
                .provider
                .map(|i| self.tables[i].history_len() as u32),
        }
    }

    /// Provider statistics accumulated so far.
    pub fn provider_stats(&self) -> &ProviderStats {
        &self.stats
    }

    /// Clears accumulated provider statistics (e.g. after warm-up).
    pub fn reset_provider_stats(&mut self) {
        self.stats = ProviderStats::new(self.tables.len());
    }

    /// Successful allocations per tagged table, shortest history first.
    pub fn alloc_counts(&self) -> &[u64] {
        &self.allocs
    }

    /// Mispredictions where allocation failed (every candidate useful).
    pub fn alloc_failures(&self) -> u64 {
        self.alloc_failures
    }

    /// Periodic useful-bit aging sweeps performed so far.
    pub fn useful_resets(&self) -> u64 {
        self.useful_resets
    }

    /// Exports the engine's counters into `metrics` under the `tage.`
    /// prefix — per-table allocations, provider hits, occupancy — shared
    /// by every predictor wrapping a [`TageCore`] (TAGE, ISL-TAGE,
    /// BF-TAGE).
    pub fn introspect_into(&self, metrics: &mut Metrics) {
        metrics.counter("tage.base.provider_hits", self.stats.base_count());
        metrics.counter("tage.alloc_failures", self.alloc_failures);
        metrics.counter("tage.useful_resets", self.useful_resets);
        for (i, table) in self.tables.iter().enumerate() {
            let label = i + 1; // T1..Tn, matching the storage breakdown
            metrics.counter(&format!("tage.table{label}.allocs"), self.allocs[i]);
            metrics.counter(
                &format!("tage.table{label}.provider_hits"),
                self.stats.table_count(i),
            );
            let occupied = (0..table.len())
                .filter(|&j| {
                    let e = table.entry(j);
                    e.ctr != 0 || e.tag != 0 || e.useful != 0
                })
                .count();
            metrics.gauge(
                &format!("tage.table{label}.occupancy"),
                occupied as f64 / table.len() as f64,
            );
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64.
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    /// Computes the prediction for `pc` given per-table `indices` and
    /// `tags` (already masked to each table's geometry). The slices are
    /// copied into the engine's reusable prediction context, so callers
    /// can keep them in their own scratch buffers.
    ///
    /// # Panics
    ///
    /// Panics if `indices` or `tags` length differs from the table count.
    pub fn predict(&mut self, pc: u64, indices: &[usize], tags: &[u16]) -> bool {
        assert_eq!(indices.len(), self.tables.len());
        assert_eq!(tags.len(), self.tables.len());
        let mut provider = None;
        let mut alt = None;
        for i in (0..self.tables.len()).rev() {
            if self.tables[i].lookup(indices[i], tags[i]).is_some() {
                if provider.is_none() {
                    provider = Some(i);
                } else {
                    alt = Some(i);
                    break;
                }
            }
        }
        let base_pred = self.base.lookup(pc);
        let (provider_pred, provider_weak) = match provider {
            Some(i) => {
                let e = self.tables[i].entry(indices[i]);
                (e.prediction(), e.is_weak() && e.useful == 0)
            }
            None => (base_pred, false),
        };
        let alt_pred = match alt {
            Some(i) => self.tables[i].entry(indices[i]).prediction(),
            None => base_pred,
        };
        // "Use alt on newly allocated" heuristic: a weak, useless provider
        // entry is probably a fresh allocation; trust the alternate
        // prediction while the global counter says so.
        let final_pred = if provider.is_some() && provider_weak && self.use_alt_on_na >= 0 {
            alt_pred
        } else {
            provider_pred
        };
        self.stats.record(provider);
        self.last_provider_ctr = match provider {
            Some(i) => self.tables[i].entry(indices[i]).ctr,
            None => 0,
        };
        self.ctx.indices.clear();
        self.ctx.indices.extend_from_slice(indices);
        self.ctx.tags.clear();
        self.ctx.tags.extend_from_slice(tags);
        self.ctx.provider = provider;
        self.ctx.alt = alt;
        self.ctx.provider_pred = provider_pred;
        self.ctx.alt_pred = alt_pred;
        self.ctx.final_pred = final_pred;
        self.ctx.provider_weak = provider_weak;
        final_pred
    }

    /// Trains the engine with the resolved direction of the branch last
    /// passed to [`TageCore::predict`].
    pub fn update(&mut self, pc: u64, taken: bool) {
        // Take the context out to release the borrow on `self`, then hand
        // it back at the end so its buffers are recycled by the next
        // prediction.
        let ctx = std::mem::take(&mut self.ctx);
        let mispredicted = ctx.final_pred != taken;

        // Track the use-alt-on-newly-allocated preference.
        if ctx.provider.is_some() && ctx.provider_weak && ctx.provider_pred != ctx.alt_pred {
            let delta = if ctx.alt_pred == taken { 1 } else { -1 };
            self.use_alt_on_na = (self.use_alt_on_na + delta).clamp(-8, 7);
        }

        // Allocation on misprediction, into a longer table with a useless
        // entry (probabilistically skipping to spread allocations).
        let n = self.tables.len();
        let can_allocate = ctx.provider.map_or(0, |p| p + 1) < n;
        if mispredicted && can_allocate {
            let start = ctx.provider.map_or(0, |p| p + 1);
            let last_free = (start..n)
                .rev()
                .find(|&j| self.tables[j].entry(ctx.indices[j]).useful == 0);
            match last_free {
                None => {
                    for j in start..n {
                        self.tables[j].touch_useful(ctx.indices[j], false);
                    }
                    self.alloc_failures += 1;
                }
                Some(last) => {
                    // Prefer shorter tables, skipping each candidate with
                    // probability 1/2 (Seznec's anti-ping-pong
                    // randomization); fall back to the longest free table
                    // when every coin flip says skip.
                    let mut chosen = last;
                    for j in start..n {
                        if self.tables[j].entry(ctx.indices[j]).useful != 0 {
                            continue;
                        }
                        if self.next_rand() & 1 == 0 {
                            chosen = j;
                            break;
                        }
                    }
                    self.tables[chosen].allocate(ctx.indices[chosen], ctx.tags[chosen], taken);
                    self.allocs[chosen] += 1;
                }
            }
        }

        // Usefulness: when provider and alternate disagreed, the provider
        // was useful iff it was right.
        if let Some(p) = ctx.provider {
            if ctx.provider_pred != ctx.alt_pred {
                self.tables[p].touch_useful(ctx.indices[p], ctx.provider_pred == taken);
            }
            // Train the provider counter.
            self.tables[p].train(ctx.indices[p], taken);
            // A useless provider lets the alternate keep learning.
            if self.tables[p].entry(ctx.indices[p]).useful == 0 {
                match ctx.alt {
                    Some(a) => self.tables[a].train(ctx.indices[a], taken),
                    None => self.base.train(pc, taken),
                }
            }
        } else {
            self.base.train(pc, taken);
        }

        // Periodic graceful aging of usefulness counters.
        self.tick += 1;
        if self.tick.is_multiple_of(self.u_reset_period) {
            let bit = if self.reset_msb_next { 1 } else { 0 };
            self.reset_msb_next = !self.reset_msb_next;
            for t in &mut self.tables {
                t.reset_useful_bit(bit);
            }
            self.useful_resets += 1;
        }

        // Recycle the context buffers for the next prediction.
        self.ctx = ctx;
    }

    /// Storage of the base + tagged tables.
    pub fn storage(&self) -> StorageBreakdown {
        let mut s = StorageBreakdown::new();
        s.push("base bimodal table", self.base.storage_bits());
        for (i, t) in self.tables.iter().enumerate() {
            s.push(
                format!(
                    "tagged table T{} ({} entries, {}b tag, L={})",
                    i + 1,
                    t.len(),
                    t.tag_bits(),
                    t.history_len()
                ),
                t.storage_bits(),
            );
        }
        s
    }
}

impl Restorable for TageCore {
    fn save_state(&self, w: &mut StateWriter) {
        // Everything that survives across predictions: tables, the
        // use-alt preference, the aging clock, the allocation RNG (so a
        // resumed run draws the same coin flips), and every
        // observability counter the metrics document exports. The
        // `ctx`/`last_provider_ctr` scratch is rewritten by the next
        // `predict` before any use.
        self.base.save_state(w);
        w.usize(self.tables.len());
        for t in &self.tables {
            t.save_state(w);
        }
        w.i32(self.use_alt_on_na);
        w.u64(self.tick);
        w.bool(self.reset_msb_next);
        w.u64(self.rng_state);
        w.u64_slice(&self.stats.counts);
        w.u64_slice(&self.allocs);
        w.u64(self.alloc_failures);
        w.u64(self.useful_resets);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        self.base.load_state(r)?;
        if r.usize()? != self.tables.len() {
            return Err(CodecError::Malformed("tage table count mismatch"));
        }
        for t in &mut self.tables {
            t.load_state(r)?;
        }
        self.use_alt_on_na = r.i32()?;
        self.tick = r.u64()?;
        self.reset_msb_next = r.bool()?;
        self.rng_state = r.u64()?;
        let counts = r.u64_vec()?;
        if counts.len() != self.stats.counts.len() {
            return Err(CodecError::Malformed("provider stats size mismatch"));
        }
        self.stats.counts = counts;
        let allocs = r.u64_vec()?;
        if allocs.len() != self.allocs.len() {
            return Err(CodecError::Malformed("alloc counts size mismatch"));
        }
        self.allocs = allocs;
        self.alloc_failures = r.u64()?;
        self.useful_resets = r.u64()?;
        Ok(())
    }
}

/// Conventional TAGE over raw global branch history.
#[derive(Debug, Clone)]
pub struct Tage {
    core: TageCore,
    history: ManagedHistory,
    path: PathHistory,
    name: String,
    // Per-prediction index/tag scratch, recycled so the hot path never
    // allocates.
    idx_scratch: Vec<usize>,
    tag_scratch: Vec<u16>,
}

impl Tage {
    /// Creates a conventional TAGE from a configuration.
    pub fn new(config: &TageConfig) -> Self {
        let capacity = config.max_history().max(64);
        let mut fold_specs = Vec::new();
        for g in &config.tables {
            fold_specs.push((g.history_len, g.log_size as usize)); // index fold
            fold_specs.push((g.history_len, g.tag_bits as usize)); // tag fold A
            fold_specs.push((
                g.history_len,
                (g.tag_bits as usize).saturating_sub(1).max(1),
            ));
            // tag fold B
        }
        Self {
            core: TageCore::new(config),
            history: ManagedHistory::new(capacity, &fold_specs),
            path: PathHistory::new(config.path_bits),
            name: format!("tage-{}t", config.tables.len()),
            idx_scratch: Vec::with_capacity(config.tables.len()),
            tag_scratch: Vec::with_capacity(config.tables.len()),
        }
    }

    /// Convenience: conventional TAGE with `n` tagged tables.
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside 4..=15.
    pub fn with_tables(n: usize) -> Self {
        Self::new(&TageConfig::conventional(n).expect("4..=15 tables"))
    }

    /// Provider statistics (Figure 12).
    pub fn provider_stats(&self) -> &ProviderStats {
        self.core.provider_stats()
    }

    /// Counter value of the most recent prediction's provider entry.
    pub fn last_provider_ctr(&self) -> i8 {
        self.core.last_provider_ctr()
    }

    /// Clears provider statistics.
    pub fn reset_provider_stats(&mut self) {
        self.core.reset_provider_stats();
    }

    /// Recomputes the per-table indices and tags for `pc` into the
    /// reusable scratch buffers. The folds themselves are maintained
    /// incrementally by [`ManagedHistory::push`], so this is O(tables)
    /// regardless of history depth.
    fn compute_indices_tags(&mut self, pc: u64) {
        let pch = pc >> 2;
        self.idx_scratch.clear();
        self.tag_scratch.clear();
        for (i, t) in self.core.tables().iter().enumerate() {
            let f_idx = self.history.fold(3 * i);
            let f_tag_a = self.history.fold(3 * i + 1);
            let f_tag_b = self.history.fold(3 * i + 2);
            let path_window = t.history_len().min(16) as u32;
            let path_bits = self.path.value() & ((1u64 << path_window) - 1);
            let path_mix = mix64(path_bits.wrapping_mul(0x9E37_79B9u64 + i as u64));
            let raw_idx = pch ^ (pch >> (t.log_size() + 1)) ^ f_idx ^ (path_mix >> 3);
            self.idx_scratch.push(t.mask_index(raw_idx));
            self.tag_scratch
                .push(t.mask_tag(pch ^ f_tag_a ^ (f_tag_b << 1)));
        }
    }
}

impl ConditionalPredictor for Tage {
    fn name(&self) -> std::borrow::Cow<'_, str> {
        std::borrow::Cow::Borrowed(&self.name)
    }

    fn predict(&mut self, pc: u64) -> bool {
        self.compute_indices_tags(pc);
        self.core.predict(pc, &self.idx_scratch, &self.tag_scratch)
    }

    fn update(&mut self, pc: u64, taken: bool, _target: u64) {
        self.core.update(pc, taken);
        self.history.push(taken);
        self.path.push(pc);
    }

    fn track_other(&mut self, record: &BranchRecord) {
        self.path.push(record.pc);
    }

    fn predict_batch(&mut self, pcs: &[u64], _targets: &[u64], takens: &[bool], miss: &mut [bool]) {
        // Fused non-virtual predict+update over the run; identical state
        // transitions to the per-record default.
        for i in 0..pcs.len() {
            self.compute_indices_tags(pcs[i]);
            let guess = self
                .core
                .predict(pcs[i], &self.idx_scratch, &self.tag_scratch);
            miss[i] = guess != takens[i];
            self.core.update(pcs[i], takens[i]);
            self.history.push(takens[i]);
            self.path.push(pcs[i]);
        }
    }

    fn update_batch(&mut self, chunk: &TraceChunk, start: usize, end: usize) {
        for &pc in &chunk.pcs()[start..end] {
            self.path.push(pc);
        }
    }

    fn storage(&self) -> StorageBreakdown {
        let mut s = self.core.storage();
        s.push(
            "global history register",
            self.history.history().capacity() as u64,
        );
        s.push("path history", u64::from(self.path.len()));
        s
    }

    fn last_provenance(&self) -> Option<Provenance> {
        Some(self.core.last_provenance())
    }

    fn introspection(&self) -> Option<&dyn PredictorIntrospect> {
        Some(self)
    }

    fn checkpointing(&mut self) -> Option<&mut dyn Restorable> {
        Some(self)
    }
}

impl Restorable for Tage {
    fn save_state(&self, w: &mut StateWriter) {
        self.core.save_state(w);
        self.history.save_state(w);
        self.path.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        self.core.load_state(r)?;
        self.history.load_state(r)?;
        self.path.load_state(r)
    }
}

impl PredictorIntrospect for Tage {
    fn introspect(&self, metrics: &mut Metrics) {
        self.core.introspect_into(metrics);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfbp_sim::simulate::simulate;
    use bfbp_trace::rng::Xoshiro256;
    use bfbp_trace::synth::builder::{Filler, ProgramBuilder};

    #[test]
    fn learns_biased_branches_immediately() {
        let mut t = Tage::with_tables(5);
        for _ in 0..50 {
            t.predict(0x40);
            t.update(0x40, true, 0);
        }
        assert!(t.predict(0x40));
        t.update(0x40, true, 0);
    }

    #[test]
    fn learns_alternating_pattern() {
        let mut t = Tage::with_tables(5);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..4000u64 {
            let taken = i % 2 == 0;
            let guess = t.predict(0x40);
            t.update(0x40, taken, 0);
            if i > 1000 {
                total += 1;
                if guess == taken {
                    correct += 1;
                }
            }
        }
        assert!(correct as f64 / total as f64 > 0.97);
    }

    #[test]
    fn learns_xor_unlike_perceptrons() {
        let mut t = Tage::with_tables(7);
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..30_000 {
            let a = rng.chance(0.5);
            let b = rng.chance(0.5);
            t.predict(0x10);
            t.update(0x10, a, 0);
            t.predict(0x20);
            t.update(0x20, b, 0);
            let guess = t.predict(0x30);
            t.update(0x30, a ^ b, 0);
            if i > 10_000 {
                total += 1;
                if guess == (a ^ b) {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.9, "xor accuracy {acc}");
    }

    #[test]
    fn fifteen_tables_capture_deeper_correlation_than_ten() {
        // A correlation at raw distance ~420 is reachable by the 15-table
        // series (517) but not the 10-table one (195).
        let mut b = ProgramBuilder::new(42);
        b.add_deep_block(420, Filler::DistinctBiased, 6, 0.0, 200, 210, 1);
        let trace = b.build().emit("deep", 120_000, 9);

        let mut t10 = Tage::with_tables(10);
        let mut t15 = Tage::with_tables(15);
        let r10 = simulate(&mut t10, &trace);
        let r15 = simulate(&mut t15, &trace);
        assert!(
            r15.mpki() < r10.mpki() * 0.8,
            "15-table {:.3} vs 10-table {:.3} MPKI",
            r15.mpki(),
            r10.mpki()
        );
    }

    #[test]
    fn provider_stats_accumulate() {
        let mut t = Tage::with_tables(5);
        for i in 0..500u64 {
            t.predict(0x40 + (i % 7) * 4);
            t.update(0x40 + (i % 7) * 4, i % 3 == 0, 0);
        }
        let stats = t.provider_stats();
        assert_eq!(stats.total(), 500);
        assert_eq!(stats.n_tables(), 5);
        // Percentages sum to <= 100 (base takes the rest).
        let sum: f64 = (0..5).map(|i| stats.table_percent(i)).sum();
        assert!(sum <= 100.0 + 1e-9);
        t.reset_provider_stats();
        assert_eq!(t.provider_stats().total(), 0);
    }

    #[test]
    fn storage_is_near_budget() {
        for n in [4, 7, 10, 15] {
            let t = Tage::with_tables(n);
            let kib = t.storage().total_kib();
            assert!((44.0..68.0).contains(&kib), "{n} tables: {kib:.1} KiB");
        }
    }

    #[test]
    fn empty_stats_percentages_are_zero() {
        let t = Tage::with_tables(4);
        assert_eq!(t.provider_stats().table_percent(0), 0.0);
        assert_eq!(t.provider_stats().base_count(), 0);
    }
}
