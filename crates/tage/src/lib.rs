//! # bfbp-tage
//!
//! TAGE and ISL-TAGE baseline predictors for the Bias-Free Branch
//! Predictor reproduction:
//!
//! * [`table`] — partially tagged prediction tables (the `Ti` of
//!   Figure 6);
//! * [`config`] — history-length series and matched-budget geometries
//!   for 4–15 tagged tables;
//! * [`tage`] — the shared TAGE engine (provider selection, usefulness,
//!   allocation) and the conventional raw-history TAGE;
//! * [`isl`] — the ISL-TAGE composition (loop predictor + statistical
//!   corrector; the IUM is a documented no-op under trace-driven
//!   immediate update).
//!
//! ```
//! use bfbp_sim::simulate::simulate;
//! use bfbp_tage::isl::isl_tage;
//! use bfbp_trace::synth::suite;
//!
//! let trace = suite::find("MM1").expect("suite trace").generate_len(5_000);
//! let mut predictor = isl_tage(7);
//! let result = simulate(&mut predictor, &trace);
//! assert!(result.accuracy() > 0.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod isl;
pub mod registry;
pub mod table;
pub mod tage;

pub use config::{TageConfig, BIAS_FREE_LENGTHS_10, CONVENTIONAL_LENGTHS_15};
pub use isl::{isl_tage, Isl, IslTage, StatisticalCorrector, TageEngine};
pub use registry::register;
pub use table::{TaggedEntry, TaggedTable};
pub use tage::{ProviderStats, Tage, TageCore};
