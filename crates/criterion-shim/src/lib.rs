//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness.
//!
//! The build environment for this workspace has no access to crates.io,
//! so the real `criterion` cannot be downloaded. This crate implements
//! the (small) slice of criterion's API that the workspace benches use —
//! benchmark groups, `Bencher::iter`, throughput annotations, and the
//! `criterion_group!`/`criterion_main!` macros — with honest wall-clock
//! timing: warm-up, then `sample_size` samples, reporting the median
//! time per iteration and derived throughput.
//!
//! It is **not** a statistics engine: no outlier analysis, no HTML
//! reports, no comparison against saved baselines. It exists so
//! `cargo bench --features bench-harness` produces useful numbers
//! offline, and so the benches keep compiling against the same imports
//! when the real criterion is available again.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (criterion's own is a
/// wrapper over the std hint these days).
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group: scales the per-iteration
/// time into elements (or bytes) per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// The top-level harness handle passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            throughput: None,
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// A group of related benchmarks sharing throughput/measurement
/// settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used to derive rate numbers.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long to run the routine untimed before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target total time spent collecting samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its median time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up: run the routine repeatedly until the warm-up budget is
        // spent, growing the iteration count to estimate per-iter cost.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            routine(&mut bencher);
            if bencher.elapsed < Duration::from_millis(1) {
                bencher.iters = (bencher.iters * 2).min(1 << 20);
            }
        }
        let per_iter = if bencher.elapsed.is_zero() {
            Duration::from_nanos(1)
        } else {
            bencher.elapsed / bencher.iters as u32
        };

        // Pick an iteration count so each sample lands near
        // measurement_time / sample_size.
        let sample_budget = self.measurement_time / self.sample_size as u32;
        let iters =
            (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters;
            routine(&mut bencher);
            samples.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];

        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 * 1e9 / median)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 * 1e9 / median)
            }
            None => String::new(),
        };
        println!("  {name:<32} {median:>12.1} ns/iter{rate}");
        self
    }

    /// Ends the group (printing nothing extra; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark routine; `iter` times the provided closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `inner` over the harness-chosen number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut inner: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(inner());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a function running the listed benchmark targets, mirroring
/// criterion's macro of the same name (simple `($name, $($target),+)`
/// form only).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags like
            // `--bench`; none change behavior here.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-self-test");
        group
            .throughput(Throughput::Elements(1))
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0);
    }
}
