//! The recency stack (RS): latest-occurrence-only history management
//! (§III-B of the paper, Figure 3).
//!
//! A recency stack tracks, for each non-biased branch, only its **most
//! recent** occurrence: on a hit the entry moves to the top (its outcome
//! and position refreshed); on a miss the stack shifts like a
//! conventional history register, evicting the oldest entry when full.
//! Each entry carries its *positional history* (§III-C) — the absolute
//! distance of that occurrence from the current branch — implemented as
//! a birth timestamp against a global commit counter.

use bfbp_sim::ckpt::{CodecError, Restorable, StateReader, StateWriter};

/// One recency-stack entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RsEntry {
    /// Hashed address of the branch.
    pub key: u64,
    /// Outcome of its most recent occurrence.
    pub outcome: bool,
    /// Global commit count at the most recent occurrence; the entry's
    /// positional history is `now - birth`.
    pub birth: u64,
}

impl RsEntry {
    /// The entry's positional history (`pos_hist`): absolute distance of
    /// the tracked occurrence from the present.
    pub fn position(&self, now: u64) -> u64 {
        now.saturating_sub(self.birth)
    }
}

/// What a [`RecencyStack::record`] call did to the stack, for callers
/// that mirror the stack contents in a derived cache (the segmented
/// BF-GHR keeps pre-mixed hash words in stack order and replays these
/// ops instead of rebuilding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsOp {
    /// The key was already tracked at depth `from`: it moved to the top,
    /// entries above it slid down one.
    Refreshed {
        /// Depth the entry was found at (0 = top).
        from: usize,
        /// Whether the refresh changed the stored outcome.
        outcome_changed: bool,
    },
    /// The key was new: pushed on top, with the bottom entry evicted if
    /// the stack was full.
    Inserted {
        /// Whether a bottom entry was evicted to make room.
        evicted: bool,
    },
}

/// A fixed-capacity recency stack, newest entry first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecencyStack {
    entries: Vec<RsEntry>,
    capacity: usize,
}

impl RecencyStack {
    /// Creates a stack holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records an occurrence of `key` with the given outcome at commit
    /// time `now`.
    ///
    /// If `key` is present, it moves to the top with refreshed outcome
    /// and birth (the Figure 3 clock-gated shift: entries between the top
    /// and the hit slide down by one, older entries stay). Otherwise a
    /// new entry is pushed and the oldest is evicted if over capacity.
    ///
    /// Returns the [`RsOp`] describing what happened, so a caller can
    /// mirror the mutation in a derived per-entry cache.
    pub fn record(&mut self, key: u64, outcome: bool, now: u64) -> RsOp {
        let entry = RsEntry {
            key,
            outcome,
            birth: now,
        };
        if let Some(hit) = self.entries.iter().position(|e| e.key == key) {
            let outcome_changed = self.entries[hit].outcome != outcome;
            self.entries[..=hit].rotate_right(1);
            self.entries[0] = entry;
            RsOp::Refreshed {
                from: hit,
                outcome_changed,
            }
        } else {
            let evicted = self.entries.len() == self.capacity;
            if evicted {
                self.entries.pop();
            }
            self.entries.insert(0, entry);
            RsOp::Inserted { evicted }
        }
    }

    /// Iterates entries newest-first.
    pub fn iter(&self) -> std::slice::Iter<'_, RsEntry> {
        self.entries.iter()
    }

    /// Position of `key` in the stack (0 = newest), if present.
    pub fn depth_of(&self, key: u64) -> Option<usize> {
        self.entries.iter().position(|e| e.key == key)
    }

    /// Removes and returns the entry for `key`, if present (used by the
    /// segmented BF-GHR when an instance falls out of a segment).
    pub fn remove(&mut self, key: u64) -> Option<RsEntry> {
        let idx = self.depth_of(key)?;
        Some(self.entries.remove(idx))
    }

    /// Removes every entry whose tracked occurrence is at distance
    /// `>= max_pos` from `now`, returning how many were dropped (used
    /// for segment expiry). Births are strictly decreasing from top to
    /// bottom (every record lands at the top with the newest clock), so
    /// expired entries always form a suffix — the segmented BF-GHR calls
    /// this once per segment per committed branch, and the common case
    /// is a single tail check.
    pub fn expire(&mut self, now: u64, max_pos: u64) -> usize {
        let mut dropped = 0;
        while self
            .entries
            .last()
            .is_some_and(|e| e.position(now) >= max_pos)
        {
            self.entries.pop();
            dropped += 1;
        }
        dropped
    }

    /// Storage estimate in bits: each entry holds a 14-bit hashed
    /// address, 1 outcome bit and an 11-bit position counter — the
    /// paper's Table I budgets RS entries at 16 bits.
    pub fn storage_bits(&self) -> u64 {
        self.capacity as u64 * 16
    }
}

impl Restorable for RecencyStack {
    fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.entries.len());
        for e in &self.entries {
            w.u64(e.key);
            w.bool(e.outcome);
            w.u64(e.birth);
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        let count = r.usize()?;
        if count > self.capacity {
            return Err(CodecError::Malformed("recency stack over capacity"));
        }
        self.entries.clear();
        for _ in 0..count {
            self.entries.push(RsEntry {
                key: r.u64()?,
                outcome: r.bool()?,
                birth: r.u64()?,
            });
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a RecencyStack {
    type Item = &'a RsEntry;
    type IntoIter = std::slice::Iter<'a, RsEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_latest_occurrence() {
        let mut rs = RecencyStack::new(4);
        rs.record(0xA, true, 1);
        rs.record(0xB, false, 2);
        rs.record(0xA, false, 3); // A recurs: moves to top, refreshed
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.depth_of(0xA), Some(0));
        assert_eq!(rs.depth_of(0xB), Some(1));
        let top = rs.iter().next().unwrap();
        assert_eq!(top.key, 0xA);
        assert!(!top.outcome);
        assert_eq!(top.birth, 3);
    }

    #[test]
    fn miss_acts_like_shift_register() {
        let mut rs = RecencyStack::new(3);
        for (i, key) in [0x1u64, 0x2, 0x3].iter().enumerate() {
            rs.record(*key, true, i as u64);
        }
        assert_eq!(rs.len(), 3);
        // A fourth distinct key evicts the oldest (0x1).
        rs.record(0x4, true, 3);
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.depth_of(0x1), None);
        assert_eq!(rs.depth_of(0x4), Some(0));
        assert_eq!(rs.depth_of(0x2), Some(2));
    }

    #[test]
    fn intermediate_entries_slide_down() {
        let mut rs = RecencyStack::new(4);
        rs.record(0x1, true, 0);
        rs.record(0x2, true, 1);
        rs.record(0x3, true, 2);
        // Hit on the bottom entry: 0x3 and 0x2 slide down, 0x1 to top.
        rs.record(0x1, false, 3);
        let keys: Vec<u64> = rs.iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![0x1, 0x3, 0x2]);
    }

    #[test]
    fn position_tracks_absolute_distance() {
        let mut rs = RecencyStack::new(4);
        rs.record(0xA, true, 10);
        let e = *rs.iter().next().unwrap();
        assert_eq!(e.position(10), 0);
        assert_eq!(e.position(25), 15);
        // Position survives other branches entering above it.
        rs.record(0xB, true, 11);
        let a = rs.iter().find(|e| e.key == 0xA).unwrap();
        assert_eq!(a.position(25), 15);
    }

    #[test]
    fn remove_returns_entry() {
        let mut rs = RecencyStack::new(4);
        rs.record(0xA, true, 1);
        rs.record(0xB, false, 2);
        let removed = rs.remove(0xA).unwrap();
        assert_eq!(removed.key, 0xA);
        assert_eq!(rs.len(), 1);
        assert!(rs.remove(0xA).is_none());
    }

    #[test]
    fn expire_removes_old_instances() {
        let mut rs = RecencyStack::new(8);
        rs.record(0xA, true, 0);
        rs.record(0xB, true, 5);
        rs.record(0xC, true, 9);
        let expired = rs.expire(10, 5);
        assert_eq!(expired, 2, "0xA and 0xB are at distance >= 5");
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.depth_of(0xA), None);
        assert_eq!(rs.depth_of(0xB), None);
        assert_eq!(rs.depth_of(0xC), Some(0));
        assert_eq!(rs.expire(10, 5), 0, "second pass removes nothing");
    }

    #[test]
    fn uniqueness_invariant_holds_under_stress() {
        let mut rs = RecencyStack::new(8);
        for i in 0..1000u64 {
            rs.record(i % 13, i % 2 == 0, i);
            // Invariant: no duplicate keys, size within capacity.
            let mut keys: Vec<u64> = rs.iter().map(|e| e.key).collect();
            assert!(keys.len() <= 8);
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(keys.len(), rs.len());
            // Births strictly decreasing from top to bottom.
            let births: Vec<u64> = rs.iter().map(|e| e.birth).collect();
            for w in births.windows(2) {
                assert!(w[0] > w[1]);
            }
        }
    }

    #[test]
    fn storage_matches_table_i_budget() {
        // Table I: "RS 142 entries × 16 bits/entry = 284 bytes".
        let rs = RecencyStack::new(142);
        assert_eq!(rs.storage_bits(), 142 * 16);
        assert_eq!(rs.storage_bits() / 8, 284);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        RecencyStack::new(0);
    }
}
