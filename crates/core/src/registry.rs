//! Registry hooks: registers the paper's bias-free predictors with a
//! [`PredictorRegistry`].
//!
//! `bf-neural` and `bf-neural-32kb` share one builder; they differ only
//! in their registered defaults (the 64 KB and 32 KB budgets of
//! Table I / §VI-B). Every Figure 9 design-ablation knob is an ordinary
//! parameter, so ablations are specs, not bespoke constructors.

use bfbp_sim::registry::{BuildError, Params, PredictorRegistry};
use bfbp_tage::config::TageConfig;
use bfbp_tage::isl::Isl;

use crate::bf_neural::{BfNeural, BfNeuralConfig, HistoryMode, IdealBfNeural};
use crate::bf_tage::BfTage;
use crate::bst::{Bst, Classifier};

fn bias_free_config(params: &Params) -> Result<TageConfig, BuildError> {
    let tables = params.usize("tables")?;
    TageConfig::bias_free(tables).map_err(|e| BuildError::invalid("tables", e.to_string()))
}

fn history_mode(text: &str) -> Result<HistoryMode, BuildError> {
    match text {
        "unfiltered" => Ok(HistoryMode::Unfiltered),
        "bias-filtered" => Ok(HistoryMode::BiasFiltered),
        "recency-stack" => Ok(HistoryMode::RecencyStack),
        other => Err(BuildError::invalid(
            "history-mode",
            format!(
                "unknown mode {other:?} (expected unfiltered, bias-filtered, or recency-stack)"
            ),
        )),
    }
}

fn neural_defaults(config: &BfNeuralConfig) -> Params {
    let mode = match config.history_mode {
        HistoryMode::Unfiltered => "unfiltered",
        HistoryMode::BiasFiltered => "bias-filtered",
        HistoryMode::RecencyStack => "recency-stack",
    };
    Params::new()
        .set("log-bst", config.log_bst)
        .set("probabilistic-bst", config.probabilistic_bst)
        .set("log-wm-rows", config.log_wm_rows)
        .set("recent-unfiltered", config.recent_unfiltered)
        .set("log-wrs", config.log_wrs)
        .set("deep-depth", config.deep_depth)
        .set("history-mode", mode)
        .set("folded-hist", config.folded_hist)
        .set("positional", config.positional)
        .set("loop-predictor", config.loop_predictor)
}

fn neural_config(params: &Params) -> Result<BfNeuralConfig, BuildError> {
    let log2 = |key: &str| -> Result<u32, BuildError> {
        let v = params.u32(key)?;
        if !(1..=30).contains(&v) {
            return Err(BuildError::invalid(key, "must be 1..=30"));
        }
        Ok(v)
    };
    let config = BfNeuralConfig {
        log_bst: log2("log-bst")?,
        probabilistic_bst: params.bool("probabilistic-bst")?,
        log_wm_rows: log2("log-wm-rows")?,
        recent_unfiltered: params.usize("recent-unfiltered")?,
        log_wrs: log2("log-wrs")?,
        deep_depth: params.usize("deep-depth")?,
        history_mode: history_mode(params.str("history-mode")?)?,
        folded_hist: params.bool("folded-hist")?,
        positional: params.bool("positional")?,
        loop_predictor: params.bool("loop-predictor")?,
    };
    if config.recent_unfiltered == 0 {
        return Err(BuildError::invalid("recent-unfiltered", "must be non-zero"));
    }
    if config.deep_depth == 0 {
        return Err(BuildError::invalid("deep-depth", "must be non-zero"));
    }
    Ok(config)
}

/// Registers `bf-neural`, `bf-neural-32kb`, `bf-neural-ideal`,
/// `bf-tage`, and `bf-isl-tage`.
///
/// # Panics
///
/// Panics if any of those names is already registered.
pub fn register(registry: &mut PredictorRegistry) {
    registry.register(
        "bf-neural",
        "the practical BF-Neural predictor, 64 KB budget (Algorithms 2-3)",
        neural_defaults(&BfNeuralConfig::budget_64kb()),
        |p| Ok(Box::new(BfNeural::new(neural_config(p)?))),
    );
    registry.register(
        "bf-neural-32kb",
        "BF-Neural at the 32 KB budget of sect. VI-B",
        neural_defaults(&BfNeuralConfig::budget_32kb()),
        |p| Ok(Box::new(BfNeural::new(neural_config(p)?))),
    );
    registry.register(
        "bf-neural-ideal",
        "the idealized unconstrained-storage BF predictor (Algorithm 1)",
        Params::new().set("log-rows", 20u32).set("depth", 128usize),
        |p| {
            let log_rows = p.u32("log-rows")?;
            if !(1..=26).contains(&log_rows) {
                return Err(BuildError::invalid("log-rows", "must be 1..=26"));
            }
            let depth = p.usize("depth")?;
            if depth == 0 {
                return Err(BuildError::invalid("depth", "must be non-zero"));
            }
            Ok(Box::new(IdealBfNeural::new(
                log_rows,
                depth,
                Classifier::TwoBit(Bst::new(13)),
            )))
        },
    );
    registry.register(
        "bf-tage",
        "BF-TAGE: TAGE over the compressed bias-free history register",
        Params::new().set("tables", 10usize),
        |p| Ok(Box::new(BfTage::new(&bias_free_config(p)?))),
    );
    registry.register(
        "bf-isl-tage",
        "BF-ISL-TAGE: BF-TAGE + loop predictor + statistical corrector (sc=false drops the SC)",
        Params::new().set("tables", 10usize).set("sc", true),
        |p| {
            let tage = BfTage::new(&bias_free_config(p)?);
            Ok(Box::new(if p.bool("sc")? {
                Isl::new(tage)
            } else {
                Isl::without_sc(tage)
            }))
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> PredictorRegistry {
        let mut r = PredictorRegistry::new();
        register(&mut r);
        r
    }

    #[test]
    fn defaults_build_every_entry() {
        let r = registry();
        for name in r.names() {
            let p = r
                .build(name, &Params::new())
                .unwrap_or_else(|e| panic!("default build of {name} failed: {e}"));
            assert!(p.storage().total_bits() > 0, "{name} reports no storage");
        }
    }

    #[test]
    fn ablation_knobs_are_plain_params() {
        let r = registry();
        let bar2 = r
            .build(
                "bf-neural",
                &Params::new().set("history-mode", "unfiltered"),
            )
            .unwrap();
        assert_eq!(bar2.name(), "bf-neural(fhist)");
        let full = r.build("bf-neural", &Params::new()).unwrap();
        assert_eq!(full.name(), "bf-neural(ghist-bf+rs+fhist)");
    }

    #[test]
    fn thirty_two_kb_budget_is_smaller() {
        let r = registry();
        let big = r.build("bf-neural", &Params::new()).unwrap();
        let small = r.build("bf-neural-32kb", &Params::new()).unwrap();
        assert!(small.storage().total_bits() < big.storage().total_bits());
    }

    #[test]
    fn bad_history_mode_is_rejected() {
        let r = registry();
        assert!(r
            .build("bf-neural", &Params::new().set("history-mode", "zigzag"))
            .is_err());
    }

    #[test]
    fn bf_isl_tage_composes() {
        let r = registry();
        let p = r.build("bf-isl-tage", &Params::new()).unwrap();
        assert_eq!(p.name(), "isl-bf-tage-10t");
    }
}
