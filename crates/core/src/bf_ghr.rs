//! The bias-free global history register (BF-GHR) built from segmented
//! recency stacks — §V-B1, Figure 7 of the paper.
//!
//! A monolithic recency stack covering 2048 branches is impractical to
//! search associatively, so BF-TAGE divides the raw history into
//! non-overlapping segments whose sizes form a geometric-style series;
//! each segment owns a small (8-entry) recency stack holding the most
//! recent occurrence of each non-biased branch currently inside the
//! segment. The concatenation of the newest 16 *unfiltered* entries (the
//! paper keeps them unfiltered to limit detection perturbation, §VI-C)
//! with every segment stack, in increasing depth order, is the BF-GHR:
//! up to 2048 branches of raw history compressed into ≈144 entries.

use bfbp_predictors::history::mix64;
use bfbp_sim::ckpt::{CodecError, Restorable, StateReader, StateWriter};

use crate::recency::{RecencyStack, RsOp};

/// The paper's segment boundaries (§VI-C): "History segmentation divides
/// the long global history into following non-overlapping segments such
/// as {16, 32, 48, 64, 80, 104, 128, 192, 256, 320, 416, 512, 768, 1024,
/// 1280, 1536, 2048}".
pub const SEGMENT_BOUNDARIES: [usize; 17] = [
    16, 32, 48, 64, 80, 104, 128, 192, 256, 320, 416, 512, 768, 1024, 1280, 1536, 2048,
];

/// The paper's per-segment recency-stack size (§VI-C).
pub const SEGMENT_RS_SIZE: usize = 8;

/// One raw-history entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GhrEntry {
    /// 14-bit hashed branch address (Table I).
    pub key: u16,
    /// Resolved direction.
    pub taken: bool,
    /// Bias status recorded at commit time (Table I's "1 bit bias
    /// status").
    pub non_biased: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Segment {
    start: usize,
    end: usize,
    rs: RecencyStack,
    /// Pre-mixed hash words for the current stack contents (the
    /// `collect_mixed` representation), rebuilt inside `commit` only
    /// when the stack actually changed. A segment's stack is stable
    /// across most commits, so caching turns the per-prediction
    /// re-mixing of every segment entry into a memcpy.
    words: Vec<u64>,
    /// Prefix XORs of `words`: `pxor[k]` is the XOR of the first `k`
    /// words (`pxor[0] == 0`), rebuilt alongside `words`. A consumer
    /// folding the word stream up to an arbitrary cut point can then
    /// swallow a whole segment with one XOR and resolve a mid-segment
    /// cut with one lookup.
    pxor: Vec<u64>,
}

/// Raw-history ring slot layout: hashed key in the low 16 bits, taken
/// at bit 16, bias status at bit 17.
const RING_TAKEN: u32 = 1 << 16;
const RING_NON_BIASED: u32 = 1 << 17;

/// The pre-mixed hash word for one segment-stack entry: salted with the
/// segment index (order-insensitive within the segment) but not the
/// stack position, so a cached word survives the entry moving around
/// the stack.
#[inline]
fn seg_word(key: u64, outcome: bool, seg_id: usize) -> u64 {
    mix64((key << 20) ^ (u64::from(outcome) << 17) ^ ((seg_id as u64 + 1) << 8))
}

/// The segmented bias-free history register.
///
/// The raw unfiltered history lives in a power-of-two ring of packed
/// `u32` slots indexed by commit time: the entry at depth `d` is the
/// slot written `d` commits ago. A ring write never moves other
/// entries, so a commit is one store plus the segment bookkeeping —
/// there is no deque to shift — and the depth lookups the segment
/// crossings need are single L1 loads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfGhr {
    ring: Vec<u32>,
    ring_mask: u64,
    segments: Vec<Segment>,
    recent: usize,
    max_depth: usize,
    now: u64,
    commits: u64,
    non_biased_commits: u64,
}

impl BfGhr {
    /// Creates a BF-GHR with the paper's boundaries, 16 recent unfiltered
    /// entries, and 8-entry segment stacks.
    pub fn new() -> Self {
        Self::with_segments(&SEGMENT_BOUNDARIES, SEGMENT_RS_SIZE)
    }

    /// Creates a BF-GHR with custom boundaries. `boundaries[0]` is the
    /// unfiltered prefix length; each consecutive pair forms a segment.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two boundaries are given, they are not
    /// strictly increasing, or `rs_size` is zero.
    pub fn with_segments(boundaries: &[usize], rs_size: usize) -> Self {
        assert!(boundaries.len() >= 2, "need at least two boundaries");
        assert!(rs_size > 0, "segment stack size must be non-zero");
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "boundaries must be strictly increasing"
        );
        let segments = boundaries
            .windows(2)
            .map(|w| Segment {
                start: w[0],
                end: w[1],
                rs: RecencyStack::new(rs_size),
                words: Vec::with_capacity(rs_size),
                pxor: vec![0],
            })
            .collect();
        let max_depth = boundaries[boundaries.len() - 1];
        let ring_len = max_depth.next_power_of_two();
        Self {
            ring: vec![0; ring_len],
            ring_mask: ring_len as u64 - 1,
            segments,
            recent: boundaries[0],
            max_depth,
            now: 0,
            commits: 0,
            non_biased_commits: 0,
        }
    }

    /// Live raw-history length: commits so far, saturating at the
    /// maximum depth.
    #[inline]
    fn raw_len(&self) -> usize {
        self.max_depth.min(self.now as usize)
    }

    /// The raw-history entry at `depth` (0 = newest). Callers must keep
    /// `depth < self.raw_len()`.
    #[inline]
    fn raw_at(&self, depth: usize) -> GhrEntry {
        let slot = self.ring[((self.now - depth as u64) & self.ring_mask) as usize];
        GhrEntry {
            key: slot as u16,
            taken: slot & RING_TAKEN != 0,
            non_biased: slot & RING_NON_BIASED != 0,
        }
    }

    /// Number of unfiltered prefix entries exposed.
    pub fn recent_len(&self) -> usize {
        self.recent
    }

    /// Maximum raw-history depth covered.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Current compressed length: unfiltered prefix + live segment-stack
    /// entries.
    pub fn compressed_len(&self) -> usize {
        self.recent.min(self.raw_len()) + self.segments.iter().map(|s| s.rs.len()).sum::<usize>()
    }

    /// Upper bound on the compressed length (Table I's "RS 142 entries"
    /// class of figure).
    pub fn compressed_capacity(&self) -> usize {
        self.recent + self.segments.len() * SEGMENT_RS_SIZE.max(1)
    }

    /// Commits a branch into the raw history and propagates segment
    /// crossings (§V-B4: "When B reaches a depth of Lm …, if it is
    /// non-biased, its hashed address is inserted into the RSy …; later
    /// when B reaches a depth of Ln, it falls out of RSy").
    pub fn commit(&mut self, key: u16, taken: bool, non_biased: bool) {
        self.commits += 1;
        if non_biased {
            self.non_biased_commits += 1;
        }
        self.now += 1;
        let packed = u32::from(key)
            | if taken { RING_TAKEN } else { 0 }
            | if non_biased { RING_NON_BIASED } else { 0 };
        let slot = (self.now & self.ring_mask) as usize;
        self.ring[slot] = packed;
        let raw_len = self.raw_len();
        for (seg_id, seg) in self.segments.iter_mut().enumerate() {
            // The record previously at depth start-1 is now at depth
            // start: it crosses into this segment. The cached word
            // stream mirrors the stack mutation instead of re-mixing
            // every entry: a segment word depends on (key, outcome,
            // segment) but not position, so a refresh is a rotation and
            // only a brand-new or outcome-flipped entry needs `mix64`.
            if seg.start < raw_len {
                let e = self.ring[((self.now - seg.start as u64) & self.ring_mask) as usize];
                if e & RING_NON_BIASED != 0 {
                    let key = u64::from(e as u16);
                    let outcome = e & RING_TAKEN != 0;
                    // `pxor[k]` is the XOR of the first k words — a
                    // multiset property — so only the prefix of `pxor`
                    // covering reordered words needs recomputing: up to
                    // the hit depth on a refresh, everything on an
                    // insert, and nothing on a pure truncation.
                    match seg.rs.record(key, outcome, self.now) {
                        RsOp::Refreshed {
                            from,
                            outcome_changed,
                        } => {
                            seg.words[..=from].rotate_right(1);
                            // A pure rotation only disturbs the first
                            // `from + 1` prefix XORs; a changed word is
                            // part of every deeper prefix too.
                            let recompute_to = if outcome_changed {
                                seg.words[0] = seg_word(key, outcome, seg_id);
                                seg.words.len()
                            } else {
                                from + 1
                            };
                            let mut acc = 0u64;
                            for k in 0..recompute_to {
                                acc ^= seg.words[k];
                                seg.pxor[k + 1] = acc;
                            }
                        }
                        RsOp::Inserted { evicted } => {
                            if evicted {
                                seg.words.pop();
                                seg.pxor.pop();
                            }
                            seg.words.insert(0, seg_word(key, outcome, seg_id));
                            seg.pxor.push(0);
                            let mut acc = 0u64;
                            for (k, &w) in seg.words.iter().enumerate() {
                                acc ^= w;
                                seg.pxor[k + 1] = acc;
                            }
                        }
                    }
                }
            }
            // Instances that have travelled the segment's full length
            // fall out; the surviving prefix XORs are untouched.
            let seg_len = (seg.end - seg.start) as u64;
            let dropped = seg.rs.expire(self.now, seg_len);
            if dropped > 0 {
                seg.words.truncate(seg.words.len() - dropped);
                seg.pxor.truncate(seg.words.len() + 1);
            }
        }
    }

    /// Collects the BF-GHR into `out` as `(key, outcome)` pairs,
    /// shallowest first: the unfiltered prefix, then each segment's
    /// stack in increasing depth.
    ///
    /// Within a segment, entries are emitted in a canonical (key-sorted)
    /// order rather than recency order: two executions of a branch whose
    /// segment holds the same *set* of tracked branches then hash to the
    /// same table index even if arrival order differed — the compressed
    /// analogue of a history register's positional stability.
    pub fn collect(&self, out: &mut Vec<(u16, bool)>) {
        out.clear();
        for depth in 0..self.recent.min(self.raw_len()) {
            let e = self.raw_at(depth);
            out.push((e.key, e.taken));
        }
        let mut scratch: Vec<(u16, bool)> = Vec::with_capacity(8);
        for seg in &self.segments {
            scratch.clear();
            scratch.extend(seg.rs.iter().map(|e| (e.key as u16, e.outcome)));
            scratch.sort_unstable_by_key(|&(k, _)| k);
            out.extend_from_slice(&scratch);
        }
    }

    /// Collects the BF-GHR as pre-mixed per-entry hash words, shallowest
    /// first, for table index computation.
    ///
    /// Entries in the unfiltered prefix are salted with their exact
    /// position (a real history register is positional); segment-stack
    /// entries are salted with their *segment index* only. A table over
    /// the first `L` words then combines them with XOR — an
    /// order-insensitive set hash — so the index depends on *which*
    /// branch outcomes each segment tracks but not on transient
    /// arrival-order or alignment shifts inside the compressed stream.
    /// This is the compressed analogue of folded-history stability: a
    /// recency stack's content is a set, and hashing it as a sequence
    /// would make every deeper table's index flutter whenever one entry
    /// enters or leaves an earlier segment.
    pub fn collect_mixed(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.mixed_words());
    }

    /// The [`BfGhr::collect_mixed`] word stream as a lazy iterator, so a
    /// consumer that folds the words (BF-TAGE's prefix-XOR set hash) can
    /// skip materializing them.
    ///
    /// The unfiltered prefix is positional, so its words shift on every
    /// commit and must be re-mixed; segment words are cached (maintained
    /// by `commit`) because a stack's contents are stable across most
    /// commits.
    pub fn mixed_words(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.recent.min(self.raw_len()))
            .map(|pos| {
                let e = self.raw_at(pos);
                let word = (u64::from(e.key) << 20) ^ (u64::from(e.taken) << 17) ^ (pos as u64);
                mix64(word)
            })
            .chain(self.segments.iter().flat_map(|s| s.words.iter().copied()))
    }

    /// XOR-folds the mixed word stream (see [`BfGhr::mixed_words`]),
    /// pushing into `out` one snapshot of the running fold per requested
    /// length: `out[i]` is the XOR of the first `min(lengths[i], total)`
    /// words. `lengths` must be non-decreasing.
    ///
    /// This is the hot-path form of the fold: the positional prefix is
    /// mixed word by word (it changes every commit), but each segment is
    /// swallowed with a single cached XOR and a mid-segment cut resolves
    /// through the segment's cached prefix-XOR table — O(prefix +
    /// segments + lengths) instead of O(total words) per call.
    pub fn fold_mixed(&self, lengths: &[usize], out: &mut Vec<u64>) {
        out.clear();
        let n = lengths.len();
        let mut li = 0usize;
        let mut h = 0u64;
        let mut consumed = 0usize;
        while li < n && lengths[li] == 0 {
            out.push(h);
            li += 1;
        }
        for pos in 0..self.recent.min(self.raw_len()) {
            if li == n {
                return;
            }
            let e = self.raw_at(pos);
            let word = (u64::from(e.key) << 20) ^ (u64::from(e.taken) << 17) ^ (pos as u64);
            h ^= mix64(word);
            consumed += 1;
            while li < n && lengths[li] == consumed {
                out.push(h);
                li += 1;
            }
        }
        for seg in &self.segments {
            if li == n {
                return;
            }
            let len = seg.words.len();
            while li < n && lengths[li] < consumed + len {
                out.push(h ^ seg.pxor[lengths[li] - consumed]);
                li += 1;
            }
            h ^= seg.pxor[len];
            consumed += len;
            while li < n && lengths[li] == consumed {
                out.push(h);
                li += 1;
            }
        }
        // Stream exhausted: every remaining length sees the full fold.
        while li < n {
            out.push(h);
            li += 1;
        }
    }

    /// Storage: the raw unfiltered history (Table I: 14-bit hashed PC +
    /// direction + bias status per entry) plus the segment stacks at 16
    /// bits per entry.
    pub fn storage_bits(&self) -> u64 {
        self.max_depth as u64 * 16 + (self.segments.len() * SEGMENT_RS_SIZE) as u64 * 16
    }

    /// Total branches committed into the history so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Commits flagged non-biased — the entries eligible for segment
    /// tracking.
    pub fn non_biased_commits(&self) -> u64 {
        self.non_biased_commits
    }

    /// Per-segment fill as `(live_entries, capacity)` pairs, shallowest
    /// segment first.
    pub fn segment_fill(&self) -> Vec<(usize, usize)> {
        self.segments
            .iter()
            .map(|s| (s.rs.len(), s.rs.capacity()))
            .collect()
    }
}

impl Default for BfGhr {
    fn default() -> Self {
        Self::new()
    }
}

impl Restorable for BfGhr {
    fn save_state(&self, w: &mut StateWriter) {
        // The word/pxor caches are derived from the stacks, but they are
        // serialized too: a restore then reproduces the exact in-memory
        // state without re-deriving, and a mismatch (torn write) is
        // caught by the size checks below rather than silently rebuilt.
        w.u32_slice(&self.ring);
        w.u64(self.now);
        w.u64(self.commits);
        w.u64(self.non_biased_commits);
        w.usize(self.segments.len());
        for seg in &self.segments {
            seg.rs.save_state(w);
            w.u64_slice(&seg.words);
            w.u64_slice(&seg.pxor);
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        let ring = r.u32_vec()?;
        if ring.len() != self.ring.len() {
            return Err(CodecError::Malformed("bf-ghr ring size mismatch"));
        }
        self.ring = ring;
        self.now = r.u64()?;
        self.commits = r.u64()?;
        self.non_biased_commits = r.u64()?;
        if r.usize()? != self.segments.len() {
            return Err(CodecError::Malformed("bf-ghr segment count mismatch"));
        }
        for seg in &mut self.segments {
            seg.rs.load_state(r)?;
            let words = r.u64_vec()?;
            let pxor = r.u64_vec()?;
            if words.len() != seg.rs.len() || pxor.len() != words.len() + 1 {
                return Err(CodecError::Malformed("bf-ghr word cache mismatch"));
            }
            seg.words = words;
            seg.pxor = pxor;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BfGhr {
        // Prefix 2; segments [2,4), [4,8).
        BfGhr::with_segments(&[2, 4, 8], 2)
    }

    #[test]
    fn paper_geometry() {
        let g = BfGhr::new();
        assert_eq!(g.recent_len(), 16);
        assert_eq!(g.max_depth(), 2048);
        assert_eq!(g.compressed_capacity(), 16 + 16 * 8);
        assert!(g.compressed_capacity() >= 142);
    }

    #[test]
    fn recent_prefix_is_unfiltered() {
        let mut g = tiny();
        // Biased branches still appear in the recent prefix.
        g.commit(0xA, true, false);
        g.commit(0xB, false, false);
        let mut out = Vec::new();
        g.collect(&mut out);
        assert_eq!(out, vec![(0xB, false), (0xA, true)]);
    }

    #[test]
    fn non_biased_branch_enters_segment_on_crossing() {
        let mut g = tiny();
        g.commit(0x1, true, true); // the tracked branch
                                   // Two more commits push it to depth 2 → crosses into segment
                                   // [2,4).
        g.commit(0x2, false, false);
        g.commit(0x3, false, false);
        let mut out = Vec::new();
        g.collect(&mut out);
        // Prefix: 0x3, 0x2; segment [2,4): 0x1.
        assert_eq!(out, vec![(0x3, false), (0x2, false), (0x1, true)]);
    }

    #[test]
    fn biased_branch_never_enters_segments() {
        let mut g = tiny();
        g.commit(0x1, true, false); // biased
        for k in 0..6 {
            g.commit(0x10 + k, false, false);
        }
        let mut out = Vec::new();
        g.collect(&mut out);
        assert_eq!(out.len(), 2, "only the prefix is populated: {out:?}");
    }

    #[test]
    fn instance_falls_out_after_segment_length() {
        let mut g = tiny();
        g.commit(0x1, true, true);
        // Depth 2 after two commits (enters [2,4)); falls out of [2,4)
        // after two more commits (depth 4) and immediately enters [4,8).
        for k in 0..2 {
            g.commit(0x20 + k, false, false);
        }
        assert_eq!(g.segments[0].rs.len(), 1);
        for k in 0..2 {
            g.commit(0x30 + k, false, false);
        }
        assert_eq!(g.segments[0].rs.len(), 0, "fell out of first segment");
        assert_eq!(g.segments[1].rs.len(), 1, "entered second segment");
        // After 4 more commits (depth 8) it leaves the last segment too.
        for k in 0..4 {
            g.commit(0x40 + k, false, false);
        }
        assert_eq!(g.segments[1].rs.len(), 0);
    }

    #[test]
    fn repeated_occurrences_collapse_to_latest() {
        let mut g = tiny();
        // Same key committed twice, 2 commits apart: when the second
        // instance crosses into the segment, record() refreshes rather
        // than duplicating.
        g.commit(0x1, true, true);
        g.commit(0x9, false, false);
        g.commit(0x1, false, true); // newer occurrence, opposite outcome
        g.commit(0x9, false, false);
        g.commit(0x9, false, false);
        // Older instance (depth 4) left segment [2,4); newer instance
        // (depth 2) is inside with the newer outcome.
        assert_eq!(g.segments[0].rs.len(), 1);
        let e = g.segments[0].rs.iter().next().unwrap();
        assert_eq!(e.key, 0x1);
        assert!(!e.outcome);
    }

    #[test]
    fn segment_stack_capacity_is_bounded() {
        let mut g = tiny(); // segment stacks of 2
                            // Commit many distinct non-biased branches.
        for k in 0..20u16 {
            g.commit(0x100 + k, true, true);
        }
        for seg in &g.segments {
            assert!(seg.rs.len() <= 2);
        }
        assert!(g.compressed_len() <= g.compressed_capacity());
    }

    #[test]
    fn compressed_len_counts_all_parts() {
        let mut g = tiny();
        for k in 0..8u16 {
            g.commit(k, true, true);
        }
        let mut out = Vec::new();
        g.collect(&mut out);
        assert_eq!(out.len(), g.compressed_len());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotonic_boundaries_panic() {
        BfGhr::with_segments(&[16, 8], 4);
    }

    #[test]
    fn segment_word_cache_mirrors_stack() {
        // The incrementally-maintained word/pxor caches must always
        // equal a from-scratch rebuild off the recency stacks.
        let mut g = BfGhr::new();
        for i in 0..5000u64 {
            g.commit(
                (i.wrapping_mul(0x2545_F491) & 0x3FFF) as u16,
                i % 5 < 2,
                i % 4 != 0,
            );
            if i % 131 != 0 {
                continue;
            }
            for (seg_id, seg) in g.segments.iter().enumerate() {
                let expect: Vec<u64> = seg
                    .rs
                    .iter()
                    .map(|e| seg_word(e.key, e.outcome, seg_id))
                    .collect();
                assert_eq!(seg.words, expect, "segment {seg_id} after commit {i}");
                let mut acc = 0u64;
                let mut pxor = vec![0u64];
                for w in &expect {
                    acc ^= w;
                    pxor.push(acc);
                }
                assert_eq!(seg.pxor, pxor, "segment {seg_id} pxor after commit {i}");
            }
        }
    }

    #[test]
    fn fold_mixed_matches_word_stream_fold() {
        // The cached-pxor fold must agree with a naive fold of the full
        // word stream at every cut point, across history fills ranging
        // from empty to saturated.
        let mut g = BfGhr::new();
        let lengths = [0usize, 3, 8, 14, 26, 40, 54, 70, 94, 118, 142, 500];
        let mut folded = Vec::new();
        for i in 0..3000u64 {
            g.commit(
                (i.wrapping_mul(0x9E37) & 0x3FFF) as u16,
                i % 3 == 0,
                i % 7 < 3,
            );
            if i % 97 != 0 {
                continue;
            }
            let words: Vec<u64> = g.mixed_words().collect();
            g.fold_mixed(&lengths, &mut folded);
            assert_eq!(folded.len(), lengths.len());
            for (want, got) in lengths.iter().zip(&folded) {
                let naive = words.iter().take(*want).fold(0u64, |acc, w| acc ^ w);
                assert_eq!(naive, *got, "cut at {want} after {i} commits");
            }
        }
    }

    #[test]
    fn deep_correlation_stays_within_compressed_reach() {
        // A non-biased branch buried under 500 biased branches sits in a
        // deep segment but at a *small* compressed position — the whole
        // point of the BF-GHR.
        let mut g = BfGhr::new();
        g.commit(0x7777, true, true);
        for k in 0..500u64 {
            g.commit((0x1000 + k) as u16, true, false);
        }
        let mut out = Vec::new();
        g.collect(&mut out);
        let pos = out.iter().position(|&(k, _)| k == 0x7777);
        assert!(pos.is_some(), "tracked branch must still be visible");
        assert!(
            pos.unwrap() < 20,
            "compressed position {pos:?} should be shallow"
        );
    }
}
