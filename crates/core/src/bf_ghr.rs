//! The bias-free global history register (BF-GHR) built from segmented
//! recency stacks — §V-B1, Figure 7 of the paper.
//!
//! A monolithic recency stack covering 2048 branches is impractical to
//! search associatively, so BF-TAGE divides the raw history into
//! non-overlapping segments whose sizes form a geometric-style series;
//! each segment owns a small (8-entry) recency stack holding the most
//! recent occurrence of each non-biased branch currently inside the
//! segment. The concatenation of the newest 16 *unfiltered* entries (the
//! paper keeps them unfiltered to limit detection perturbation, §VI-C)
//! with every segment stack, in increasing depth order, is the BF-GHR:
//! up to 2048 branches of raw history compressed into ≈144 entries.

use std::collections::VecDeque;

use bfbp_predictors::history::mix64;

use crate::recency::RecencyStack;

/// The paper's segment boundaries (§VI-C): "History segmentation divides
/// the long global history into following non-overlapping segments such
/// as {16, 32, 48, 64, 80, 104, 128, 192, 256, 320, 416, 512, 768, 1024,
/// 1280, 1536, 2048}".
pub const SEGMENT_BOUNDARIES: [usize; 17] = [
    16, 32, 48, 64, 80, 104, 128, 192, 256, 320, 416, 512, 768, 1024, 1280, 1536, 2048,
];

/// The paper's per-segment recency-stack size (§VI-C).
pub const SEGMENT_RS_SIZE: usize = 8;

/// One raw-history entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GhrEntry {
    /// 14-bit hashed branch address (Table I).
    pub key: u16,
    /// Resolved direction.
    pub taken: bool,
    /// Bias status recorded at commit time (Table I's "1 bit bias
    /// status").
    pub non_biased: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Segment {
    start: usize,
    end: usize,
    rs: RecencyStack,
}

/// The segmented bias-free history register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfGhr {
    unfiltered: VecDeque<GhrEntry>,
    segments: Vec<Segment>,
    recent: usize,
    max_depth: usize,
    now: u64,
    commits: u64,
    non_biased_commits: u64,
}

impl BfGhr {
    /// Creates a BF-GHR with the paper's boundaries, 16 recent unfiltered
    /// entries, and 8-entry segment stacks.
    pub fn new() -> Self {
        Self::with_segments(&SEGMENT_BOUNDARIES, SEGMENT_RS_SIZE)
    }

    /// Creates a BF-GHR with custom boundaries. `boundaries[0]` is the
    /// unfiltered prefix length; each consecutive pair forms a segment.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two boundaries are given, they are not
    /// strictly increasing, or `rs_size` is zero.
    pub fn with_segments(boundaries: &[usize], rs_size: usize) -> Self {
        assert!(boundaries.len() >= 2, "need at least two boundaries");
        assert!(rs_size > 0, "segment stack size must be non-zero");
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "boundaries must be strictly increasing"
        );
        let segments = boundaries
            .windows(2)
            .map(|w| Segment {
                start: w[0],
                end: w[1],
                rs: RecencyStack::new(rs_size),
            })
            .collect();
        Self {
            unfiltered: VecDeque::with_capacity(boundaries[boundaries.len() - 1] + 1),
            segments,
            recent: boundaries[0],
            max_depth: boundaries[boundaries.len() - 1],
            now: 0,
            commits: 0,
            non_biased_commits: 0,
        }
    }

    /// Number of unfiltered prefix entries exposed.
    pub fn recent_len(&self) -> usize {
        self.recent
    }

    /// Maximum raw-history depth covered.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Current compressed length: unfiltered prefix + live segment-stack
    /// entries.
    pub fn compressed_len(&self) -> usize {
        self.recent.min(self.unfiltered.len())
            + self.segments.iter().map(|s| s.rs.len()).sum::<usize>()
    }

    /// Upper bound on the compressed length (Table I's "RS 142 entries"
    /// class of figure).
    pub fn compressed_capacity(&self) -> usize {
        self.recent + self.segments.len() * SEGMENT_RS_SIZE.max(1)
    }

    /// Commits a branch into the raw history and propagates segment
    /// crossings (§V-B4: "When B reaches a depth of Lm …, if it is
    /// non-biased, its hashed address is inserted into the RSy …; later
    /// when B reaches a depth of Ln, it falls out of RSy").
    pub fn commit(&mut self, key: u16, taken: bool, non_biased: bool) {
        self.commits += 1;
        if non_biased {
            self.non_biased_commits += 1;
        }
        self.unfiltered.push_front(GhrEntry {
            key,
            taken,
            non_biased,
        });
        if self.unfiltered.len() > self.max_depth {
            self.unfiltered.pop_back();
        }
        self.now += 1;
        for seg in &mut self.segments {
            // The record previously at depth start-1 is now at depth
            // start: it crosses into this segment.
            if let Some(e) = self.unfiltered.get(seg.start) {
                if e.non_biased {
                    seg.rs.record(u64::from(e.key), e.taken, self.now);
                }
            }
            // Instances that have travelled the segment's full length
            // fall out.
            let seg_len = (seg.end - seg.start) as u64;
            seg.rs.expire(self.now, seg_len);
        }
    }

    /// Collects the BF-GHR into `out` as `(key, outcome)` pairs,
    /// shallowest first: the unfiltered prefix, then each segment's
    /// stack in increasing depth.
    ///
    /// Within a segment, entries are emitted in a canonical (key-sorted)
    /// order rather than recency order: two executions of a branch whose
    /// segment holds the same *set* of tracked branches then hash to the
    /// same table index even if arrival order differed — the compressed
    /// analogue of a history register's positional stability.
    pub fn collect(&self, out: &mut Vec<(u16, bool)>) {
        out.clear();
        for e in self.unfiltered.iter().take(self.recent) {
            out.push((e.key, e.taken));
        }
        let mut scratch: Vec<(u16, bool)> = Vec::with_capacity(8);
        for seg in &self.segments {
            scratch.clear();
            scratch.extend(seg.rs.iter().map(|e| (e.key as u16, e.outcome)));
            scratch.sort_unstable_by_key(|&(k, _)| k);
            out.extend_from_slice(&scratch);
        }
    }

    /// Collects the BF-GHR as pre-mixed per-entry hash words, shallowest
    /// first, for table index computation.
    ///
    /// Entries in the unfiltered prefix are salted with their exact
    /// position (a real history register is positional); segment-stack
    /// entries are salted with their *segment index* only. A table over
    /// the first `L` words then combines them with XOR — an
    /// order-insensitive set hash — so the index depends on *which*
    /// branch outcomes each segment tracks but not on transient
    /// arrival-order or alignment shifts inside the compressed stream.
    /// This is the compressed analogue of folded-history stability: a
    /// recency stack's content is a set, and hashing it as a sequence
    /// would make every deeper table's index flutter whenever one entry
    /// enters or leaves an earlier segment.
    pub fn collect_mixed(&self, out: &mut Vec<u64>) {
        out.clear();
        for (pos, e) in self.unfiltered.iter().take(self.recent).enumerate() {
            let word = (u64::from(e.key) << 20) ^ (u64::from(e.taken) << 17) ^ (pos as u64);
            out.push(mix64(word));
        }
        for (seg_id, seg) in self.segments.iter().enumerate() {
            for e in seg.rs.iter() {
                let word =
                    (e.key << 20) ^ (u64::from(e.outcome) << 17) ^ ((seg_id as u64 + 1) << 8);
                out.push(mix64(word));
            }
        }
    }

    /// Storage: the raw unfiltered history (Table I: 14-bit hashed PC +
    /// direction + bias status per entry) plus the segment stacks at 16
    /// bits per entry.
    pub fn storage_bits(&self) -> u64 {
        self.max_depth as u64 * 16 + (self.segments.len() * SEGMENT_RS_SIZE) as u64 * 16
    }

    /// Total branches committed into the history so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Commits flagged non-biased — the entries eligible for segment
    /// tracking.
    pub fn non_biased_commits(&self) -> u64 {
        self.non_biased_commits
    }

    /// Per-segment fill as `(live_entries, capacity)` pairs, shallowest
    /// segment first.
    pub fn segment_fill(&self) -> Vec<(usize, usize)> {
        self.segments
            .iter()
            .map(|s| (s.rs.len(), s.rs.capacity()))
            .collect()
    }
}

impl Default for BfGhr {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BfGhr {
        // Prefix 2; segments [2,4), [4,8).
        BfGhr::with_segments(&[2, 4, 8], 2)
    }

    #[test]
    fn paper_geometry() {
        let g = BfGhr::new();
        assert_eq!(g.recent_len(), 16);
        assert_eq!(g.max_depth(), 2048);
        assert_eq!(g.compressed_capacity(), 16 + 16 * 8);
        assert!(g.compressed_capacity() >= 142);
    }

    #[test]
    fn recent_prefix_is_unfiltered() {
        let mut g = tiny();
        // Biased branches still appear in the recent prefix.
        g.commit(0xA, true, false);
        g.commit(0xB, false, false);
        let mut out = Vec::new();
        g.collect(&mut out);
        assert_eq!(out, vec![(0xB, false), (0xA, true)]);
    }

    #[test]
    fn non_biased_branch_enters_segment_on_crossing() {
        let mut g = tiny();
        g.commit(0x1, true, true); // the tracked branch
                                   // Two more commits push it to depth 2 → crosses into segment
                                   // [2,4).
        g.commit(0x2, false, false);
        g.commit(0x3, false, false);
        let mut out = Vec::new();
        g.collect(&mut out);
        // Prefix: 0x3, 0x2; segment [2,4): 0x1.
        assert_eq!(out, vec![(0x3, false), (0x2, false), (0x1, true)]);
    }

    #[test]
    fn biased_branch_never_enters_segments() {
        let mut g = tiny();
        g.commit(0x1, true, false); // biased
        for k in 0..6 {
            g.commit(0x10 + k, false, false);
        }
        let mut out = Vec::new();
        g.collect(&mut out);
        assert_eq!(out.len(), 2, "only the prefix is populated: {out:?}");
    }

    #[test]
    fn instance_falls_out_after_segment_length() {
        let mut g = tiny();
        g.commit(0x1, true, true);
        // Depth 2 after two commits (enters [2,4)); falls out of [2,4)
        // after two more commits (depth 4) and immediately enters [4,8).
        for k in 0..2 {
            g.commit(0x20 + k, false, false);
        }
        assert_eq!(g.segments[0].rs.len(), 1);
        for k in 0..2 {
            g.commit(0x30 + k, false, false);
        }
        assert_eq!(g.segments[0].rs.len(), 0, "fell out of first segment");
        assert_eq!(g.segments[1].rs.len(), 1, "entered second segment");
        // After 4 more commits (depth 8) it leaves the last segment too.
        for k in 0..4 {
            g.commit(0x40 + k, false, false);
        }
        assert_eq!(g.segments[1].rs.len(), 0);
    }

    #[test]
    fn repeated_occurrences_collapse_to_latest() {
        let mut g = tiny();
        // Same key committed twice, 2 commits apart: when the second
        // instance crosses into the segment, record() refreshes rather
        // than duplicating.
        g.commit(0x1, true, true);
        g.commit(0x9, false, false);
        g.commit(0x1, false, true); // newer occurrence, opposite outcome
        g.commit(0x9, false, false);
        g.commit(0x9, false, false);
        // Older instance (depth 4) left segment [2,4); newer instance
        // (depth 2) is inside with the newer outcome.
        assert_eq!(g.segments[0].rs.len(), 1);
        let e = g.segments[0].rs.iter().next().unwrap();
        assert_eq!(e.key, 0x1);
        assert!(!e.outcome);
    }

    #[test]
    fn segment_stack_capacity_is_bounded() {
        let mut g = tiny(); // segment stacks of 2
                            // Commit many distinct non-biased branches.
        for k in 0..20u16 {
            g.commit(0x100 + k, true, true);
        }
        for seg in &g.segments {
            assert!(seg.rs.len() <= 2);
        }
        assert!(g.compressed_len() <= g.compressed_capacity());
    }

    #[test]
    fn compressed_len_counts_all_parts() {
        let mut g = tiny();
        for k in 0..8u16 {
            g.commit(k, true, true);
        }
        let mut out = Vec::new();
        g.collect(&mut out);
        assert_eq!(out.len(), g.compressed_len());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotonic_boundaries_panic() {
        BfGhr::with_segments(&[16, 8], 4);
    }

    #[test]
    fn deep_correlation_stays_within_compressed_reach() {
        // A non-biased branch buried under 500 biased branches sits in a
        // deep segment but at a *small* compressed position — the whole
        // point of the BF-GHR.
        let mut g = BfGhr::new();
        g.commit(0x7777, true, true);
        for k in 0..500u64 {
            g.commit((0x1000 + k) as u16, true, false);
        }
        let mut out = Vec::new();
        g.collect(&mut out);
        let pos = out.iter().position(|&(k, _)| k == 0x7777);
        assert!(pos.is_some(), "tracked branch must still be visible");
        assert!(
            pos.unwrap() < 20,
            "compressed position {pos:?} should be shallow"
        );
    }
}
