//! # bfbp-core
//!
//! The Bias-Free Branch Predictor — the primary contribution of Gope &
//! Lipasti, *"Bias-Free Branch Predictor"*, MICRO-47 (2014) — implemented
//! from scratch:
//!
//! * [`bst`] — the Branch Status Table FSM detecting non-biased branches
//!   at runtime (2-bit and probabilistic 3-bit variants);
//! * [`recency`] — the recency stack with positional history;
//! * [`bf_neural`] — the BF-Neural predictor (idealized Algorithm 1 and
//!   practical Algorithms 2–3), with the Figure 9 ablation knobs;
//! * [`bf_ghr`] — the segmented recency stacks forming the compressed
//!   bias-free history register of BF-TAGE;
//! * [`bf_tage`] — BF-TAGE and BF-ISL-TAGE;
//! * [`profile`] — static profile-assisted bias classification (§VI-D).
//!
//! ```
//! use bfbp_core::bf_neural::BfNeural;
//! use bfbp_sim::simulate::simulate;
//! use bfbp_trace::synth::suite;
//!
//! let trace = suite::find("SPEC03").expect("suite trace").generate_len(5_000);
//! let mut predictor = BfNeural::budget_64kb();
//! let result = simulate(&mut predictor, &trace);
//! println!("{}", result);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bf_ghr;
pub mod bf_neural;
pub mod bf_tage;
pub mod bst;
pub mod profile;
pub mod recency;
pub mod registry;

pub use bf_ghr::{BfGhr, GhrEntry, SEGMENT_BOUNDARIES, SEGMENT_RS_SIZE};
pub use bf_neural::{BfNeural, BfNeuralConfig, HistoryMode, IdealBfNeural};
pub use bf_tage::{bf_isl_tage, BfIslTage, BfTage};
pub use bst::{BranchStatus, Bst, Classifier, ProbabilisticBst};
pub use profile::StaticProfile;
pub use recency::{RecencyStack, RsEntry, RsOp};
pub use registry::register;
