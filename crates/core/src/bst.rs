//! Branch Status Table (BST): runtime detection of non-biased branches.
//!
//! §IV-B1 of the paper: a direct-mapped table of small counters drives
//! the four-state FSM of Figure 5 — `NotFound → Taken/NotTaken →
//! NonBiased` — identifying, on the fly, the branches whose history is
//! worth learning from. Two implementations are provided:
//!
//! * [`Bst`] — the paper's feasibility-study design: plain 2-bit state
//!   per entry, `NonBiased` absorbing;
//! * [`ProbabilisticBst`] — the 3-bit probabilistic-counter variant the
//!   paper advocates for production (after Riley & Zilles), which can
//!   *revert* from `NonBiased` back to a biased state as the application
//!   changes phase.
//!
//! Both are direct-mapped and therefore subject to aliasing — the very
//! effect that hurts the paper's SERVER traces (§VI-D), reproduced here
//! by construction.

use bfbp_sim::ckpt::{CodecError, Restorable, StateReader, StateWriter};
use bfbp_sim::obs::Metrics;
use bfbp_trace::rng::Xoshiro256;

/// The detection FSM state of one branch (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchStatus {
    /// Never seen.
    NotFound,
    /// Seen, always resolved taken so far.
    Taken,
    /// Seen, always resolved not-taken so far.
    NotTaken,
    /// Observed in both directions: participates in prediction and
    /// history.
    NonBiased,
}

impl BranchStatus {
    /// Whether this status classifies the branch as completely biased
    /// (or unknown).
    pub fn is_biased_or_unknown(self) -> bool {
        self != BranchStatus::NonBiased
    }

    /// The direction recorded for a biased status, if any.
    pub fn bias_direction(self) -> Option<bool> {
        match self {
            BranchStatus::Taken => Some(true),
            BranchStatus::NotTaken => Some(false),
            _ => None,
        }
    }
}

/// The plain 2-bit-per-entry BST of the paper's feasibility study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bst {
    entries: Vec<u8>,
    mask: u64,
    commits: u64,
    known_commits: u64,
}

const S_NOT_FOUND: u8 = 0;
const S_TAKEN: u8 = 1;
const S_NOT_TAKEN: u8 = 2;
const S_NON_BIASED: u8 = 3;

fn decode(state: u8) -> BranchStatus {
    match state {
        S_NOT_FOUND => BranchStatus::NotFound,
        S_TAKEN => BranchStatus::Taken,
        S_NOT_TAKEN => BranchStatus::NotTaken,
        _ => BranchStatus::NonBiased,
    }
}

impl Bst {
    /// Creates a BST with `2^log_size` 2-bit entries.
    ///
    /// # Panics
    ///
    /// Panics if `log_size` is 0 or greater than 26.
    pub fn new(log_size: u32) -> Self {
        assert!((1..=26).contains(&log_size), "log_size must be 1..=26");
        Self {
            entries: vec![S_NOT_FOUND; 1 << log_size],
            mask: (1u64 << log_size) - 1,
            commits: 0,
            known_commits: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// Current status of the branch at `pc`.
    pub fn status(&self, pc: u64) -> BranchStatus {
        decode(self.entries[self.index(pc)])
    }

    /// Applies the Figure 5 FSM for a committed outcome; returns the new
    /// status.
    pub fn commit(&mut self, pc: u64, taken: bool) -> BranchStatus {
        let idx = self.index(pc);
        self.commits += 1;
        if self.entries[idx] != S_NOT_FOUND {
            self.known_commits += 1;
        }
        let next = match (self.entries[idx], taken) {
            (S_NOT_FOUND, true) => S_TAKEN,
            (S_NOT_FOUND, false) => S_NOT_TAKEN,
            (S_TAKEN, true) => S_TAKEN,
            (S_TAKEN, false) => S_NON_BIASED,
            (S_NOT_TAKEN, false) => S_NOT_TAKEN,
            (S_NOT_TAKEN, true) => S_NON_BIASED,
            _ => S_NON_BIASED,
        };
        self.entries[idx] = next;
        decode(next)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always `false` (non-empty by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Storage in bits (2 per entry).
    pub fn storage_bits(&self) -> u64 {
        self.entries.len() as u64 * 2
    }

    /// Total outcomes committed so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Commits whose entry was already populated (prior state not
    /// `NotFound`) — the BST "hit" count.
    pub fn known_commits(&self) -> u64 {
        self.known_commits
    }

    /// Entry counts by state: `[NotFound, Taken, NotTaken, NonBiased]`.
    pub fn state_counts(&self) -> [u64; 4] {
        let mut counts = [0u64; 4];
        for &e in &self.entries {
            counts[e.min(S_NON_BIASED) as usize] += 1;
        }
        counts
    }
}

impl Restorable for Bst {
    fn save_state(&self, w: &mut StateWriter) {
        w.bytes(&self.entries);
        w.u64(self.commits);
        w.u64(self.known_commits);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        let entries = r.bytes()?;
        if entries.len() != self.entries.len() {
            return Err(CodecError::Malformed("bst size mismatch"));
        }
        self.entries.copy_from_slice(entries);
        self.commits = r.u64()?;
        self.known_commits = r.u64()?;
        Ok(())
    }
}

/// The 3-bit probabilistic BST variant (§IV-B1, "Probabilistic
/// Counters").
///
/// States: `NotFound`; `Taken`/`NotTaken` with confidence 1–3;
/// `NonBiased`. A contradicting outcome always demotes to `NonBiased`.
/// Confirming outcomes *probabilistically* raise confidence, and while
/// `NonBiased` a small probability per commit reverts the entry to the
/// weakly biased state matching the current outcome — letting the
/// classifier follow phase changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbabilisticBst {
    entries: Vec<u8>,
    mask: u64,
    rng: Xoshiro256,
    revert_inverse: u64,
    commits: u64,
    known_commits: u64,
}

const P_NOT_FOUND: u8 = 0;
// 1..=3: taken with confidence 1..=3; 4..=6: not-taken with confidence
// 1..=3; 7: non-biased.
const P_NON_BIASED: u8 = 7;

impl ProbabilisticBst {
    /// Creates a probabilistic BST with `2^log_size` 3-bit entries and a
    /// 1-in-`revert_inverse` chance per commit of reverting a
    /// `NonBiased` entry to a weak biased state.
    ///
    /// # Panics
    ///
    /// Panics if `log_size` is 0 or greater than 26, or `revert_inverse`
    /// is 0.
    pub fn new(log_size: u32, revert_inverse: u64) -> Self {
        assert!((1..=26).contains(&log_size), "log_size must be 1..=26");
        assert!(revert_inverse > 0, "revert_inverse must be non-zero");
        Self {
            entries: vec![P_NOT_FOUND; 1 << log_size],
            mask: (1u64 << log_size) - 1,
            rng: Xoshiro256::seed_from_u64(0xB57_CAFE),
            revert_inverse,
            commits: 0,
            known_commits: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    fn decode(state: u8) -> BranchStatus {
        match state {
            P_NOT_FOUND => BranchStatus::NotFound,
            1..=3 => BranchStatus::Taken,
            4..=6 => BranchStatus::NotTaken,
            _ => BranchStatus::NonBiased,
        }
    }

    /// Current status of the branch at `pc`.
    pub fn status(&self, pc: u64) -> BranchStatus {
        Self::decode(self.entries[self.index(pc)])
    }

    /// Applies the probabilistic FSM; returns the new status.
    pub fn commit(&mut self, pc: u64, taken: bool) -> BranchStatus {
        let idx = self.index(pc);
        let state = self.entries[idx];
        self.commits += 1;
        if state != P_NOT_FOUND {
            self.known_commits += 1;
        }
        let next = match state {
            P_NOT_FOUND => {
                if taken {
                    1
                } else {
                    4
                }
            }
            1..=3 => {
                if taken {
                    // Probabilistic confidence increase: the higher the
                    // confidence, the rarer the increment.
                    let conf = state;
                    if conf < 3 && self.rng.below(1 << conf) == 0 {
                        conf + 1
                    } else {
                        conf
                    }
                } else {
                    P_NON_BIASED
                }
            }
            4..=6 => {
                if !taken {
                    let conf = state - 3;
                    if conf < 3 && self.rng.below(1 << conf) == 0 {
                        state + 1
                    } else {
                        state
                    }
                } else {
                    P_NON_BIASED
                }
            }
            _ => {
                // NonBiased: occasionally revert toward the observed
                // direction to track phase changes.
                if self.rng.below(self.revert_inverse) == 0 {
                    if taken {
                        1
                    } else {
                        4
                    }
                } else {
                    P_NON_BIASED
                }
            }
        };
        self.entries[idx] = next;
        Self::decode(next)
    }

    /// Storage in bits (3 per entry).
    pub fn storage_bits(&self) -> u64 {
        self.entries.len() as u64 * 3
    }

    /// Total outcomes committed so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Commits whose entry was already populated (prior state not
    /// `NotFound`) — the BST "hit" count.
    pub fn known_commits(&self) -> u64 {
        self.known_commits
    }

    /// Entry counts by state: `[NotFound, Taken, NotTaken, NonBiased]`.
    pub fn state_counts(&self) -> [u64; 4] {
        let mut counts = [0u64; 4];
        for &e in &self.entries {
            let bucket = match Self::decode(e) {
                BranchStatus::NotFound => 0,
                BranchStatus::Taken => 1,
                BranchStatus::NotTaken => 2,
                BranchStatus::NonBiased => 3,
            };
            counts[bucket] += 1;
        }
        counts
    }
}

impl Restorable for ProbabilisticBst {
    fn save_state(&self, w: &mut StateWriter) {
        // The RNG stream participates in the FSM (confidence raises and
        // reverts), so it must resume exactly where it left off.
        w.bytes(&self.entries);
        for word in self.rng.state() {
            w.u64(word);
        }
        w.u64(self.commits);
        w.u64(self.known_commits);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        let entries = r.bytes()?;
        if entries.len() != self.entries.len() {
            return Err(CodecError::Malformed("probabilistic bst size mismatch"));
        }
        self.entries.copy_from_slice(entries);
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.u64()?;
        }
        self.rng.set_state(state);
        self.commits = r.u64()?;
        self.known_commits = r.u64()?;
        Ok(())
    }
}

/// Runtime-selectable bias classifier used by the BF predictors: the
/// plain 2-bit BST, the probabilistic 3-bit BST, or a static profile
/// (§VI-D's "static profile-assisted classification", see
/// [`crate::profile::StaticProfile`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Classifier {
    /// Plain 2-bit BST.
    TwoBit(Bst),
    /// Probabilistic 3-bit BST.
    Probabilistic(ProbabilisticBst),
    /// Profile-assisted static classification.
    Static(crate::profile::StaticProfile),
}

impl Classifier {
    /// Current status of the branch at `pc`.
    pub fn status(&self, pc: u64) -> BranchStatus {
        match self {
            Classifier::TwoBit(b) => b.status(pc),
            Classifier::Probabilistic(b) => b.status(pc),
            Classifier::Static(p) => p.status(pc),
        }
    }

    /// Commits an outcome; returns the new status.
    pub fn commit(&mut self, pc: u64, taken: bool) -> BranchStatus {
        match self {
            Classifier::TwoBit(b) => b.commit(pc, taken),
            Classifier::Probabilistic(b) => b.commit(pc, taken),
            Classifier::Static(p) => p.commit(pc, taken),
        }
    }

    /// Storage in bits.
    pub fn storage_bits(&self) -> u64 {
        match self {
            Classifier::TwoBit(b) => b.storage_bits(),
            Classifier::Probabilistic(b) => b.storage_bits(),
            Classifier::Static(p) => p.storage_bits(),
        }
    }

    /// Exports classifier counters into `metrics` under the `bst.*`
    /// prefix: commit/hit counts, per-state entry counts, occupancy, and
    /// the fraction of entries classified non-biased. The static-profile
    /// variant has no dynamic table and exports nothing.
    pub fn introspect_into(&self, metrics: &mut Metrics) {
        let (commits, known, counts) = match self {
            Classifier::TwoBit(b) => (b.commits(), b.known_commits(), b.state_counts()),
            Classifier::Probabilistic(b) => (b.commits(), b.known_commits(), b.state_counts()),
            Classifier::Static(_) => return,
        };
        metrics.counter("bst.commits", commits);
        metrics.counter("bst.known_commits", known);
        metrics.counter("bst.state.not_found", counts[0]);
        metrics.counter("bst.state.taken", counts[1]);
        metrics.counter("bst.state.not_taken", counts[2]);
        metrics.counter("bst.state.non_biased", counts[3]);
        let entries: u64 = counts.iter().sum();
        if entries > 0 {
            metrics.gauge(
                "bst.occupancy",
                (entries - counts[0]) as f64 / entries as f64,
            );
            metrics.gauge("bst.non_biased_fraction", counts[3] as f64 / entries as f64);
        }
        if commits > 0 {
            metrics.gauge("bst.hit_rate", known as f64 / commits as f64);
        }
    }
}

impl Restorable for Classifier {
    fn save_state(&self, w: &mut StateWriter) {
        // The variant is configuration; a one-byte discriminant guards
        // against restoring into a differently configured classifier.
        match self {
            Classifier::TwoBit(b) => {
                w.u8(0);
                b.save_state(w);
            }
            Classifier::Probabilistic(b) => {
                w.u8(1);
                b.save_state(w);
            }
            Classifier::Static(p) => {
                w.u8(2);
                p.save_state(w);
            }
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        let tag = r.u8()?;
        match (tag, self) {
            (0, Classifier::TwoBit(b)) => b.load_state(r),
            (1, Classifier::Probabilistic(b)) => b.load_state(r),
            (2, Classifier::Static(p)) => p.load_state(r),
            _ => Err(CodecError::Malformed("classifier variant mismatch")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsm_follows_figure_5() {
        let mut bst = Bst::new(10);
        assert_eq!(bst.status(0x40), BranchStatus::NotFound);
        // First commit: taken → Taken.
        assert_eq!(bst.commit(0x40, true), BranchStatus::Taken);
        // Confirming outcomes stay put.
        assert_eq!(bst.commit(0x40, true), BranchStatus::Taken);
        // A contradiction moves to NonBiased…
        assert_eq!(bst.commit(0x40, false), BranchStatus::NonBiased);
        // …which is absorbing for the 2-bit design.
        assert_eq!(bst.commit(0x40, true), BranchStatus::NonBiased);
        assert_eq!(bst.commit(0x40, false), BranchStatus::NonBiased);
    }

    #[test]
    fn not_taken_first_path() {
        let mut bst = Bst::new(10);
        assert_eq!(bst.commit(0x80, false), BranchStatus::NotTaken);
        assert_eq!(bst.commit(0x80, false), BranchStatus::NotTaken);
        assert_eq!(bst.commit(0x80, true), BranchStatus::NonBiased);
    }

    #[test]
    fn bias_direction_reporting() {
        assert_eq!(BranchStatus::Taken.bias_direction(), Some(true));
        assert_eq!(BranchStatus::NotTaken.bias_direction(), Some(false));
        assert_eq!(BranchStatus::NonBiased.bias_direction(), None);
        assert_eq!(BranchStatus::NotFound.bias_direction(), None);
        assert!(BranchStatus::Taken.is_biased_or_unknown());
        assert!(!BranchStatus::NonBiased.is_biased_or_unknown());
    }

    #[test]
    fn direct_mapping_aliases() {
        let mut bst = Bst::new(4); // 16 entries
        bst.commit(0x0, true);
        // pc 0x100 >> 2 = 0x40 ≡ 0 (mod 16): aliases with 0x0.
        assert_eq!(bst.status(0x100), BranchStatus::Taken);
        // The alias's contradicting outcome corrupts the shared entry —
        // the §VI-D SERVER effect.
        bst.commit(0x100, false);
        assert_eq!(bst.status(0x0), BranchStatus::NonBiased);
    }

    #[test]
    fn storage_sizes() {
        assert_eq!(Bst::new(14).storage_bits(), 16384 * 2);
        assert_eq!(ProbabilisticBst::new(13, 128).storage_bits(), 8192 * 3);
        assert_eq!(Bst::new(14).len(), 16384);
    }

    #[test]
    fn probabilistic_follows_same_coarse_fsm() {
        let mut bst = ProbabilisticBst::new(10, 1 << 30); // revert ~never
        assert_eq!(bst.status(0x40), BranchStatus::NotFound);
        assert_eq!(bst.commit(0x40, true), BranchStatus::Taken);
        for _ in 0..50 {
            assert_eq!(bst.commit(0x40, true), BranchStatus::Taken);
        }
        assert_eq!(bst.commit(0x40, false), BranchStatus::NonBiased);
    }

    #[test]
    fn probabilistic_reverts_on_phase_change() {
        // With an aggressive revert probability, a branch that becomes
        // stable again is eventually reclassified as biased.
        let mut bst = ProbabilisticBst::new(10, 4);
        bst.commit(0x40, true);
        bst.commit(0x40, false); // → NonBiased
        let mut reverted = false;
        for _ in 0..200 {
            if bst.commit(0x40, false) != BranchStatus::NonBiased {
                reverted = true;
                break;
            }
        }
        assert!(
            reverted,
            "expected a probabilistic revert within 200 commits"
        );
    }

    #[test]
    fn plain_bst_never_reverts() {
        let mut bst = Bst::new(10);
        bst.commit(0x40, true);
        bst.commit(0x40, false);
        for _ in 0..1000 {
            assert_eq!(bst.commit(0x40, false), BranchStatus::NonBiased);
        }
    }

    #[test]
    fn classifier_dispatch() {
        let mut c = Classifier::TwoBit(Bst::new(8));
        assert_eq!(c.status(0x40), BranchStatus::NotFound);
        c.commit(0x40, true);
        assert_eq!(c.status(0x40), BranchStatus::Taken);
        assert_eq!(c.storage_bits(), 256 * 2);

        let mut p = Classifier::Probabilistic(ProbabilisticBst::new(8, 128));
        p.commit(0x40, false);
        assert_eq!(p.status(0x40), BranchStatus::NotTaken);
    }
}
