//! BF-TAGE: a TAGE predictor indexed with the bias-free history
//! register (§V of the paper), and its ISL composition BF-ISL-TAGE.
//!
//! The tagged-table machinery (provider selection, usefulness,
//! allocation) is the shared [`TageCore`]; what changes is the history:
//! indices and tags are hashes over the *compressed* BF-GHR — 16 recent
//! unfiltered entries plus the segmented recency stacks — together with
//! the branch address and a 16-bit path history, using the compressed
//! history lengths {3, 8, 14, 26, 40, 54, 70, 94, 118, 142}.

use bfbp_predictors::history::{mix64, PathHistory};
use bfbp_sim::ckpt::{CodecError, Restorable, StateReader, StateWriter};
use bfbp_sim::obs::{Metrics, PredictorIntrospect};
use bfbp_sim::predictor::{ConditionalPredictor, Provenance};
use bfbp_sim::storage::StorageBreakdown;
use bfbp_tage::config::TageConfig;
use bfbp_tage::isl::{Isl, TageEngine};
use bfbp_tage::tage::{ProviderStats, TageCore};
use bfbp_trace::record::BranchRecord;
use bfbp_trace::source::TraceChunk;

use crate::bf_ghr::BfGhr;
use crate::bst::{BranchStatus, Bst, Classifier};

/// The BF-TAGE predictor.
#[derive(Debug, Clone)]
pub struct BfTage {
    core: TageCore,
    ghr: BfGhr,
    path: PathHistory,
    classifier: Classifier,
    /// Per-table compressed history lengths, ascending (mirrors
    /// `core.tables()`), precomputed for `BfGhr::fold_mixed`.
    history_lens: Vec<usize>,
    idx_scratch: Vec<usize>,
    tag_scratch: Vec<u16>,
    hidx_scratch: Vec<u64>,
    name: String,
}

impl BfTage {
    /// Creates a BF-TAGE from a bias-free configuration (see
    /// [`TageConfig::bias_free`]), with the paper's 8192-entry 2-bit BST
    /// (Table I).
    pub fn new(config: &TageConfig) -> Self {
        Self::with_classifier(config, Classifier::TwoBit(Bst::new(13)))
    }

    /// Creates a BF-TAGE with an explicit bias classifier (used by the
    /// §VI-D static-profile experiments).
    pub fn with_classifier(config: &TageConfig, classifier: Classifier) -> Self {
        Self {
            core: TageCore::new(config),
            ghr: BfGhr::new(),
            path: PathHistory::new(config.path_bits),
            classifier,
            history_lens: config.tables.iter().map(|t| t.history_len).collect(),
            idx_scratch: Vec::with_capacity(config.tables.len()),
            tag_scratch: Vec::with_capacity(config.tables.len()),
            hidx_scratch: Vec::with_capacity(config.tables.len()),
            name: format!("bf-tage-{}t", config.tables.len()),
        }
    }

    /// Convenience: BF-TAGE with `n` tagged tables (4..=10).
    ///
    /// # Panics
    ///
    /// Panics if `n` is outside 4..=10.
    pub fn with_tables(n: usize) -> Self {
        Self::new(&TageConfig::bias_free(n).expect("4..=10 tables"))
    }

    /// Provider statistics (Figure 12).
    pub fn provider_stats(&self) -> &ProviderStats {
        self.core.provider_stats()
    }

    /// Clears provider statistics.
    pub fn reset_provider_stats(&mut self) {
        self.core.reset_provider_stats();
    }

    /// Counter value of the most recent prediction's provider entry.
    pub fn last_provider_ctr(&self) -> i8 {
        self.core.last_provider_ctr()
    }

    /// The compressed history register (exposed for inspection and
    /// tests).
    pub fn bf_ghr(&self) -> &BfGhr {
        &self.ghr
    }

    /// Fills `idx_scratch`/`tag_scratch` for `pc` — reused buffers, so
    /// the steady-state prediction path performs no heap allocation.
    fn compute_indices_tags(&mut self, pc: u64) {
        let pch = pc >> 2;
        let path16 = self.path.value() & 0xFFFF;
        // Order-insensitive set hash over the compressed entry stream,
        // snapshotted at each table's compressed history length via the
        // BF-GHR's cached segment prefix-XORs (see `BfGhr::fold_mixed`)
        // — the hot path never walks the full word stream.
        self.ghr
            .fold_mixed(&self.history_lens, &mut self.hidx_scratch);
        self.idx_scratch.clear();
        self.tag_scratch.clear();
        let tables = self.core.tables();
        // A second, independent finalization of the same set hash makes
        // the partial tag; consecutive tables whose lengths both exceed
        // the live compressed history see the same set hash, so the
        // finalization is recomputed only when the snapshot changed.
        let mut h_tag = 0u64;
        let mut prev_h_idx = 0u64;
        for (table, t) in tables.iter().enumerate() {
            let h_idx = self.hidx_scratch[table];
            let path_mix = mix64(path16.wrapping_mul(0xC2B2_AE3D + table as u64));
            let raw_idx = pch ^ (pch >> (t.log_size() + 1)) ^ h_idx ^ (path_mix >> 3);
            self.idx_scratch.push(t.mask_index(raw_idx));
            if table == 0 || h_idx != prev_h_idx {
                h_tag = mix64(h_idx ^ 0xA5A5_5A5A_DEAD_BEEF);
            }
            prev_h_idx = h_idx;
            self.tag_scratch
                .push(t.mask_tag(pch ^ h_tag ^ (h_tag >> 13)));
        }
    }

    fn key_of(pc: u64) -> u16 {
        (mix64(pc >> 2) & 0x3FFF) as u16
    }
}

impl ConditionalPredictor for BfTage {
    fn name(&self) -> std::borrow::Cow<'_, str> {
        std::borrow::Cow::Borrowed(&self.name)
    }

    fn predict(&mut self, pc: u64) -> bool {
        self.compute_indices_tags(pc);
        self.core.predict(pc, &self.idx_scratch, &self.tag_scratch)
    }

    fn update(&mut self, pc: u64, taken: bool, _target: u64) {
        self.core.update(pc, taken);
        // Classify, then record the branch with its bias status into the
        // raw history (§V-B4: "it is inserted into the GHR_unfiltered
        // along with its bias status and the hashed address").
        let status = self.classifier.commit(pc, taken);
        self.ghr
            .commit(Self::key_of(pc), taken, status == BranchStatus::NonBiased);
        self.path.push(pc);
    }

    fn track_other(&mut self, record: &BranchRecord) {
        self.path.push(record.pc);
    }

    fn predict_batch(&mut self, pcs: &[u64], _targets: &[u64], takens: &[bool], miss: &mut [bool]) {
        // Fused predict+update over a run of conditional branches:
        // identical per-record semantics to `predict` + `update`, with
        // one virtual dispatch for the whole run and every scratch
        // buffer staying warm.
        for i in 0..pcs.len() {
            let pc = pcs[i];
            let taken = takens[i];
            self.compute_indices_tags(pc);
            let guess = self.core.predict(pc, &self.idx_scratch, &self.tag_scratch);
            miss[i] = guess != taken;
            self.core.update(pc, taken);
            let status = self.classifier.commit(pc, taken);
            self.ghr
                .commit(Self::key_of(pc), taken, status == BranchStatus::NonBiased);
            self.path.push(pc);
        }
    }

    fn update_batch(&mut self, chunk: &TraceChunk, start: usize, end: usize) {
        // Non-conditional transfers only feed the path history.
        for &pc in &chunk.pcs()[start..end] {
            self.path.push(pc);
        }
    }

    fn storage(&self) -> StorageBreakdown {
        let mut s = self.core.storage();
        s.push("BST (8192 entries x 2b)", self.classifier.storage_bits());
        s.push(
            "BF-GHR (unfiltered history + segment stacks)",
            self.ghr.storage_bits(),
        );
        s.push("path history", u64::from(self.path.len()));
        s
    }

    fn last_provenance(&self) -> Option<Provenance> {
        Some(self.core.last_provenance())
    }

    fn introspection(&self) -> Option<&dyn PredictorIntrospect> {
        Some(self)
    }

    fn checkpointing(&mut self) -> Option<&mut dyn Restorable> {
        Some(self)
    }
}

impl Restorable for BfTage {
    fn save_state(&self, w: &mut StateWriter) {
        // `history_lens` and the `*_scratch` buffers are configuration
        // and per-prediction scratch respectively.
        self.core.save_state(w);
        self.ghr.save_state(w);
        self.path.save_state(w);
        self.classifier.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        self.core.load_state(r)?;
        self.ghr.load_state(r)?;
        self.path.load_state(r)?;
        self.classifier.load_state(r)
    }
}

impl PredictorIntrospect for BfTage {
    fn introspect(&self, metrics: &mut Metrics) {
        self.core.introspect_into(metrics);
        self.classifier.introspect_into(metrics);
        metrics.counter("bf_ghr.commits", self.ghr.commits());
        metrics.counter("bf_ghr.non_biased_commits", self.ghr.non_biased_commits());
        let capacity = self.ghr.compressed_capacity();
        if capacity > 0 {
            metrics.gauge(
                "bf_ghr.occupancy",
                self.ghr.compressed_len() as f64 / capacity as f64,
            );
        }
        // Per-segment recency-stack fill: how much of each depth band's
        // compressed window is live.
        const FILL_BOUNDS: &[f64] = &[0.25, 0.5, 0.75, 1.0];
        for (live, cap) in self.ghr.segment_fill() {
            if cap > 0 {
                metrics.observe("bf_ghr.segment_fill", FILL_BOUNDS, live as f64 / cap as f64);
            }
        }
    }
}

impl TageEngine for BfTage {
    fn last_provider_ctr(&self) -> i8 {
        BfTage::last_provider_ctr(self)
    }

    fn provider_stats(&self) -> &ProviderStats {
        BfTage::provider_stats(self)
    }

    fn reset_provider_stats(&mut self) {
        BfTage::reset_provider_stats(self)
    }
}

/// BF-ISL-TAGE: BF-TAGE with the loop predictor and statistical
/// corrector inherited from ISL-TAGE (§VI-C).
pub type BfIslTage = Isl<BfTage>;

/// Creates a BF-ISL-TAGE with `n` tagged tables (4..=10).
///
/// # Panics
///
/// Panics if `n` is outside 4..=10.
pub fn bf_isl_tage(n_tables: usize) -> BfIslTage {
    Isl::new(BfTage::with_tables(n_tables))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfbp_sim::simulate::simulate;
    use bfbp_tage::tage::Tage;
    use bfbp_trace::synth::builder::{Filler, ProgramBuilder};

    #[test]
    fn learns_biased_branches() {
        let mut p = BfTage::with_tables(5);
        for _ in 0..50 {
            p.predict(0x40);
            p.update(0x40, true, 0);
        }
        assert!(p.predict(0x40));
        p.update(0x40, true, 0);
    }

    #[test]
    fn learns_alternating_pattern_via_recent_bits() {
        let mut p = BfTage::with_tables(5);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..4000u64 {
            let taken = i % 2 == 0;
            let guess = p.predict(0x40);
            p.update(0x40, taken, 0);
            if i > 1500 {
                total += 1;
                if guess == taken {
                    correct += 1;
                }
            }
        }
        assert!(
            correct as f64 / total as f64 > 0.95,
            "accuracy {}",
            correct as f64 / total as f64
        );
    }

    #[test]
    fn reaches_deep_correlation_beyond_conventional_ten_table_reach() {
        // Correlation at raw distance ~420 behind biased filler: beyond
        // conventional 10-table reach (195), within BF-TAGE's compressed
        // reach at the same table count.
        let mut b = ProgramBuilder::new(11);
        b.add_deep_block(420, Filler::DistinctBiased, 8, 0.0, 200, 210, 1);
        let trace = b.build().emit("deep", 120_000, 5);

        let mut conventional = Tage::with_tables(10);
        let mut bias_free = BfTage::with_tables(10);
        let rc = simulate(&mut conventional, &trace);
        let rb = simulate(&mut bias_free, &trace);
        assert!(
            rb.mpki() < rc.mpki() * 0.9,
            "bf {:.3} vs conventional {:.3} MPKI",
            rb.mpki(),
            rc.mpki()
        );
    }

    #[test]
    fn provider_stats_shift_toward_shorter_tables() {
        // With deep correlations compressed into few BF-GHR entries,
        // BF-TAGE should satisfy branches out of shorter tables than a
        // conventional TAGE needs (Figure 12's story).
        let mut b = ProgramBuilder::new(13);
        b.add_deep_block(420, Filler::DistinctBiased, 8, 0.0, 200, 210, 1);
        let trace = b.build().emit("deep", 80_000, 5);

        let mut bf = BfTage::with_tables(10);
        simulate(&mut bf, &trace);
        let stats = bf.provider_stats();
        // Hits among tagged tables must concentrate in the shorter half.
        let short: f64 = (0..5).map(|i| stats.table_percent(i)).sum();
        let long: f64 = (5..10).map(|i| stats.table_percent(i)).sum();
        assert!(
            short > long,
            "short-table hits {short:.1}% vs long {long:.1}%"
        );
    }

    #[test]
    fn storage_close_to_table_one() {
        let p = BfTage::with_tables(10);
        let kib = p.storage().total_kib();
        // Table I reports 51,100 bytes ≈ 49.9 KiB; ours includes the full
        // 2048-deep unfiltered history.
        assert!((45.0..60.0).contains(&kib), "{kib:.1} KiB");
    }

    #[test]
    fn isl_wrapper_composes() {
        let mut p = bf_isl_tage(7);
        assert!(p.name().contains("bf-tage-7t"));
        for i in 0..200u64 {
            let pc = 0x40 + (i % 5) * 4;
            p.predict(pc);
            p.update(pc, i % 2 == 0, 0);
        }
        assert_eq!(p.provider_stats().total(), 200);
    }

    #[test]
    fn track_other_feeds_path_history() {
        let mut p = BfTage::with_tables(4);
        let r = BranchRecord::uncond(0x500, 0x900, bfbp_trace::record::BranchKind::Call, 0);
        // Just exercises the path-history update; must not panic.
        p.track_other(&r);
        p.predict(0x40);
        p.update(0x40, true, 0);
    }
}
