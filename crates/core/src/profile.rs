//! Static profile-assisted bias classification (§VI-D).
//!
//! The paper observes that SERVER traces "suffer significantly from the
//! dynamic detection of non-biased branches" and shows that "a static
//! profile-assisted classification of branches" restores their accuracy.
//! [`StaticProfile`] is that mechanism: a profiling pass over a trace
//! records each static branch's true bias class, and a predictor running
//! with the profile consults it instead of the runtime BST — no aliasing,
//! no warm-up transitions.

use std::collections::HashMap;

use bfbp_sim::ckpt::{CodecError, Restorable, StateReader, StateWriter};
use bfbp_trace::record::Trace;
use bfbp_trace::stats::BiasProfile;

use crate::bst::BranchStatus;

/// A profile mapping static branches to their bias classification.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StaticProfile {
    statuses: HashMap<u64, BranchStatus>,
}

impl StaticProfile {
    /// Builds a profile from a profiling run over `trace`.
    ///
    /// Branches that resolved in both directions are `NonBiased`; the
    /// rest carry their single observed direction.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut profile = Self::default();
        let bias = BiasProfile::measure(trace);
        let mut seen_dir: HashMap<u64, bool> = HashMap::new();
        for r in trace {
            if r.kind.is_conditional() {
                seen_dir.entry(r.pc).or_insert(r.taken);
            }
        }
        for (pc, first_dir) in seen_dir {
            let status = match bias.is_biased(pc) {
                Some(true) => {
                    if first_dir {
                        BranchStatus::Taken
                    } else {
                        BranchStatus::NotTaken
                    }
                }
                _ => BranchStatus::NonBiased,
            };
            profile.statuses.insert(pc, status);
        }
        profile
    }

    /// Profiled status of the branch at `pc` (`NotFound` if the profile
    /// never saw it).
    pub fn status(&self, pc: u64) -> BranchStatus {
        self.statuses
            .get(&pc)
            .copied()
            .unwrap_or(BranchStatus::NotFound)
    }

    /// Commit is a no-op for a static profile (the classification is
    /// fixed); returns the profiled status after a first-touch promotion
    /// for unseen branches.
    pub fn commit(&mut self, pc: u64, taken: bool) -> BranchStatus {
        // A branch the profile never saw falls back to the dynamic
        // first-touch rule so the predictor has *some* class for it.
        *self.statuses.entry(pc).or_insert(if taken {
            BranchStatus::Taken
        } else {
            BranchStatus::NotTaken
        })
    }

    /// Number of profiled branches.
    pub fn len(&self) -> usize {
        self.statuses.len()
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.statuses.is_empty()
    }

    /// Storage estimate: a profile is delivered as ~2 bits per static
    /// branch alongside the binary (the paper's static classification is
    /// compiler-assisted, not predictor storage); we account the same 2
    /// bits per entry a BST entry would cost.
    pub fn storage_bits(&self) -> u64 {
        self.statuses.len() as u64 * 2
    }
}

impl Restorable for StaticProfile {
    fn save_state(&self, w: &mut StateWriter) {
        // `commit` promotes unseen branches, so the map is mutable state,
        // not pure configuration. Emit entries sorted by PC so identical
        // profiles always serialize to identical bytes regardless of hash
        // iteration order.
        let mut entries: Vec<(u64, BranchStatus)> =
            self.statuses.iter().map(|(&pc, &s)| (pc, s)).collect();
        entries.sort_unstable_by_key(|&(pc, _)| pc);
        w.usize(entries.len());
        for (pc, status) in entries {
            w.u64(pc);
            w.u8(match status {
                BranchStatus::NotFound => 0,
                BranchStatus::Taken => 1,
                BranchStatus::NotTaken => 2,
                BranchStatus::NonBiased => 3,
            });
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), CodecError> {
        let count = r.usize()?;
        // 9 bytes per entry; reject bogus counts before allocating.
        if count.saturating_mul(9) > r.remaining() {
            return Err(CodecError::Malformed("profile entry count too large"));
        }
        let mut statuses = HashMap::with_capacity(count);
        for _ in 0..count {
            let pc = r.u64()?;
            let status = match r.u8()? {
                0 => BranchStatus::NotFound,
                1 => BranchStatus::Taken,
                2 => BranchStatus::NotTaken,
                3 => BranchStatus::NonBiased,
                _ => return Err(CodecError::Malformed("unknown branch status")),
            };
            statuses.insert(pc, status);
        }
        self.statuses = statuses;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfbp_trace::record::BranchRecord;

    fn record(pc: u64, taken: bool) -> BranchRecord {
        BranchRecord::cond(pc, pc + 0x40, taken, 3)
    }

    #[test]
    fn profiles_bias_classes() {
        let trace = Trace::new(
            "t",
            vec![
                record(0x10, true),
                record(0x10, true),
                record(0x20, false),
                record(0x30, true),
                record(0x30, false),
            ],
        );
        let p = StaticProfile::from_trace(&trace);
        assert_eq!(p.status(0x10), BranchStatus::Taken);
        assert_eq!(p.status(0x20), BranchStatus::NotTaken);
        assert_eq!(p.status(0x30), BranchStatus::NonBiased);
        assert_eq!(p.status(0x99), BranchStatus::NotFound);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn commit_does_not_change_profiled_branches() {
        let trace = Trace::new("t", vec![record(0x10, true), record(0x10, true)]);
        let mut p = StaticProfile::from_trace(&trace);
        // Even a contradicting outcome leaves the profiled class alone —
        // by design: the profile is static.
        assert_eq!(p.commit(0x10, false), BranchStatus::Taken);
        assert_eq!(p.status(0x10), BranchStatus::Taken);
    }

    #[test]
    fn unseen_branch_gets_first_touch_class() {
        let mut p = StaticProfile::default();
        assert_eq!(p.commit(0x50, false), BranchStatus::NotTaken);
        assert_eq!(p.status(0x50), BranchStatus::NotTaken);
    }

    #[test]
    fn no_aliasing_between_branches() {
        // Unlike the direct-mapped BST, a profile is exact: thousands of
        // branches never corrupt one another.
        let mut records = Vec::new();
        for i in 0..5000u64 {
            records.push(record(0x1000 + i * 4, true));
            records.push(record(0x1000 + i * 4, true));
        }
        records.push(record(0x9000_0000, true));
        records.push(record(0x9000_0000, false));
        let p = StaticProfile::from_trace(&Trace::new("t", records));
        for i in 0..5000u64 {
            assert_eq!(p.status(0x1000 + i * 4), BranchStatus::Taken);
        }
        assert_eq!(p.status(0x9000_0000), BranchStatus::NonBiased);
    }

    #[test]
    fn storage_scales_with_entries() {
        let trace = Trace::new("t", vec![record(0x10, true), record(0x20, false)]);
        let p = StaticProfile::from_trace(&trace);
        assert_eq!(p.storage_bits(), 4);
    }
}
